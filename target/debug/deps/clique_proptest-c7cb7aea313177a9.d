/root/repo/target/debug/deps/clique_proptest-c7cb7aea313177a9.d: crates/cr-clique/tests/clique_proptest.rs

/root/repo/target/debug/deps/clique_proptest-c7cb7aea313177a9: crates/cr-clique/tests/clique_proptest.rs

crates/cr-clique/tests/clique_proptest.rs:
