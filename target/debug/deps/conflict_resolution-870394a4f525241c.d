/root/repo/target/debug/deps/conflict_resolution-870394a4f525241c.d: src/lib.rs

/root/repo/target/debug/deps/libconflict_resolution-870394a4f525241c.rmeta: src/lib.rs

src/lib.rs:
