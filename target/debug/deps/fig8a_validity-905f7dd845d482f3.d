/root/repo/target/debug/deps/fig8a_validity-905f7dd845d482f3.d: crates/cr-bench/src/bin/fig8a_validity.rs

/root/repo/target/debug/deps/fig8a_validity-905f7dd845d482f3: crates/cr-bench/src/bin/fig8a_validity.rs

crates/cr-bench/src/bin/fig8a_validity.rs:
