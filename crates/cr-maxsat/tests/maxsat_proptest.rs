//! Property tests: exact MaxSAT vs brute force; WalkSAT feasibility and
//! bound.

use proptest::prelude::*;

use cr_maxsat::{solve, MaxSatInstance, MaxSatStrategy};
use cr_sat::Var;

#[derive(Clone, Debug)]
struct Inst {
    num_vars: u32,
    hard: Vec<Vec<i32>>,
    soft: Vec<Vec<i32>>,
}

fn to_instance(inst: &Inst) -> MaxSatInstance<'static> {
    let mut out = MaxSatInstance::new(inst.num_vars);
    for c in &inst.hard {
        out.add_hard(c.iter().map(|&l| lit(l, inst.num_vars)));
    }
    for c in &inst.soft {
        out.add_soft(c.iter().map(|&l| lit(l, inst.num_vars)), 1);
    }
    out
}

fn lit(code: i32, num_vars: u32) -> cr_sat::Lit {
    let var = Var((code.unsigned_abs() - 1) % num_vars);
    var.lit(code > 0)
}

/// Brute-force optimum: `None` if hard clauses are unsatisfiable.
fn brute_force(inst: &MaxSatInstance) -> Option<u64> {
    let n = inst.num_vars();
    let mut best: Option<u64> = None;
    for mask in 0u64..(1 << n) {
        let assignment: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
        if inst.hard_satisfied(&assignment) {
            let w = inst.soft_weight(&assignment);
            best = Some(best.map_or(w, |b: u64| b.max(w)));
        }
    }
    best
}

fn inst_strategy() -> impl Strategy<Value = Inst> {
    let clause = prop::collection::vec((1i32..=6).prop_flat_map(|v| {
        prop_oneof![Just(v), Just(-v)]
    }), 1..4);
    (
        2u32..7,
        prop::collection::vec(clause.clone(), 0..6),
        prop::collection::vec(clause, 1..8),
    )
        .prop_map(|(num_vars, hard, soft)| Inst { num_vars, hard, soft })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn exact_matches_brute_force(inst in inst_strategy()) {
        let instance = to_instance(&inst);
        let expected = brute_force(&instance);
        match solve(&instance, MaxSatStrategy::Exact) {
            None => prop_assert_eq!(expected, None),
            Some(result) => {
                prop_assert!(result.optimal);
                prop_assert!(instance.hard_satisfied(&result.assignment));
                prop_assert_eq!(Some(result.total_weight), expected);
                // satisfied_soft flags are consistent with the weight.
                let recount: u64 = instance
                    .soft()
                    .iter()
                    .zip(&result.satisfied_soft)
                    .filter(|(_, s)| **s)
                    .map(|(c, _)| c.weight)
                    .sum();
                prop_assert_eq!(recount, result.total_weight);
            }
        }
    }

    #[test]
    fn walksat_is_feasible_and_bounded(inst in inst_strategy()) {
        let instance = to_instance(&inst);
        let expected = brute_force(&instance);
        match solve(&instance, MaxSatStrategy::LocalSearch { max_flips: 3000, seed: 7 }) {
            None => prop_assert_eq!(expected, None),
            Some(result) => {
                prop_assert!(instance.hard_satisfied(&result.assignment));
                prop_assert!(Some(result.total_weight) <= expected);
            }
        }
    }
}
