/root/repo/target/debug/examples/interactive_george-5c5f6a1b849648a5.d: examples/interactive_george.rs

/root/repo/target/debug/examples/interactive_george-5c5f6a1b849648a5: examples/interactive_george.rs

examples/interactive_george.rs:
