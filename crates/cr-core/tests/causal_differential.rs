//! Causally robust correction ingestion: deterministic differentials.
//!
//! These tests pin down the causal-frontier semantics one scenario at a
//! time — the re-open of a resolved attribute by a late causally-concurrent
//! correction (the acceptance case: exactly that attribute, 0 rebuilds,
//! non-empty retraction cone), convergence of both delivery orders,
//! out-of-order buffering, `(source, hlc)` dedup, last-writer-wins over
//! branch tips, the typed [`RevisionError`] variants, and the degradation
//! policies. Randomized permutation/chaos convergence lives in
//! `tests/causal_proptest.rs` at the workspace level.

use cr_constraints::parser::{parse_cfd_file, parse_currency_file};
use cr_core::causal::{
    resolve_causal_checked, CausalReplayConfig, CausalRevision, ScriptedCausalRevisions,
};
use cr_core::framework::{GroundTruthOracle, ResolutionConfig};
use cr_core::ingest::{
    check_session_against_scratch, ResolutionSession, Revision, RevisionError, RevisionPolicy,
    SpecMirror, DEFAULT_QUARANTINE_CAP,
};
use cr_core::Specification;
use cr_types::{EntityInstance, Schema, SourceClock, SourceId, Tuple, TupleId, Value};

/// The PR 5 fixture: the CFD fires automatically at round 0 while `job`
/// stays ambiguous, so resolution needs an interaction round — the window
/// in which late corrections arrive.
fn firing_cfd_spec() -> (Specification, Tuple) {
    let s = Schema::new("p", ["status", "AC", "city", "job"]).unwrap();
    let e = EntityInstance::new(
        s.clone(),
        vec![
            Tuple::of([
                Value::str("working"),
                Value::int(1),
                Value::str("NY"),
                Value::str("nurse"),
            ]),
            Tuple::of([
                Value::str("retired"),
                Value::int(2),
                Value::str("LA"),
                Value::str("n/a"),
            ]),
        ],
    )
    .unwrap();
    let sigma = parse_currency_file(
        &s,
        r#"
        phi1: t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2
        phi2: t1 <[status] t2 -> t1 <[AC] t2
        "#,
    )
    .unwrap();
    let gamma = parse_cfd_file(&s, "psi1: AC = 2 -> city = \"LA\"").unwrap();
    let truth = Tuple::of([
        Value::str("retired"),
        Value::int(2),
        Value::str("LA"),
        Value::str("n/a"),
    ]);
    (Specification::without_orders(e, sigma, gamma), truth)
}

/// A minimal two-tuple spec for manual session driving.
fn two_city_spec() -> Specification {
    let s = Schema::new("p", ["name", "city"]).unwrap();
    let e = EntityInstance::new(
        s.clone(),
        vec![
            Tuple::of([Value::str("X"), Value::str("NY")]),
            Tuple::of([Value::str("X"), Value::str("LA")]),
        ],
    )
    .unwrap();
    Specification::without_orders(e, vec![], vec![])
}

fn config() -> ResolutionConfig {
    ResolutionConfig::default()
}

/// The acceptance-criterion case: the user answers `job`, then a remote
/// correction that never saw the answer (causally concurrent) asserts a
/// conflicting job value. The session must re-open exactly that attribute
/// — withdraw the accepted answer (non-empty retraction cone: the answer
/// orders were load-bearing), apply the correction, re-ask — with 0
/// rebuilds, and still end at the truth.
#[test]
fn late_concurrent_correction_reopens_exactly_the_answered_attribute() {
    let (spec, truth) = firing_cfd_spec();
    let job = spec.schema().attr_id("job").unwrap();
    let mut s1 = SourceClock::new(SourceId(1));
    let correction = CausalRevision {
        stamp: s1.stamp(1),
        rev: Revision::ReplaceValue {
            tuple: TupleId(0),
            attr: job,
            value: Value::str("vet"), // contradicts the accepted "n/a"
        },
    };
    let mut oracle = GroundTruthOracle::new(truth);
    // Round 0: no events — the user answers job first. Round 1: the
    // concurrent correction lands.
    let mut source = ScriptedCausalRevisions::new(vec![(1, correction)]);
    let replay = resolve_causal_checked(
        &config(),
        &spec,
        &mut oracle,
        &mut source,
        &CausalReplayConfig::default(),
    )
    .expect("causal replay must match scratch");

    assert!(replay.valid);
    assert!(replay.complete, "the re-opened attribute is re-answered");
    assert_eq!(replay.revisions.reopened, 1, "exactly one attribute re-opens");
    assert_eq!(
        replay.interactions, 2,
        "job is asked once before and once after the re-open"
    );
    assert!(
        replay.revisions.invalidated > 0,
        "the accepted answer was load-bearing: its retraction cone must be \
         non-empty, got {:?}",
        replay.revisions
    );
    assert_eq!(replay.rebuilds, 0, "re-opening never rebuilds");
    assert_eq!(replay.replay_stats.2, 0, "no full propagation resets");
    assert_eq!(replay.resolved.get(job), Some(&Value::str("n/a")));
    assert!(replay.quarantined.is_empty());
    assert_eq!(replay.revisions.quarantined, 0);
}

/// The convergence half of the acceptance case: delivering the same
/// correction *before* the answer (so the answer causally sees it — no
/// concurrency, no re-open) must end at the identical final resolution.
#[test]
fn correction_before_answer_does_not_reopen_and_converges() {
    let (spec, truth) = firing_cfd_spec();
    let job = spec.schema().attr_id("job").unwrap();
    let make_correction = || {
        let mut s1 = SourceClock::new(SourceId(1));
        CausalRevision {
            stamp: s1.stamp(1),
            rev: Revision::ReplaceValue {
                tuple: TupleId(0),
                attr: job,
                value: Value::str("vet"),
            },
        }
    };

    let run = |round: usize| {
        let mut oracle = GroundTruthOracle::new(truth.clone());
        let mut source = ScriptedCausalRevisions::new(vec![(round, make_correction())]);
        resolve_causal_checked(
            &config(),
            &spec,
            &mut oracle,
            &mut source,
            &CausalReplayConfig::default(),
        )
        .expect("causal replay must match scratch")
    };

    let early = run(0); // delivered before the first ask: answer sees it
    let late = run(1); // delivered after the answer: concurrent, re-opens

    assert_eq!(early.revisions.reopened, 0, "the answer saw the correction");
    assert_eq!(early.interactions, 1);
    assert_eq!(late.revisions.reopened, 1);
    assert_eq!(
        early.resolved, late.resolved,
        "both delivery orders must converge to the same resolution"
    );
    assert_eq!(early.valid, late.valid);
    assert_eq!(early.complete, late.complete);
}

/// Out-of-order delivery buffers at the frontier and releases in causal
/// order; redelivery is dropped by `(source, hlc)` identity. The replayed
/// state stays equivalent to scratch throughout.
#[test]
fn out_of_order_events_buffer_and_duplicates_drop() {
    let spec = two_city_spec();
    let city = spec.schema().attr_id("city").unwrap();
    let mut s1 = SourceClock::new(SourceId(1));
    let e1 = CausalRevision {
        stamp: s1.stamp(1),
        rev: Revision::ReplaceValue { tuple: TupleId(0), attr: city, value: Value::str("SF") },
    };
    let e2 = CausalRevision {
        stamp: s1.stamp(2),
        rev: Revision::ReplaceValue {
            tuple: TupleId(0),
            attr: city,
            value: Value::str("Chicago"),
        },
    };

    let mut session = ResolutionSession::new_revisable(&config(), &spec);
    let mut mirror = SpecMirror::new(&spec);

    // The successor arrives first: nothing deliverable yet.
    let eff = session.ingest_causal(vec![e2.clone()]).unwrap();
    assert!(eff.is_empty(), "out-of-order event must not apply early");
    assert_eq!(session.frontier().pending(), 1);
    assert_eq!(session.revision_telemetry().buffered, 1);

    // The predecessor arrives (twice): dedup drops the copy, delivery
    // cascades through the buffered successor.
    let eff = session.ingest_causal(vec![e1.clone(), e1.clone()]).unwrap();
    assert_eq!(session.revision_telemetry().duplicates_dropped, 1);
    assert_eq!(
        eff,
        vec![
            Revision::ReplaceValue { tuple: TupleId(0), attr: city, value: Value::str("SF") },
            Revision::ReplaceValue {
                tuple: TupleId(0),
                attr: city,
                value: Value::str("Chicago"),
            },
        ],
        "causal order restored: SF applies, then its successor Chicago"
    );
    assert_eq!(session.frontier().pending(), 0);
    for rev in &eff {
        mirror.apply(rev);
    }
    check_session_against_scratch(&mut session, &mirror).expect("replay ≡ scratch");
    assert_eq!(
        session.current().entity().tuple(TupleId(0)).get(city),
        &Value::str("Chicago")
    );

    // Redelivering the already-delivered successor is also dropped.
    let eff = session.ingest_causal(vec![e2]).unwrap();
    assert!(eff.is_empty());
    assert_eq!(session.revision_telemetry().duplicates_dropped, 2);
}

/// Causally-concurrent writes to the same cell resolve by last-writer-wins
/// over the branch tips — the same final value in either delivery order,
/// with both tips presented as competing values.
#[test]
fn concurrent_writes_converge_by_lww_in_either_delivery_order() {
    let spec = two_city_spec();
    let city = spec.schema().attr_id("city").unwrap();
    let mut s1 = SourceClock::new(SourceId(1));
    let mut s2 = SourceClock::new(SourceId(2));
    let a = CausalRevision {
        stamp: s1.stamp(1),
        rev: Revision::ReplaceValue { tuple: TupleId(0), attr: city, value: Value::str("SF") },
    };
    let b = CausalRevision {
        stamp: s2.stamp(2), // later HLC: the deterministic LWW winner
        rev: Revision::ReplaceValue {
            tuple: TupleId(0),
            attr: city,
            value: Value::str("Boston"),
        },
    };

    for order in [vec![a.clone(), b.clone()], vec![b.clone(), a.clone()]] {
        let mut session = ResolutionSession::new_revisable(&config(), &spec);
        let mut mirror = SpecMirror::new(&spec);
        for ev in order {
            for rev in session.ingest_causal(vec![ev]).unwrap() {
                mirror.apply(&rev);
            }
        }
        assert_eq!(
            session.current().entity().tuple(TupleId(0)).get(city),
            &Value::str("Boston"),
            "LWW over branch tips is delivery-order independent"
        );
        let tips = session.branch_tips(TupleId(0), city);
        assert_eq!(tips.len(), 2, "both concurrent writes are branch tips");
        assert!(tips.contains(&(SourceId(1), Value::str("SF"))));
        assert!(tips.contains(&(SourceId(2), Value::str("Boston"))));
        assert!(session.frontier().concurrent_conflicts() >= 1);
        // The concurrency is surfaced as a competing-candidate cell, not
        // just resolved silently: both tips are presented.
        let competing = session.take_competing();
        assert_eq!(competing.len(), 1, "one cell with concurrent candidates");
        let cell = &competing[0];
        assert_eq!((cell.tuple, cell.attr), (TupleId(0), city));
        assert!(!cell.reopened, "no accepted answer was involved");
        assert!(cell.candidates.contains(&(SourceId(1), Value::str("SF"))));
        assert!(cell.candidates.contains(&(SourceId(2), Value::str("Boston"))));
        assert!(session.take_competing().is_empty(), "take_competing drains");
        check_session_against_scratch(&mut session, &mirror).expect("replay ≡ scratch");
    }
}

/// Every malformed-event shape maps to its typed [`RevisionError`] variant,
/// and a failed application leaves the session state untouched (still
/// equivalent to a mirror that never saw the bad events).
#[test]
fn malformed_revisions_return_typed_errors_and_leave_state_untouched() {
    let (spec, _) = firing_cfd_spec();
    let city = spec.schema().attr_id("city").unwrap();
    let job = spec.schema().attr_id("job").unwrap();
    let mut session = ResolutionSession::new_revisable(&config(), &spec);
    session.set_revision_policy(RevisionPolicy::Reject);
    let mut mirror = SpecMirror::new(&spec);

    assert_eq!(
        session.apply_revision(&Revision::RetractCfd { cfd: 5 }),
        Err(RevisionError::UnknownCfd { cfd: 5, gamma_len: 1 })
    );
    assert_eq!(
        session.apply_revision(&Revision::WithdrawOrder {
            attr: cr_types::AttrId(99),
            lo: TupleId(0),
            hi: TupleId(1),
        }),
        Err(RevisionError::UnknownAttr { attr: cr_types::AttrId(99), arity: 4 })
    );
    assert_eq!(
        session.apply_revision(&Revision::WithdrawOrder {
            attr: city,
            lo: TupleId(0),
            hi: TupleId(1),
        }),
        Err(RevisionError::UnknownOrder { attr: city, lo: TupleId(0), hi: TupleId(1) }),
        "withdrawing a never-asserted pair is a typed error"
    );
    assert_eq!(
        session.apply_revision(&Revision::ReplaceValue {
            tuple: TupleId(9),
            attr: city,
            value: Value::Null,
        }),
        Err(RevisionError::UnknownTuple { tuple: TupleId(9), len: 2 })
    );
    assert_eq!(
        session.apply_revision(&Revision::WithdrawAnswer { attr: job, tuple: TupleId(7) }),
        Err(RevisionError::UnknownTuple { tuple: TupleId(7), len: 2 })
    );

    // A valid retraction still applies; repeating it is stale.
    session.apply_revision(&Revision::RetractCfd { cfd: 0 }).unwrap();
    mirror.apply(&Revision::RetractCfd { cfd: 0 });
    assert_eq!(
        session.apply_revision(&Revision::RetractCfd { cfd: 0 }),
        Err(RevisionError::StaleCfd { cfd: 0 })
    );

    // The errors above changed nothing: the session still matches a mirror
    // that only saw the one valid event.
    check_session_against_scratch(&mut session, &mirror)
        .expect("failed applications must leave the session untouched");
    assert_eq!(session.revision_telemetry().events, 1);

    // Display renders something useful for logs.
    let msg = RevisionError::UnknownCfd { cfd: 5, gamma_len: 1 }.to_string();
    assert!(msg.contains("unknown CFD"), "got: {msg}");
}

/// The three degradation policies: reject propagates, quarantine logs and
/// counts, best-effort only counts.
#[test]
fn degradation_policies_reject_quarantine_and_best_effort() {
    let (spec, _) = firing_cfd_spec();
    let bad = Revision::RetractCfd { cfd: 42 };

    // Default policy: quarantine.
    let mut session = ResolutionSession::new_revisable(&config(), &spec);
    assert_eq!(session.absorb_revision(&bad), Ok(false));
    assert_eq!(session.revision_telemetry().quarantined, 1);
    assert_eq!(session.quarantined().len(), 1);
    assert_eq!(session.quarantined()[0].0, bad);
    assert_eq!(
        session.quarantined()[0].1,
        RevisionError::UnknownCfd { cfd: 42, gamma_len: 1 }
    );
    // A good event still applies afterwards: the stream is not poisoned.
    assert_eq!(session.absorb_revision(&Revision::RetractCfd { cfd: 0 }), Ok(true));
    assert_eq!(session.revision_telemetry().events, 1);

    // Reject: the error propagates, nothing is logged.
    let mut session = ResolutionSession::new_revisable(&config(), &spec);
    session.set_revision_policy(RevisionPolicy::Reject);
    assert_eq!(
        session.absorb_revision(&bad),
        Err(RevisionError::UnknownCfd { cfd: 42, gamma_len: 1 })
    );
    assert!(session.quarantined().is_empty());

    // Best-effort: counted, not logged.
    let mut session = ResolutionSession::new_revisable(&config(), &spec);
    session.set_revision_policy(RevisionPolicy::BestEffort);
    assert_eq!(session.absorb_revision(&bad), Ok(false));
    assert_eq!(session.revision_telemetry().quarantined, 1);
    assert!(session.quarantined().is_empty());
}

/// Corrupt events injected mid-stream under the quarantine policy are
/// logged without disturbing resolution: the clean part of the stream
/// still applies and the run still matches scratch.
#[test]
fn quarantined_corrupt_event_does_not_poison_the_causal_stream() {
    let (spec, truth) = firing_cfd_spec();
    let mut s1 = SourceClock::new(SourceId(1));
    let good = CausalRevision {
        stamp: s1.stamp(1),
        rev: Revision::RetractCfd { cfd: 0 },
    };
    let corrupt = CausalRevision {
        stamp: s1.stamp(2), // same source: quarantining must not block it
        rev: Revision::RetractCfd { cfd: 99 },
    };
    let trailing = CausalRevision {
        stamp: s1.stamp(3), // delivered only if the corrupt event advanced
        rev: Revision::ReplaceValue {
            tuple: TupleId(0),
            attr: spec.schema().attr_id("city").unwrap(),
            value: Value::str("LA"),
        },
    };
    let mut oracle = GroundTruthOracle::new(truth);
    let mut source = ScriptedCausalRevisions::new(vec![
        (1, good),
        (1, corrupt.clone()),
        (2, trailing),
    ]);
    let replay = resolve_causal_checked(
        &config(),
        &spec,
        &mut oracle,
        &mut source,
        &CausalReplayConfig { policy: RevisionPolicy::Quarantine, ..Default::default() },
    )
    .expect("quarantine keeps the replay equivalent to scratch");
    assert!(replay.valid);
    assert_eq!(replay.revisions.quarantined, 1);
    assert_eq!(replay.quarantined.len(), 1);
    assert_eq!(replay.quarantined[0].0, corrupt.rev);
    assert_eq!(
        replay.revisions.events, 2,
        "the events around the corrupt one still apply"
    );
    assert_eq!(replay.revisions.buffered, 0, "quarantining advances the frontier");
}

/// A re-open carries its competing candidates out through the round
/// reports: the interaction loop can present the withdrawn local answer
/// next to the remote correction instead of a bare re-ask.
#[test]
fn reopen_surfaces_competing_candidates_in_round_reports() {
    let (spec, truth) = firing_cfd_spec();
    let job = spec.schema().attr_id("job").unwrap();
    let mut s1 = SourceClock::new(SourceId(1));
    let correction = CausalRevision {
        stamp: s1.stamp(1),
        rev: Revision::ReplaceValue {
            tuple: TupleId(0),
            attr: job,
            value: Value::str("vet"),
        },
    };
    let mut oracle = GroundTruthOracle::new(truth);
    let mut source = ScriptedCausalRevisions::new(vec![(1, correction)]);
    let replay = resolve_causal_checked(
        &config(),
        &spec,
        &mut oracle,
        &mut source,
        &CausalReplayConfig::default(),
    )
    .expect("causal replay must match scratch");

    assert_eq!(replay.revisions.reopened, 1);
    let cells: Vec<_> =
        replay.round_reports.iter().flat_map(|r| r.competing.iter()).collect();
    assert_eq!(cells.len(), 1, "exactly the re-opened cell competes");
    let cell = cells[0];
    assert_eq!((cell.tuple, cell.attr), (TupleId(0), job));
    assert!(cell.reopened, "the cell re-opened an accepted answer");
    assert!(
        cell.candidates.contains(&(SourceId(1), Value::str("vet"))),
        "the remote branch tip is a candidate: {:?}",
        cell.candidates
    );
    assert!(
        cell.candidates.contains(&(SourceId::LOCAL, Value::str("n/a"))),
        "the withdrawn local answer is presented alongside: {:?}",
        cell.candidates
    );
}

/// The quarantine log is bounded: beyond the cap the oldest entries are
/// evicted (newest kept), every eviction is counted, and shrinking the cap
/// evicts immediately.
#[test]
fn quarantine_log_is_bounded_with_eviction_telemetry() {
    let (spec, _) = firing_cfd_spec();
    let mut session = ResolutionSession::new_revisable(&config(), &spec);
    assert_eq!(session.quarantine_cap(), DEFAULT_QUARANTINE_CAP);
    session.set_quarantine_cap(2);
    assert_eq!(session.quarantine_cap(), 2);

    for cfd in 10..14 {
        assert_eq!(session.absorb_revision(&Revision::RetractCfd { cfd }), Ok(false));
    }
    assert_eq!(session.revision_telemetry().quarantined, 4, "all four count");
    assert_eq!(session.quarantined().len(), 2, "only the cap is retained");
    assert_eq!(session.quarantined()[0].0, Revision::RetractCfd { cfd: 12 });
    assert_eq!(session.quarantined()[1].0, Revision::RetractCfd { cfd: 13 });
    assert_eq!(session.revision_telemetry().quarantine_evicted, 2);

    // Shrinking the cap evicts the overflow immediately.
    session.set_quarantine_cap(1);
    assert_eq!(session.quarantined().len(), 1);
    assert_eq!(session.quarantined()[0].0, Revision::RetractCfd { cfd: 13 });
    assert_eq!(session.revision_telemetry().quarantine_evicted, 3);

    // The session itself is unharmed: a good event still applies.
    assert_eq!(session.absorb_revision(&Revision::RetractCfd { cfd: 0 }), Ok(true));
}

/// Regression (found by the crash-and-rehydrate soak): a causal
/// `ReplaceValue` to Null followed by a user answer used to panic the
/// solver inside `is_valid`. The input extension allocated fresh guard
/// variables for emission groups whose instances were all vacuous — new
/// variables but **zero** new clauses — so the clause-watermark solver
/// sync skipped entirely and the persistent guard assumptions referenced
/// variables the solver had never seen.
#[test]
fn guard_vars_without_clauses_still_reach_the_solver() {
    use cr_core::spec::UserInput;
    use cr_data::gen::{causal_timeline, scenario_from_raw, CausalTimelineConfig, Scenario};
    use cr_types::AttrId;

    let seed = 18239472052751201364u64;
    let Scenario { spec, truth } = scenario_from_raw(seed, 2, 6, 78, false);
    let timeline = causal_timeline(
        &spec,
        &CausalTimelineConfig {
            seed: seed.wrapping_mul(131).wrapping_add(7),
            sources: 2,
            events: 4,
            rounds: 3,
            ..Default::default()
        },
    );
    // The first event of this timeline replaces (TupleId(0), AttrId(1))
    // with Null; the answer then re-fills the cell.
    let ev0 = timeline[0].1.clone();
    assert!(matches!(
        ev0.rev,
        Revision::ReplaceValue { value: Value::Null, .. }
    ));
    let mut input = UserInput::empty();
    input.values.insert(AttrId(1), truth.get(AttrId(1)).clone());

    let mut session = ResolutionSession::new_revisable(&config(), &spec);
    let mut mirror = SpecMirror::new(&spec);
    for rev in session.ingest_causal(vec![ev0]).unwrap() {
        mirror.apply(&rev);
    }
    session.apply_input(&input);
    mirror.apply_input(&input);

    assert!(session.is_valid(), "the re-filled cell satisfies the spec");
    check_session_against_scratch(&mut session, &mirror).unwrap();
}
