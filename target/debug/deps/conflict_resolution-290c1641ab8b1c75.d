/root/repo/target/debug/deps/conflict_resolution-290c1641ab8b1c75.d: src/lib.rs

/root/repo/target/debug/deps/libconflict_resolution-290c1641ab8b1c75.rlib: src/lib.rs

/root/repo/target/debug/deps/libconflict_resolution-290c1641ab8b1c75.rmeta: src/lib.rs

src/lib.rs:
