/root/repo/target/release/deps/cr_maxsat-a8c7097dbb6125c1.d: crates/cr-maxsat/src/lib.rs crates/cr-maxsat/src/exact.rs crates/cr-maxsat/src/instance.rs crates/cr-maxsat/src/walksat.rs

/root/repo/target/release/deps/libcr_maxsat-a8c7097dbb6125c1.rlib: crates/cr-maxsat/src/lib.rs crates/cr-maxsat/src/exact.rs crates/cr-maxsat/src/instance.rs crates/cr-maxsat/src/walksat.rs

/root/repo/target/release/deps/libcr_maxsat-a8c7097dbb6125c1.rmeta: crates/cr-maxsat/src/lib.rs crates/cr-maxsat/src/exact.rs crates/cr-maxsat/src/instance.rs crates/cr-maxsat/src/walksat.rs

crates/cr-maxsat/src/lib.rs:
crates/cr-maxsat/src/exact.rs:
crates/cr-maxsat/src/instance.rs:
crates/cr-maxsat/src/walksat.rs:
