/root/repo/target/release/deps/cr_sat-01fb4cb0d54a882d.d: crates/cr-sat/src/lib.rs crates/cr-sat/src/cnf.rs crates/cr-sat/src/dimacs.rs crates/cr-sat/src/lit.rs crates/cr-sat/src/solver/mod.rs crates/cr-sat/src/solver/analyze.rs crates/cr-sat/src/solver/decide.rs crates/cr-sat/src/solver/propagate.rs crates/cr-sat/src/solver/reduce.rs crates/cr-sat/src/solver/restart.rs crates/cr-sat/src/stats.rs crates/cr-sat/src/unit_propagation.rs

/root/repo/target/release/deps/libcr_sat-01fb4cb0d54a882d.rlib: crates/cr-sat/src/lib.rs crates/cr-sat/src/cnf.rs crates/cr-sat/src/dimacs.rs crates/cr-sat/src/lit.rs crates/cr-sat/src/solver/mod.rs crates/cr-sat/src/solver/analyze.rs crates/cr-sat/src/solver/decide.rs crates/cr-sat/src/solver/propagate.rs crates/cr-sat/src/solver/reduce.rs crates/cr-sat/src/solver/restart.rs crates/cr-sat/src/stats.rs crates/cr-sat/src/unit_propagation.rs

/root/repo/target/release/deps/libcr_sat-01fb4cb0d54a882d.rmeta: crates/cr-sat/src/lib.rs crates/cr-sat/src/cnf.rs crates/cr-sat/src/dimacs.rs crates/cr-sat/src/lit.rs crates/cr-sat/src/solver/mod.rs crates/cr-sat/src/solver/analyze.rs crates/cr-sat/src/solver/decide.rs crates/cr-sat/src/solver/propagate.rs crates/cr-sat/src/solver/reduce.rs crates/cr-sat/src/solver/restart.rs crates/cr-sat/src/stats.rs crates/cr-sat/src/unit_propagation.rs

crates/cr-sat/src/lib.rs:
crates/cr-sat/src/cnf.rs:
crates/cr-sat/src/dimacs.rs:
crates/cr-sat/src/lit.rs:
crates/cr-sat/src/solver/mod.rs:
crates/cr-sat/src/solver/analyze.rs:
crates/cr-sat/src/solver/decide.rs:
crates/cr-sat/src/solver/propagate.rs:
crates/cr-sat/src/solver/reduce.rs:
crates/cr-sat/src/solver/restart.rs:
crates/cr-sat/src/stats.rs:
crates/cr-sat/src/unit_propagation.rs:
