//! Comparison operators for constraint predicates.

use std::cmp::Ordering;
use std::fmt;

use cr_types::Value;

/// The comparison operators allowed in currency-constraint predicates:
/// `=, ≠, <, ≤, >, ≥`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CompOp {
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Leq,
    /// `>`
    Gt,
    /// `>=`
    Geq,
}

impl CompOp {
    /// Evaluates the operator over two values using the semantic value
    /// ordering (nulls lowest, numerics numeric, strings lexicographic).
    /// Incomparable values satisfy only `!=`.
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        match lhs.semantic_cmp(rhs) {
            Some(ord) => self.eval_ordering(ord),
            None => self == CompOp::Neq,
        }
    }

    /// Evaluates the operator against a known ordering.
    pub fn eval_ordering(self, ord: Ordering) -> bool {
        match self {
            CompOp::Eq => ord == Ordering::Equal,
            CompOp::Neq => ord != Ordering::Equal,
            CompOp::Lt => ord == Ordering::Less,
            CompOp::Leq => ord != Ordering::Greater,
            CompOp::Gt => ord == Ordering::Greater,
            CompOp::Geq => ord != Ordering::Less,
        }
    }

    /// The operator with operands swapped (`a op b` ⇔ `b op.flip() a`).
    #[must_use]
    pub fn flip(self) -> CompOp {
        match self {
            CompOp::Eq => CompOp::Eq,
            CompOp::Neq => CompOp::Neq,
            CompOp::Lt => CompOp::Gt,
            CompOp::Leq => CompOp::Geq,
            CompOp::Gt => CompOp::Lt,
            CompOp::Geq => CompOp::Leq,
        }
    }

    /// Parses the ASCII spelling (`=`, `!=`, `<`, `<=`, `>`, `>=`).
    pub fn parse(s: &str) -> Option<CompOp> {
        Some(match s {
            "=" | "==" => CompOp::Eq,
            "!=" | "<>" => CompOp::Neq,
            "<" => CompOp::Lt,
            "<=" => CompOp::Leq,
            ">" => CompOp::Gt,
            ">=" => CompOp::Geq,
            _ => return None,
        })
    }
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompOp::Eq => "=",
            CompOp::Neq => "!=",
            CompOp::Lt => "<",
            CompOp::Leq => "<=",
            CompOp::Gt => ">",
            CompOp::Geq => ">=",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic() {
        assert!(CompOp::Lt.eval(&Value::int(1), &Value::int(2)));
        assert!(CompOp::Geq.eval(&Value::int(2), &Value::int(2)));
        assert!(CompOp::Neq.eval(&Value::str("a"), &Value::str("b")));
        assert!(!CompOp::Eq.eval(&Value::str("a"), &Value::str("b")));
    }

    #[test]
    fn null_is_less_than_everything() {
        assert!(CompOp::Lt.eval(&Value::Null, &Value::int(0)));
        assert!(CompOp::Eq.eval(&Value::Null, &Value::Null));
        assert!(!CompOp::Lt.eval(&Value::Null, &Value::Null));
    }

    #[test]
    fn incomparable_only_satisfies_neq() {
        let a = Value::str("1");
        let b = Value::int(1);
        for op in [CompOp::Eq, CompOp::Lt, CompOp::Leq, CompOp::Gt, CompOp::Geq] {
            assert!(!op.eval(&a, &b), "{op}");
        }
        assert!(CompOp::Neq.eval(&a, &b));
    }

    #[test]
    fn flip_is_involutive_and_correct() {
        let vals = [Value::int(1), Value::int(2)];
        for op in [CompOp::Eq, CompOp::Neq, CompOp::Lt, CompOp::Leq, CompOp::Gt, CompOp::Geq] {
            assert_eq!(op.flip().flip(), op);
            assert_eq!(op.eval(&vals[0], &vals[1]), op.flip().eval(&vals[1], &vals[0]));
        }
    }

    #[test]
    fn parse_round_trip() {
        for op in [CompOp::Eq, CompOp::Neq, CompOp::Lt, CompOp::Leq, CompOp::Gt, CompOp::Geq] {
            assert_eq!(CompOp::parse(&op.to_string()), Some(op));
        }
        assert_eq!(CompOp::parse("~"), None);
    }
}
