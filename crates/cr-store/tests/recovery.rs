//! Crash-and-rehydrate differentials: the recovery invariant at every
//! event boundary.
//!
//! Randomized scenarios × randomized causal timelines (with a user answer
//! interleaved) are driven through a [`SessionStore`] over a fault-
//! injecting backend. At **every** event boundary the log is checkpointed
//! and crashed under each [`Fault`] mode; a fresh store must rehydrate the
//! session to exactly what a from-scratch resolve of the surviving prefix
//! produces ([`verify_recovery`]), with honest telemetry: corrupt tails
//! truncated and counted, lost-sync crashes (intact shorter logs) never
//! reported as checksum failures.

use cr_core::causal::CausalRevision;
use cr_core::ingest::RevisionPolicy;
use cr_core::spec::{Specification, UserInput};
use cr_core::ResolutionConfig;
use cr_data::gen::{causal_timeline, scenario_from_raw, CausalTimelineConfig, Scenario};
use cr_store::{
    decode_log, decode_log_offsets, plan_replay, reference_of, verify_recovery, Fault,
    FaultyBackend, FileBackend, LogRecord, MemoryBackend, SessionId, SessionStore,
    StorageBackend, StoreConfig, StoreError, FORMAT_VERSION,
};
use cr_types::codec::write_frame;
use cr_types::AttrId;

const ID: SessionId = SessionId(7);

/// One logged step of a session's life.
#[derive(Clone)]
enum Step {
    Input(UserInput),
    Causal(CausalRevision),
}

/// A deterministic mixed workload: a causal timeline with one user answer
/// (the ground-truth value of attribute 1) interleaved a third of the way
/// in — so crashes cover accepted answers, not just corrections.
fn steps_for(spec: &Specification, truth: &cr_types::Tuple, seed: u64, events: usize) -> Vec<Step> {
    let timeline = causal_timeline(
        spec,
        &CausalTimelineConfig {
            seed: seed.wrapping_mul(131).wrapping_add(7),
            sources: 2,
            events,
            rounds: 3,
            ..Default::default()
        },
    );
    let mut steps: Vec<Step> =
        timeline.into_iter().map(|(_, ev)| Step::Causal(ev)).collect();
    let mut input = UserInput::empty();
    input.values.insert(AttrId(1), truth.get(AttrId(1)).clone());
    steps.insert(steps.len() / 3, Step::Input(input));
    steps
}

fn store_config(snapshot_every: usize) -> StoreConfig {
    StoreConfig { snapshot_every, ..StoreConfig::default() }
}

fn fresh_store(
    snapshot_every: usize,
) -> SessionStore<FaultyBackend<MemoryBackend>> {
    SessionStore::new(
        FaultyBackend::new(MemoryBackend::new()).unwrap(),
        store_config(snapshot_every),
    )
    .unwrap()
}

fn apply_step(store: &mut SessionStore<FaultyBackend<MemoryBackend>>, step: &Step) {
    match step {
        Step::Input(input) => {
            store.apply_input(ID, input).unwrap();
        }
        Step::Causal(ev) => {
            store.ingest_causal(ID, vec![ev.clone()]).unwrap();
        }
    }
}

/// Crashes `checkpoint` under `fault`, rehydrates a fresh store over the
/// damaged log, and verifies the recovery invariant against a from-scratch
/// replay of whatever survived. Returns the recovered store for extra
/// telemetry assertions.
fn crash_and_verify(
    checkpoint: &FaultyBackend<MemoryBackend>,
    spec: &Specification,
    snapshot_every: usize,
    fault: Fault,
    ctx: &str,
) -> SessionStore<FaultyBackend<MemoryBackend>> {
    let mut crashed = checkpoint.clone();
    crashed.crash(ID, fault).unwrap();
    let bytes = crashed.read_log(ID).unwrap();
    let (offsets, valid_len, scan_error) = decode_log_offsets(&bytes);
    let records: Vec<LogRecord> = offsets.iter().map(|(rec, _)| rec.clone()).collect();
    let lost = (bytes.len() - valid_len) as u64;
    // Frame-intact events stranded without their batch marker are an
    // uncommitted run: recovery must cut the log back to the last
    // committed boundary and count the partial batch.
    let plan = plan_replay(&records);
    let boundary_len =
        if plan.used_records == 0 { 0 } else { offsets[plan.used_records - 1].1 };
    let partial_bytes = (valid_len - boundary_len) as u64;
    let dropped_run = plan.used_records < records.len();

    let config = ResolutionConfig::default();
    let mut reference = reference_of(&config, RevisionPolicy::Quarantine, spec, &records);

    let mut store = SessionStore::new(crashed, store_config(snapshot_every)).unwrap();
    store.open(ID, spec);
    let session = store.session(ID).unwrap_or_else(|e| panic!("{ctx}: rehydrate failed: {e}"));
    verify_recovery(session, &mut reference)
        .unwrap_or_else(|e| panic!("{ctx} ({fault:?}): {e}"));

    let t = store.recovery();
    assert_eq!(t.rehydrations, 1, "{ctx}: exactly one rehydration");
    if let Some(err) = scan_error {
        assert_eq!(t.corrupt_truncations, 1, "{ctx}: {err} must be counted");
    } else {
        assert_eq!(t.corrupt_truncations, 0, "{ctx}: clean log, no corrupt truncation");
        assert_eq!(t.checksum_failures, 0, "{ctx}: clean log, no checksum failures");
    }
    assert_eq!(
        t.truncated_bytes,
        lost + partial_bytes,
        "{ctx}: honest byte loss accounting (corrupt tail + partial batch)"
    );
    assert_eq!(
        t.partial_batch_truncations,
        u64::from(dropped_run),
        "{ctx}: partial-batch truncation counted iff an uncommitted run was dropped"
    );
    assert_eq!(
        store.log_len(ID).unwrap(),
        boundary_len as u64,
        "{ctx}: the log must be truncated to the last committed batch boundary"
    );
    if matches!(fault, Fault::LostSync) {
        assert!(
            scan_error.is_none(),
            "{ctx}: a lost fsync leaves an intact shorter log, got {scan_error:?}"
        );
        assert_eq!(t.checksum_failures, 0, "{ctx}: lost sync is not a checksum failure");
    }
    store
}

/// The tentpole differential: every event boundary × every fault mode, on
/// randomized scenarios and causal timelines.
#[test]
fn every_boundary_every_fault_mode_recovers_to_surviving_prefix() {
    for seed in [3u64, 11] {
        let Scenario { spec, truth } = scenario_from_raw(seed, 4, 3, 60, false);
        let steps = steps_for(&spec, &truth, seed, 6);

        // Drive the full workload once, checkpointing the (log + sync
        // watermark) state at every boundary.
        let mut store = fresh_store(4);
        store.open(ID, &spec);
        store.session(ID).unwrap(); // materialise before the first event
        let mut checkpoints = vec![store.backend().clone()];
        for step in &steps {
            apply_step(&mut store, step);
            checkpoints.push(store.backend().clone());
        }

        for (boundary, checkpoint) in checkpoints.iter().enumerate() {
            let faults = [
                Fault::TornWrite { at: 0 },
                Fault::TornWrite { at: 1 },
                Fault::TornWrite { at: 13 },
                Fault::TruncatedTail { bytes: 1 },
                Fault::TruncatedTail { bytes: 7 },
                Fault::BitFlip { byte: boundary as u64 * 31 + 7, bit: (boundary % 8) as u8 },
                Fault::LostSync,
            ];
            for fault in faults {
                let ctx = format!("seed {seed} boundary {boundary}");
                crash_and_verify(checkpoint, &spec, 4, fault, &ctx);
            }
        }
    }
}

/// Exhaustive torn-write sweep: the final append — the batch-commit
/// marker of the last causal event — cut at **every** byte offset must
/// recover either to the full log (cut at the frame boundary) or to the
/// prefix without the final batch: a torn marker strands the batch's
/// event frames, and recovery must cut them too.
#[test]
fn torn_write_at_every_byte_of_the_final_append_recovers() {
    let seed = 5u64;
    let Scenario { spec, truth } = scenario_from_raw(seed, 4, 3, 50, false);
    let steps = steps_for(&spec, &truth, seed, 4);

    // No snapshots: the final step appends exactly one event frame plus
    // its batch marker.
    let mut store = fresh_store(0);
    store.open(ID, &spec);
    store.session(ID).unwrap();
    let mut before_last = 0;
    for (i, step) in steps.iter().enumerate() {
        if i + 1 == steps.len() {
            before_last = store.log_len(ID).unwrap();
        }
        apply_step(&mut store, step);
    }
    let full = store.log_len(ID).unwrap();
    assert!(full > before_last);
    let checkpoint = store.backend().clone();

    // The marker is the last record (and the last append, so TornWrite
    // tears it); its frame starts where the penultimate record ends.
    let (offsets, valid_len, scan_error) =
        decode_log_offsets(&checkpoint.read_log(ID).unwrap());
    assert!(scan_error.is_none());
    assert_eq!(valid_len as u64, full);
    assert!(matches!(offsets.last().unwrap().0, LogRecord::BatchMark { .. }));
    let marker_start = offsets[offsets.len() - 2].1 as u64;
    let marker_len = full - marker_start;
    assert!(marker_len > 0);

    for at in 0..=marker_len {
        let ctx = format!("torn write at byte {at} of {marker_len}");
        let store = crash_and_verify(&checkpoint, &spec, 0, Fault::TornWrite { at }, &ctx);
        // A complete marker commits the batch; any shorter cut loses the
        // marker and with it the whole final batch.
        let expect = if at == marker_len { full } else { before_last };
        assert_eq!(store.log_len(ID).unwrap(), expect, "{ctx}");
    }
}

/// Snapshots bound replay: rehydration starts from the last snapshot and
/// replays only the tail.
#[test]
fn snapshots_bound_rehydration_replay() {
    let seed = 9u64;
    let Scenario { spec, truth } = scenario_from_raw(seed, 4, 3, 40, false);
    let steps = steps_for(&spec, &truth, seed, 7);
    let total = steps.len() as u64;

    let mut store = fresh_store(3);
    store.open(ID, &spec);
    for step in &steps {
        apply_step(&mut store, step);
    }
    // The first touch above rehydrated an empty log; measure the warm
    // rehydration as a delta.
    let t0 = store.recovery();
    assert!(store.evict(ID).unwrap());
    store.session(ID).unwrap();

    let t = store.recovery();
    assert_eq!(t.rehydrations - t0.rehydrations, 1);
    assert_eq!(t.evictions - t0.evictions, 1);
    assert_eq!(
        t.snapshots_used - t0.snapshots_used,
        1,
        "rehydration must start from the last snapshot"
    );
    let tail = total % 3;
    assert_eq!(
        t.events_replayed - t0.events_replayed,
        tail,
        "only the {tail} events after the last snapshot replay, not all {total}"
    );
    assert_eq!(t.corrupt_truncations, 0);
    assert_eq!(t.checksum_failures, 0);

    // The snapshot-restored session still matches a from-scratch replay.
    let (records, _, err) = decode_log(&store.backend().read_log(ID).unwrap());
    assert!(err.is_none());
    let mut reference =
        reference_of(&ResolutionConfig::default(), RevisionPolicy::Quarantine, &spec, &records);
    verify_recovery(store.session(ID).unwrap(), &mut reference).unwrap();
}

/// The live cap evicts least-recently-used sessions; a cold session
/// rehydrates transparently on its next touch.
#[test]
fn lru_eviction_and_on_demand_rehydration() {
    let a = SessionId(1);
    let b = SessionId(2);
    let Scenario { spec, truth } = scenario_from_raw(13, 4, 3, 50, false);
    let steps = steps_for(&spec, &truth, 13, 3);

    let mut store = SessionStore::new(
        FaultyBackend::new(MemoryBackend::new()).unwrap(),
        StoreConfig { max_live: 1, snapshot_every: 0, ..StoreConfig::default() },
    )
    .unwrap();
    store.open(a, &spec);
    store.open(b, &spec);

    for step in &steps {
        match step {
            Step::Input(input) => {
                store.apply_input(a, input).unwrap();
            }
            Step::Causal(ev) => {
                store.ingest_causal(a, vec![ev.clone()]).unwrap();
            }
        }
    }
    assert!(store.is_live(a));

    // Touching B forces A out (cap 1).
    store.session(b).unwrap();
    assert!(!store.is_live(a), "LRU session must be evicted at the cap");
    assert!(store.is_live(b));
    assert!(store.recovery().evictions >= 1);

    // Touching A rehydrates it to exactly the from-scratch state.
    let (records, _, err) = decode_log(&store.backend().read_log(a).unwrap());
    assert!(err.is_none());
    let mut reference =
        reference_of(&ResolutionConfig::default(), RevisionPolicy::Quarantine, &spec, &records);
    let replayed_before = store.recovery().events_replayed;
    verify_recovery(store.session(a).unwrap(), &mut reference).unwrap();
    assert!(store.recovery().events_replayed > replayed_before);
    assert!(!store.is_live(b), "rehydrating A pushes B out in turn");
}

/// A record with an unknown format version is corruption: recovery
/// truncates it away (with telemetry) instead of guessing, and the session
/// recovers to the prefix before it.
#[test]
fn unknown_version_record_is_truncated_like_corruption() {
    let Scenario { spec, truth } = scenario_from_raw(21, 4, 3, 50, false);
    let steps = steps_for(&spec, &truth, 21, 3);

    let mut store = fresh_store(0);
    store.open(ID, &spec);
    for step in &steps {
        apply_step(&mut store, step);
    }
    let good_len = store.log_len(ID).unwrap();

    // A future-version record lands at the tail (say, after a partial
    // upgrade rollback).
    let mut payload = LogRecord::Revision(cr_core::ingest::Revision::RetractCfd { cfd: 0 })
        .encode();
    payload[0] = FORMAT_VERSION + 1;
    let mut frame = Vec::new();
    write_frame(&mut frame, &payload);
    store.backend_mut().append(ID, &frame).unwrap();
    store.backend_mut().sync(ID).unwrap();

    assert!(store.evict(ID).unwrap());
    let (records, _, _) = decode_log(&store.backend().read_log(ID).unwrap());
    let mut reference =
        reference_of(&ResolutionConfig::default(), RevisionPolicy::Quarantine, &spec, &records);
    verify_recovery(store.session(ID).unwrap(), &mut reference).unwrap();

    let t = store.recovery();
    assert_eq!(t.corrupt_truncations, 1);
    assert_eq!(t.checksum_failures, 0, "the frame CRC was fine; the record version was not");
    assert_eq!(t.truncated_bytes, frame.len() as u64);
    assert_eq!(store.log_len(ID).unwrap(), good_len);
}

/// Typed error paths: a Reject policy is refused up front, and touching an
/// unopened session is an [`StoreError::UnknownSession`].
#[test]
fn store_error_paths() {
    let err = SessionStore::new(
        MemoryBackend::new(),
        StoreConfig { policy: RevisionPolicy::Reject, ..StoreConfig::default() },
    )
    .err()
    .expect("Reject must be refused");
    assert_eq!(err, StoreError::RejectPolicy);
    assert!(err.to_string().contains("Reject"));

    let mut store = SessionStore::new(MemoryBackend::new(), StoreConfig::default()).unwrap();
    match store.session(SessionId(99)) {
        Err(StoreError::UnknownSession(id)) => assert_eq!(id, SessionId(99)),
        Err(other) => panic!("expected UnknownSession, got {other:?}"),
        Ok(_) => panic!("expected UnknownSession, got a session"),
    }
}

/// The file backend persists sessions across process lifetimes (modelled
/// as store drop + reopen) and rolls segment files without ever splitting
/// a frame.
#[test]
fn file_backend_persists_across_reopen_with_tiny_segments() {
    let root = std::env::temp_dir().join(format!(
        "cr-store-recovery-{}-{:x}",
        std::process::id(),
        0x5eedu32
    ));
    let _ = std::fs::remove_dir_all(&root);

    let Scenario { spec, truth } = scenario_from_raw(17, 4, 3, 50, false);
    let steps = steps_for(&spec, &truth, 17, 5);

    {
        // 64-byte segments: every couple of frames rolls a new file.
        let backend = FileBackend::with_segment_bytes(&root, 64).unwrap();
        let mut store = SessionStore::new(backend, store_config(3)).unwrap();
        store.open(ID, &spec);
        for step in &steps {
            match step {
                Step::Input(input) => {
                    store.apply_input(ID, input).unwrap();
                }
                Step::Causal(ev) => {
                    store.ingest_causal(ID, vec![ev.clone()]).unwrap();
                }
            }
        }
        let session_dir = root.join(format!("session-{:016x}", ID.0));
        let segments = std::fs::read_dir(&session_dir).unwrap().count();
        assert!(segments > 1, "tiny segments must roll, got {segments} file(s)");
    } // store dropped: the only durable state is the log on disk

    let backend = FileBackend::with_segment_bytes(&root, 64).unwrap();
    assert_eq!(backend.sessions().unwrap(), vec![ID]);
    let (records, _, err) = decode_log(&backend.read_log(ID).unwrap());
    assert!(err.is_none(), "a cleanly closed file log scans clean: {err:?}");
    let mut reference =
        reference_of(&ResolutionConfig::default(), RevisionPolicy::Quarantine, &spec, &records);

    let mut store = SessionStore::new(backend, store_config(3)).unwrap();
    store.open(ID, &spec);
    verify_recovery(store.session(ID).unwrap(), &mut reference).unwrap();
    let t = store.recovery();
    assert_eq!(t.rehydrations, 1);
    assert_eq!(t.corrupt_truncations, 0);
    assert!(t.events_replayed > 0 || t.snapshots_used > 0);

    // Truncation across segment boundaries behaves like one contiguous log.
    let mut backend = store.into_backend();
    let full = backend.log_len(ID).unwrap();
    backend.truncate(ID, full / 2).unwrap();
    assert_eq!(backend.log_len(ID).unwrap(), full / 2);
    let (prefix_records, valid_len, _) = decode_log(&backend.read_log(ID).unwrap());
    assert!(valid_len as u64 <= full / 2);
    assert!(prefix_records.len() <= records.len());

    backend.remove(ID).unwrap();
    assert!(backend.sessions().unwrap().is_empty());
    let _ = std::fs::remove_dir_all(&root);
}
