/root/repo/target/debug/deps/cr_constraints-4a37e6544529cf2b.d: crates/cr-constraints/src/lib.rs crates/cr-constraints/src/builder.rs crates/cr-constraints/src/cfd.rs crates/cr-constraints/src/fmt_util.rs crates/cr-constraints/src/currency.rs crates/cr-constraints/src/error.rs crates/cr-constraints/src/op.rs crates/cr-constraints/src/parser.rs crates/cr-constraints/src/predicate.rs

/root/repo/target/debug/deps/libcr_constraints-4a37e6544529cf2b.rmeta: crates/cr-constraints/src/lib.rs crates/cr-constraints/src/builder.rs crates/cr-constraints/src/cfd.rs crates/cr-constraints/src/fmt_util.rs crates/cr-constraints/src/currency.rs crates/cr-constraints/src/error.rs crates/cr-constraints/src/op.rs crates/cr-constraints/src/parser.rs crates/cr-constraints/src/predicate.rs

crates/cr-constraints/src/lib.rs:
crates/cr-constraints/src/builder.rs:
crates/cr-constraints/src/cfd.rs:
crates/cr-constraints/src/fmt_util.rs:
crates/cr-constraints/src/currency.rs:
crates/cr-constraints/src/error.rs:
crates/cr-constraints/src/op.rs:
crates/cr-constraints/src/parser.rs:
crates/cr-constraints/src/predicate.rs:
