//! Property tests: Display → parse round trips for randomly built
//! constraints and CFDs.

use std::sync::Arc;

use proptest::prelude::*;

use cr_constraints::parser::{parse_cfds, parse_currency_constraint};
use cr_constraints::{CompOp, ConstantCfd, CurrencyConstraint, Predicate, TupleRef};
use cr_types::{AttrId, Schema, Value};

const ATTRS: &[&str] = &["alpha", "beta", "gamma", "delta"];

fn schema() -> Arc<Schema> {
    Schema::new("r", ATTRS.iter().copied()).unwrap()
}

fn op_strategy() -> impl Strategy<Value = CompOp> {
    prop_oneof![
        Just(CompOp::Eq),
        Just(CompOp::Neq),
        Just(CompOp::Lt),
        Just(CompOp::Leq),
        Just(CompOp::Gt),
        Just(CompOp::Geq),
    ]
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-100i64..100).prop_map(Value::int),
        "[a-z][a-z0-9_ ]{0,8}".prop_map(Value::str),
        "[a-z]{1,4}\"[a-z]{1,4}".prop_map(Value::str), // embedded quote
    ]
}

fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (0..ATTRS.len()).prop_map(|a| Predicate::Order { attr: AttrId(a as u16) }),
        ((0..ATTRS.len()), op_strategy())
            .prop_map(|(a, op)| Predicate::TupleCmp { attr: AttrId(a as u16), op }),
        (
            prop_oneof![Just(TupleRef::T1), Just(TupleRef::T2)],
            0..ATTRS.len(),
            op_strategy(),
            value_strategy()
        )
            .prop_map(|(tuple, a, op, constant)| Predicate::ConstCmp {
                tuple,
                attr: AttrId(a as u16),
                op,
                constant,
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn currency_constraints_round_trip(
        premises in prop::collection::vec(predicate_strategy(), 0..4),
        conclusion in 0..ATTRS.len(),
        name in proptest::option::of("[a-z][a-z0-9]{0,6}"),
    ) {
        let s = schema();
        let built = CurrencyConstraint::new(
            s.clone(),
            name,
            premises,
            AttrId(conclusion as u16),
        )
        .expect("valid attrs");
        let text = built.to_string();
        let parsed = parse_currency_constraint(&s, &text)
            .unwrap_or_else(|e| panic!("failed to parse `{text}`: {e}"));
        prop_assert_eq!(parsed.premises(), built.premises(), "text: {}", text);
        prop_assert_eq!(parsed.conclusion_attr(), built.conclusion_attr());
        prop_assert_eq!(parsed.name(), built.name());
    }

    #[test]
    fn cfds_round_trip(
        lhs_attrs in prop::collection::btree_set(0..ATTRS.len() - 1, 0..3),
        lhs_vals in prop::collection::vec(value_strategy(), 3),
        rhs_val in value_strategy(),
    ) {
        let s = schema();
        let lhs: Vec<(AttrId, Value)> = lhs_attrs
            .iter()
            .zip(&lhs_vals)
            .filter(|(_, v)| !v.is_null())
            .map(|(&a, v)| (AttrId(a as u16), v.clone()))
            .collect();
        prop_assume!(!rhs_val.is_null());
        let built = ConstantCfd::new(
            s.clone(),
            None,
            lhs,
            (AttrId((ATTRS.len() - 1) as u16), rhs_val),
        )
        .expect("valid CFD");
        let text = built.to_string();
        let parsed = parse_cfds(&s, &text)
            .unwrap_or_else(|e| panic!("failed to parse `{text}`: {e}"));
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0], &built, "text: {}", text);
    }
}
