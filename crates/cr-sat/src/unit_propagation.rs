//! Root-level unit propagation over a [`Cnf`].
//!
//! This is the engine behind the paper's `DeduceOrder` (Fig. 5): repeatedly
//! find a one-literal clause `C`, record it, and reduce the formula by `C`
//! and `¬C` — clauses containing `C` are removed, occurrences of `¬C` are
//! deleted from their clauses. Every literal found this way is implied by the
//! formula, which is what makes `DeduceOrder` sound (Lemma 6).
//!
//! The implementation uses occurrence lists and false-literal counters
//! instead of physically rewriting clauses, giving the same
//! `O(|Φ(Se)|)` total reduction cost the paper reports.
//!
//! # Per-group implication provenance
//!
//! Every derived root literal carries a 64-bit **group signature**: the
//! union, over its derivation cone, of the signatures of the retractable
//! clause groups the derivation passed through (group `g` hashes to bit
//! `g % 64`; permanent clauses contribute nothing). When
//! [`UnitPropagator::retract_group`] withdraws groups, only the literals
//! whose signature intersects the retracted set are unassigned, and only
//! the clauses touching those literals have their counters rebuilt and
//! their units re-queued — the replay is proportional to the *retracted
//! cone*, not to `O(|Φ|)`. Signature collisions (two groups sharing a bit)
//! can only over-invalidate: the extra literals are re-derived from their
//! surviving support on the next fixpoint run, so the final fixpoint always
//! equals a from-scratch re-derivation of the surviving formula
//! (differentially tested against exactly that). The lazy delta cursor
//! shrinks by just the invalidated prefix entries, so a
//! [`crate::LazyAxiomSource`] is re-consulted about re-derived literals
//! instead of the whole fixpoint — plus **both polarities of every
//! invalidated variable**. The extra redelivery is what keeps delta-scoped
//! sources sound under retraction: a source that skipped an axiom instance
//! because its conclusion was already true must get another look when the
//! retraction unassigns that conclusion while the premises survive — no
//! surviving premise ever re-enters the delta on its own, so without the
//! redelivery the instance would be lost and the propagator would
//! under-derive relative to a from-scratch run. The propagator falls back
//! to the full reset when it is in conflict or mid-propagation (pending
//! queue) — states where per-literal provenance is not a faithful cone
//! summary.

use crate::cnf::Cnf;
use crate::lit::{LBool, Lit};

/// Result of running unit propagation to fixpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpOutcome {
    /// Fixpoint reached; `implied` lists every literal fixed by propagation,
    /// in derivation order.
    Fixpoint {
        /// Implied literals in the order they were derived.
        implied: Vec<Lit>,
    },
    /// Propagation derived a contradiction: the formula is unsatisfiable.
    Conflict,
}

/// Reusable root-level unit propagation engine.
///
/// The propagator is **incremental**: [`UnitPropagator::add_clause`] (or
/// [`UnitPropagator::extend_from_cnf`]) may be called after a
/// [`UnitPropagator::run`] has reached a fixpoint, and the next `run`
/// resumes from that fixpoint — only the consequences of the new clauses
/// are propagated, and `implied` keeps accumulating across runs. This is
/// what lets the resolution framework keep one propagator alive across all
/// user-interaction rounds instead of re-reducing `Φ(Se)` from scratch.
pub struct UnitPropagator {
    /// Deduplicated clauses; tautologies marked satisfied at ingestion.
    clauses: Vec<Vec<Lit>>,
    satisfied: Vec<bool>,
    false_count: Vec<u32>,
    /// For each literal index, the clauses containing it.
    occurs: Vec<Vec<u32>>,
    assign: Vec<LBool>,
    /// Pending unit literals with the group signature of their derivation.
    queue: Vec<(Lit, u64)>,
    implied: Vec<Lit>,
    conflict: bool,
    /// Per-variable derivation signature (see the module docs), parallel to
    /// `assign`; 0 for unassigned variables and group-free derivations.
    var_sig: Vec<u64>,
    /// Clause group tags ([`NO_GROUP`] = permanent) and retraction flags.
    group_of: Vec<u32>,
    dead: Vec<bool>,
    /// Prefix of `implied` already shown to a [`crate::LazyAxiomSource`]
    /// (see [`UnitPropagator::propagate_to_fixpoint_lazy`]); on retraction
    /// it shrinks by the invalidated prefix entries only, so re-derived
    /// fixpoints are re-delivered without re-scanning surviving literals.
    lazy_cursor: usize,
    /// Both polarities of every variable invalidated by a provenance
    /// replay, pending redelivery to the next lazy consult (see the module
    /// docs: retraction is the one non-monotone step, and an axiom instance
    /// can become unit *on* a freshly unassigned variable without any of
    /// its surviving literals re-entering the delta).
    redeliver: Vec<Lit>,
    /// Telemetry: provenance-scoped replays performed, literals they
    /// invalidated, and full `O(|Φ|)` fallback resets.
    replays: usize,
    replay_invalidated: usize,
    full_resets: usize,
}

/// Group tag of a permanent (non-retractable) clause.
pub const NO_GROUP: u32 = u32::MAX;

/// 64-bit signature of one clause group (see the module docs): permanent
/// clauses have the empty signature.
#[inline]
fn group_sig(group: u32) -> u64 {
    if group == NO_GROUP {
        0
    } else {
        1u64 << (group % 64)
    }
}

impl UnitPropagator {
    /// Builds a propagator over the clauses of `cnf`.
    pub fn new(cnf: &Cnf) -> Self {
        let num_vars = cnf.num_vars() as usize;
        let mut up = UnitPropagator {
            clauses: Vec::with_capacity(cnf.num_clauses()),
            satisfied: Vec::with_capacity(cnf.num_clauses()),
            false_count: Vec::with_capacity(cnf.num_clauses()),
            occurs: vec![Vec::new(); num_vars * 2],
            assign: vec![LBool::Undef; num_vars],
            queue: Vec::new(),
            implied: Vec::new(),
            conflict: false,
            var_sig: vec![0; num_vars],
            group_of: Vec::with_capacity(cnf.num_clauses()),
            dead: Vec::with_capacity(cnf.num_clauses()),
            lazy_cursor: 0,
            redeliver: Vec::new(),
            replays: 0,
            replay_invalidated: 0,
            full_resets: 0,
        };
        for clause in cnf.clauses() {
            up.add_clause(clause);
        }
        up
    }

    /// Grows the variable tables to hold at least `n` variables.
    pub fn ensure_vars(&mut self, n: usize) {
        if self.assign.len() < n {
            self.assign.resize(n, LBool::Undef);
            self.var_sig.resize(n, 0);
            self.occurs.resize(n * 2, Vec::new());
        }
    }

    /// Appends the clauses of `cnf` starting at clause index `from`,
    /// growing the variable tables as needed. Used to sync the propagator
    /// with a [`Cnf`] that was extended since the last call.
    pub fn extend_from_cnf(&mut self, cnf: &Cnf, from: usize) {
        self.ensure_vars(cnf.num_vars() as usize);
        for clause in cnf.clauses_from(from) {
            self.add_clause(clause);
        }
    }

    /// Adds one clause (used for incremental extension with user input).
    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.add_clause_grouped(lits, NO_GROUP);
    }

    /// Adds one clause tagged with a *retractable group*. All clauses of a
    /// group can later be withdrawn with [`UnitPropagator::retract_group`] —
    /// the mechanism behind the guard-literal clause groups of the
    /// incremental resolution engine (the engine strips the guard literal
    /// and passes the group tag instead, so the propagator's hot path never
    /// sees guard variables).
    pub fn add_clause_grouped(&mut self, lits: &[Lit], group: u32) {
        let mut clause: Vec<Lit> = lits.to_vec();
        clause.sort_unstable();
        clause.dedup();
        let tautology = clause.windows(2).any(|w| w[0] == w[1].negate());
        if let Some(max_var) = clause.iter().map(|l| l.var().index()).max() {
            self.ensure_vars(max_var + 1);
        }
        let idx = self.clauses.len() as u32;
        // Account for already-assigned literals.
        let mut sat = tautology;
        let mut n_false = 0;
        for &l in &clause {
            match self.value(l) {
                LBool::True => sat = true,
                LBool::False => n_false += 1,
                LBool::Undef => {}
            }
        }
        for &l in &clause {
            self.occurs[l.index()].push(idx);
        }
        if clause.is_empty() {
            self.conflict = true;
        } else if !sat {
            if n_false == clause.len() as u32 {
                self.conflict = true;
            } else if n_false == clause.len() as u32 - 1 {
                if let Some(unit) = clause.iter().find(|&&l| self.value(l) == LBool::Undef) {
                    // The derivation signature covers the clause's own
                    // group plus everything that falsified its other
                    // literals.
                    let sig = clause
                        .iter()
                        .filter(|&&l| self.value(l) == LBool::False)
                        .fold(group_sig(group), |s, l| s | self.var_sig[l.var().index()]);
                    self.queue.push((*unit, sig));
                }
            }
        }
        self.clauses.push(clause);
        self.satisfied.push(sat);
        self.false_count.push(n_false);
        self.group_of.push(group);
        self.dead.push(false);
    }

    /// Withdraws every clause of `group` and undoes exactly the retracted
    /// cone of the propagation state (see the module docs): literals whose
    /// derivation signature intersects the group are unassigned, the
    /// clauses touching them have their counters rebuilt, and the units of
    /// the reduced assignment are re-queued — the next
    /// [`UnitPropagator::propagate_to_fixpoint`] re-derives only what the
    /// retraction actually disturbed, instead of the whole `O(|Φ|)`
    /// fixpoint.
    pub fn retract_group(&mut self, group: u32) {
        self.retract_groups(&[group]);
    }

    /// [`UnitPropagator::retract_group`] for a batch: all groups are marked
    /// dead first, then one replay covers the union of their cones.
    pub fn retract_groups(&mut self, groups: &[u32]) {
        if groups.is_empty() {
            return;
        }
        debug_assert!(groups.iter().all(|&g| g != NO_GROUP), "cannot retract permanent clauses");
        for (ci, g) in self.group_of.iter().enumerate() {
            if groups.contains(g) && !self.dead[ci] {
                self.dead[ci] = true;
                // Permanently neutralised; the full-reset path recomputes
                // this anyway, the replay path relies on it.
                self.satisfied[ci] = true;
            }
        }
        // Provenance summarises completed derivations only: in conflict or
        // mid-propagation the recorded signatures are not a faithful cone,
        // so fall back to the full reset (rare — the engine retracts at
        // fixpoints, and conflicts only arise on invalid specifications).
        if self.conflict || !self.queue.is_empty() {
            self.full_resets += 1;
            self.reset_and_requeue();
            return;
        }
        let mask: u64 = groups.iter().fold(0, |s, &g| s | group_sig(g));
        self.replays += 1;
        let invalidated: Vec<Lit> = self
            .implied
            .iter()
            .copied()
            .filter(|l| self.var_sig[l.var().index()] & mask != 0)
            .collect();
        if invalidated.is_empty() {
            return; // nothing was ever derived through these groups
        }
        self.replay_invalidated += invalidated.len();
        for l in &invalidated {
            self.assign[l.var().index()] = LBool::Undef;
            self.var_sig[l.var().index()] = 0;
            // Queue the variable for redelivery to the lazy source: an
            // axiom instance skipped earlier (conclusion already true, or a
            // premise already false) can be unit on this variable now that
            // it is unassigned, and no surviving literal of that instance
            // will ever re-enter the delta.
            self.redeliver.push(l.var().positive());
            self.redeliver.push(l.var().negative());
        }
        // Shrink the implied list; the lazy delta cursor moves back by the
        // invalidated *prefix* entries only, so the axiom source is
        // re-consulted about re-derived literals (plus the redelivered
        // invalidated variables above), never the whole fixpoint.
        let removed_before_cursor = self.implied[..self.lazy_cursor]
            .iter()
            .filter(|l| self.assign[l.var().index()] == LBool::Undef)
            .count();
        self.lazy_cursor -= removed_before_cursor;
        self.implied.retain(|l| self.assign[l.var().index()] != LBool::Undef);
        // Rebuild the counters of every clause touching an invalidated
        // variable and re-queue the units of the reduced assignment — the
        // only clauses whose satisfied/false-count state can have changed.
        let mut touched: Vec<u32> = Vec::new();
        for l in &invalidated {
            touched.extend_from_slice(&self.occurs[l.index()]);
            touched.extend_from_slice(&self.occurs[l.negate().index()]);
        }
        touched.sort_unstable();
        touched.dedup();
        for ci in touched {
            let ci = ci as usize;
            if !self.dead[ci] {
                self.recompute_clause(ci);
            }
        }
    }

    /// Rebuilds one alive clause's satisfied flag and false-literal counter
    /// from the current assignment, re-queueing it if it is unit and
    /// raising the conflict flag if it is falsified.
    fn recompute_clause(&mut self, ci: usize) {
        let (sat, n_false, unit) = {
            let clause = &self.clauses[ci];
            // Clauses are sorted and deduplicated at ingestion, so a
            // tautology shows up as adjacent complementary literals.
            let mut sat = clause.windows(2).any(|w| w[0] == w[1].negate());
            let mut n_false: u32 = 0;
            for &l in clause {
                match self.value(l) {
                    LBool::True => sat = true,
                    LBool::False => n_false += 1,
                    LBool::Undef => {}
                }
            }
            let unit = if !sat && n_false + 1 == clause.len() as u32 {
                let mut sig = group_sig(self.group_of[ci]);
                let mut u = None;
                for &l in clause {
                    match self.value(l) {
                        LBool::False => sig |= self.var_sig[l.var().index()],
                        _ => u = Some(l), // the lone non-false literal (Undef)
                    }
                }
                u.map(|l| (l, sig))
            } else {
                None
            };
            (sat, n_false, unit)
        };
        self.satisfied[ci] = sat;
        self.false_count[ci] = n_false;
        if !sat && n_false == self.clauses[ci].len() as u32 {
            // Every remaining support was justified independently of the
            // retraction, so a full re-derivation would conflict too.
            self.conflict = true;
        }
        if let Some(q) = unit {
            self.queue.push(q);
        }
    }

    /// Clears all derived state and re-queues the units of the surviving
    /// clauses, as if the alive clauses had just been ingested fresh — the
    /// `O(|Φ|)` fallback of [`UnitPropagator::retract_groups`].
    fn reset_and_requeue(&mut self) {
        self.assign.fill(LBool::Undef);
        self.var_sig.fill(0);
        self.implied.clear();
        self.queue.clear();
        self.conflict = false;
        self.lazy_cursor = 0;
        // Cursor 0 re-delivers the whole re-derived fixpoint, which covers
        // every instance an invalidated variable could participate in.
        self.redeliver.clear();
        for ci in 0..self.clauses.len() {
            let clause = &self.clauses[ci];
            // Clauses are sorted and deduplicated at ingestion, so a
            // tautology shows up as adjacent complementary literals.
            let tautology = clause.windows(2).any(|w| w[0] == w[1].negate());
            self.satisfied[ci] = self.dead[ci] || tautology;
            self.false_count[ci] = 0;
            if !self.satisfied[ci] {
                match clause.len() {
                    0 => self.conflict = true,
                    1 => self.queue.push((clause[0], group_sig(self.group_of[ci]))),
                    _ => {}
                }
            }
        }
    }

    /// Queues both polarities of `v` for redelivery to the next lazy
    /// consult (see the module docs on retraction redelivery). The
    /// resolution engine calls this when a retired value is revived: the
    /// value's axiom instances re-enter the active scheme without any of
    /// its atoms re-entering the delta on their own.
    pub fn redeliver_var(&mut self, v: crate::lit::Var) {
        self.redeliver.push(v.positive());
        self.redeliver.push(v.negative());
    }

    /// Telemetry: `(provenance replays, literals they invalidated, full
    /// O(|Φ|) fallback resets)` since construction.
    pub fn replay_stats(&self) -> (usize, usize, usize) {
        (self.replays, self.replay_invalidated, self.full_resets)
    }

    fn value(&self, l: Lit) -> LBool {
        let v = self.assign[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    /// Runs propagation to fixpoint and reports **all** implied literals
    /// accumulated so far (including those of earlier runs).
    ///
    /// Clones the accumulated set; resumed callers on a hot path should
    /// prefer [`UnitPropagator::propagate_to_fixpoint`], which borrows it.
    pub fn run(&mut self) -> UpOutcome {
        match self.propagate_to_fixpoint() {
            None => UpOutcome::Conflict,
            Some(implied) => UpOutcome::Fixpoint { implied: implied.to_vec() },
        }
    }

    /// Runs propagation to fixpoint, borrowing the accumulated implied set
    /// (all runs so far, in derivation order); `None` on contradiction.
    ///
    /// Unit clauses are queued at [`UnitPropagator::add_clause`] time, so a
    /// resumed run only performs work proportional to the consequences of
    /// the clauses added since the previous fixpoint.
    pub fn propagate_to_fixpoint(&mut self) -> Option<&[Lit]> {
        if self.conflict {
            return None;
        }
        while let Some((lit, sig)) = self.queue.pop() {
            match self.value(lit) {
                LBool::True => continue,
                LBool::False => {
                    self.conflict = true;
                    return None;
                }
                LBool::Undef => {}
            }
            self.assign[lit.var().index()] = LBool::from_bool(lit.is_positive());
            self.var_sig[lit.var().index()] = sig;
            self.implied.push(lit);

            // Clauses containing `lit` become satisfied (removed).
            let sat_list = std::mem::take(&mut self.occurs[lit.index()]);
            for &ci in &sat_list {
                self.satisfied[ci as usize] = true;
            }
            self.occurs[lit.index()] = sat_list;

            // Clauses containing `¬lit` shrink by one literal. The taken
            // occurrence list must be restored even on the conflict exit:
            // a post-conflict retraction resets and re-propagates over the
            // same occurrence structure, so losing entries here would
            // silently under-count false literals forever after.
            let neg = lit.negate();
            let shrink_list = std::mem::take(&mut self.occurs[neg.index()]);
            let mut conflicted = false;
            for &ci in &shrink_list {
                let ci = ci as usize;
                if self.satisfied[ci] {
                    continue;
                }
                self.false_count[ci] += 1;
                let remaining = self.clauses[ci].len() as u32 - self.false_count[ci];
                if remaining == 0 {
                    conflicted = true;
                    break;
                }
                if remaining == 1 {
                    // Locate the lone non-false literal, folding the false
                    // literals' derivation signatures into the unit's.
                    let mut sig = group_sig(self.group_of[ci]);
                    let mut unit = None;
                    for &l in &self.clauses[ci] {
                        match self.value(l) {
                            LBool::False => sig |= self.var_sig[l.var().index()],
                            _ => unit = Some(l),
                        }
                    }
                    let unit = unit.expect("remaining == 1 guarantees a non-false literal");
                    match self.value(unit) {
                        LBool::True => self.satisfied[ci] = true,
                        _ => self.queue.push((unit, sig)),
                    }
                }
            }
            self.occurs[neg.index()] = shrink_list;
            if conflicted {
                self.conflict = true;
                return None;
            }
        }
        Some(&self.implied)
    }

    /// [`UnitPropagator::propagate_to_fixpoint`] interleaved with lazy
    /// axiom instantiation: after each fixpoint, `source` is shown the
    /// literals assigned since it was last consulted (the `delta`) and every
    /// axiom clause it returns is added; propagation then resumes. The loop
    /// ends when a fixpoint provokes no further instantiation — at which
    /// point the accumulated implied set equals what unit propagation over
    /// the fully materialised axiom scheme would have derived (an eager
    /// propagation step needs a clause that is unit under the current
    /// assignment, and exactly those clauses are requested on demand).
    ///
    /// The delta cursor survives across calls (the engine re-enters this
    /// per interaction round) and is reset by group retraction together
    /// with the assignment, so re-derived fixpoints are re-delivered.
    pub fn propagate_to_fixpoint_lazy(
        &mut self,
        source: &mut dyn crate::LazyAxiomSource,
    ) -> Option<&[Lit]> {
        loop {
            self.propagate_to_fixpoint()?;
            let clauses = {
                let assign = &self.assign;
                let value = |v: crate::lit::Var| assign.get(v.index()).and_then(|b| b.to_option());
                if self.redeliver.is_empty() {
                    source.instantiate(&value, Some(&self.implied[self.lazy_cursor..]))
                } else {
                    // Retraction redelivery: prepend both polarities of the
                    // invalidated variables so the source revisits
                    // instances that are newly unit on them (module docs).
                    let delta: Vec<Lit> = self
                        .redeliver
                        .iter()
                        .chain(self.implied[self.lazy_cursor..].iter())
                        .copied()
                        .collect();
                    source.instantiate(&value, Some(&delta))
                }
            };
            self.redeliver.clear();
            self.lazy_cursor = self.implied.len();
            if clauses.is_empty() {
                return Some(&self.implied);
            }
            for clause in &clauses {
                self.add_clause(clause);
            }
        }
    }

    /// The current truth value of a literal after [`UnitPropagator::run`].
    pub fn literal_value(&self, l: Lit) -> Option<bool> {
        self.value(l).to_option()
    }
}

/// Convenience: one-shot unit propagation over `cnf`.
pub fn propagate_units(cnf: &Cnf) -> UpOutcome {
    UnitPropagator::new(cnf).run_owned()
}

impl UnitPropagator {
    fn run_owned(mut self) -> UpOutcome {
        self.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    #[test]
    fn derives_chain() {
        let mut cnf = Cnf::new();
        let v: Vec<Var> = (0..4).map(|_| cnf.new_var()).collect();
        cnf.add_clause([v[0].positive()]);
        cnf.add_clause([v[0].negative(), v[1].positive()]);
        cnf.add_clause([v[1].negative(), v[2].positive()]);
        cnf.add_clause([v[2].negative(), v[3].negative()]);
        match propagate_units(&cnf) {
            UpOutcome::Fixpoint { implied } => {
                assert_eq!(
                    implied,
                    vec![v[0].positive(), v[1].positive(), v[2].positive(), v[3].negative()]
                );
            }
            UpOutcome::Conflict => panic!("unexpected conflict"),
        }
    }

    #[test]
    fn no_units_no_implications() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.positive(), b.positive()]);
        cnf.add_clause([a.negative(), b.negative()]);
        match propagate_units(&cnf) {
            UpOutcome::Fixpoint { implied } => assert!(implied.is_empty()),
            UpOutcome::Conflict => panic!(),
        }
    }

    #[test]
    fn detects_conflict() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.positive()]);
        cnf.add_clause([a.negative(), b.positive()]);
        cnf.add_clause([b.negative()]);
        assert_eq!(propagate_units(&cnf), UpOutcome::Conflict);
    }

    #[test]
    fn duplicate_literals_counted_once() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.positive(), a.positive(), b.positive()]);
        cnf.add_clause([a.negative()]);
        match propagate_units(&cnf) {
            UpOutcome::Fixpoint { implied } => {
                assert_eq!(implied, vec![a.negative(), b.positive()]);
            }
            UpOutcome::Conflict => panic!(),
        }
    }

    #[test]
    fn tautology_never_produces_units() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.positive(), a.negative()]);
        cnf.add_clause([b.negative(), b.positive()]);
        match propagate_units(&cnf) {
            UpOutcome::Fixpoint { implied } => assert!(implied.is_empty()),
            UpOutcome::Conflict => panic!(),
        }
    }

    #[test]
    fn retracted_groups_never_propagate() {
        // Group 1: a → b. Permanent: a. After retraction, b must no longer
        // be implied — including implications *already derived* before the
        // retraction.
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        let c = cnf.new_var();
        cnf.add_clause([a.positive()]);
        let mut up = UnitPropagator::new(&cnf);
        up.add_clause_grouped(&[a.negative(), b.positive()], 1);
        up.add_clause_grouped(&[b.negative(), c.positive()], 1);
        match up.run() {
            UpOutcome::Fixpoint { implied } => {
                assert_eq!(implied, vec![a.positive(), b.positive(), c.positive()]);
            }
            UpOutcome::Conflict => panic!(),
        }
        up.retract_group(1);
        match up.run() {
            UpOutcome::Fixpoint { implied } => {
                assert_eq!(implied, vec![a.positive()], "group consequences must vanish");
            }
            UpOutcome::Conflict => panic!(),
        }
        assert_eq!(up.literal_value(b.positive()), None);
        assert_eq!(up.literal_value(c.positive()), None);
    }

    #[test]
    fn retraction_clears_group_conflicts() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        cnf.add_clause([a.positive()]);
        let mut up = UnitPropagator::new(&cnf);
        up.add_clause_grouped(&[a.negative()], 7);
        assert_eq!(up.run(), UpOutcome::Conflict);
        up.retract_group(7);
        match up.run() {
            UpOutcome::Fixpoint { implied } => assert_eq!(implied, vec![a.positive()]),
            UpOutcome::Conflict => panic!("conflict must die with its group"),
        }
    }

    #[test]
    fn clauses_added_after_retraction_propagate() {
        let mut up = UnitPropagator::new(&Cnf::new());
        let a = crate::lit::Var(0);
        let b = crate::lit::Var(1);
        up.add_clause_grouped(&[a.positive()], 1);
        assert!(matches!(up.run(), UpOutcome::Fixpoint { .. }));
        up.retract_group(1);
        up.add_clause_grouped(&[a.negative()], 2);
        up.add_clause(&[a.positive(), b.positive()]);
        match up.run() {
            UpOutcome::Fixpoint { implied } => {
                assert_eq!(implied, vec![a.negative(), b.positive()]);
            }
            UpOutcome::Conflict => panic!(),
        }
    }

    #[test]
    fn rederivation_through_another_group_survives_replay() {
        // `a` is implied by clauses of two different groups. Retracting one
        // group must keep `a` derivable through the other; only retracting
        // both removes it.
        let a = Var(0);
        let b = Var(1);
        let mut up = UnitPropagator::new(&Cnf::new());
        up.add_clause_grouped(&[a.positive()], 1);
        up.add_clause_grouped(&[a.positive()], 2);
        up.add_clause(&[a.negative(), b.positive()]); // permanent: a → b
        assert!(matches!(up.run(), UpOutcome::Fixpoint { .. }));
        assert_eq!(up.literal_value(b.positive()), Some(true));
        // Whichever group signed the first derivation, retracting one of
        // the two groups must re-derive `a` (and `b`) through the other.
        up.retract_group(2);
        match up.run() {
            UpOutcome::Fixpoint { implied } => {
                assert!(implied.contains(&a.positive()), "group 1 still implies a");
                assert!(implied.contains(&b.positive()));
            }
            UpOutcome::Conflict => panic!(),
        }
        up.retract_group(1);
        match up.run() {
            UpOutcome::Fixpoint { implied } => {
                assert!(implied.is_empty(), "both supports retracted: {implied:?}");
            }
            UpOutcome::Conflict => panic!(),
        }
    }

    #[test]
    fn replay_is_scoped_to_the_retracted_cone() {
        // One long permanent chain plus one short grouped chain: retracting
        // the group must invalidate only the grouped cone, leaving the
        // permanent chain's assignments untouched.
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = (0..20).map(|_| cnf.new_var()).collect();
        cnf.add_clause([vars[0].positive()]);
        for w in vars[..16].windows(2) {
            cnf.add_clause([w[0].negative(), w[1].positive()]);
        }
        let mut up = UnitPropagator::new(&cnf);
        up.add_clause_grouped(&[vars[16].positive()], 3);
        up.add_clause_grouped(&[vars[16].negative(), vars[17].positive()], 3);
        assert!(matches!(up.run(), UpOutcome::Fixpoint { .. }));
        up.retract_group(3);
        let (replays, invalidated, full_resets) = up.replay_stats();
        assert_eq!(replays, 1);
        assert_eq!(invalidated, 2, "only the grouped cone is re-examined");
        assert_eq!(full_resets, 0);
        match up.run() {
            UpOutcome::Fixpoint { implied } => {
                assert_eq!(implied.len(), 16, "permanent chain survives untouched");
                assert!(implied.contains(&vars[15].positive()));
                assert!(!implied.contains(&vars[16].positive()));
            }
            UpOutcome::Conflict => panic!(),
        }
    }

    #[test]
    fn replay_lazy_cursor_redelivers_only_rederived_literals() {
        struct DeltaRecorder {
            seen: Vec<Vec<Lit>>,
        }
        impl crate::LazyAxiomSource for DeltaRecorder {
            fn instantiate(
                &mut self,
                _value: &dyn Fn(Var) -> Option<bool>,
                delta: Option<&[Lit]>,
            ) -> Vec<Vec<Lit>> {
                let delta = delta.expect("UP always passes a delta");
                if !delta.is_empty() {
                    self.seen.push(delta.to_vec());
                }
                Vec::new()
            }
        }
        let a = Var(0);
        let b = Var(1);
        let c = Var(2);
        let mut up = UnitPropagator::new(&Cnf::new());
        up.add_clause(&[a.positive()]);
        up.add_clause_grouped(&[b.positive()], 1);
        up.add_clause_grouped(&[c.positive()], 2);
        let mut rec = DeltaRecorder { seen: Vec::new() };
        up.propagate_to_fixpoint_lazy(&mut rec).unwrap();
        assert_eq!(rec.seen.len(), 1, "one delta covering the initial fixpoint");
        // Retract group 1: only b is invalidated. The surviving a and c
        // must NOT be re-delivered to the source — but both polarities of
        // the unassigned b must be, so the source can revisit instances
        // that are newly unit on it (retraction is non-monotone: an
        // instance skipped while b was assigned can need b derived again).
        up.retract_group(1);
        rec.seen.clear();
        up.propagate_to_fixpoint_lazy(&mut rec).unwrap();
        assert_eq!(
            rec.seen,
            vec![vec![b.positive(), b.negative()]],
            "exactly the invalidated variable is re-delivered"
        );
        // A fresh grouped support re-derives b: the delta is exactly [b].
        up.add_clause_grouped(&[b.positive()], 4);
        rec.seen.clear();
        up.propagate_to_fixpoint_lazy(&mut rec).unwrap();
        assert_eq!(rec.seen, vec![vec![b.positive()]]);
    }

    /// Tiny deterministic PRNG (xorshift*) — the randomized differential
    /// below must not depend on the workspace's rand shim.
    struct Xorshift(u64);
    impl Xorshift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    #[test]
    fn randomized_replay_matches_full_rederivation() {
        // Random clause/group mixes, retracted group by group: after every
        // retraction the propagator's fixpoint must equal a from-scratch
        // propagator over the surviving clauses — including group ids that
        // collide in the 64-bit signature (66 ≡ 2 mod 64).
        let groups: [u32; 6] = [NO_GROUP, 1, 2, 5, 63, 66];
        for seed in 1..60u64 {
            let mut r = Xorshift(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
            let num_vars = 4 + r.below(16) as usize;
            let num_clauses = 6 + r.below(50) as usize;
            let mut clauses: Vec<(Vec<Lit>, u32)> = Vec::new();
            for _ in 0..num_clauses {
                let len = 1 + r.below(3) as usize;
                let mut lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = Var(r.below(num_vars as u64) as u32);
                        if r.below(2) == 0 {
                            v.positive()
                        } else {
                            v.negative()
                        }
                    })
                    .collect();
                lits.sort_unstable();
                lits.dedup();
                let group = groups[r.below(groups.len() as u64) as usize];
                clauses.push((lits, group));
            }
            let mut up = UnitPropagator::new(&Cnf::new());
            up.ensure_vars(num_vars);
            for (lits, group) in &clauses {
                up.add_clause_grouped(lits, *group);
            }
            let mut dead: Vec<u32> = Vec::new();
            let mut retractable: Vec<u32> = clauses
                .iter()
                .map(|&(_, g)| g)
                .filter(|&g| g != NO_GROUP)
                .collect();
            retractable.sort_unstable();
            retractable.dedup();
            // Interleave runs and retractions (run before retracting
            // ensures the provenance path is exercised, not the fallback).
            let _ = up.run();
            for g in retractable {
                up.retract_group(g);
                dead.push(g);
                let mut fresh = UnitPropagator::new(&Cnf::new());
                fresh.ensure_vars(num_vars);
                for (lits, group) in &clauses {
                    if !dead.contains(group) {
                        fresh.add_clause_grouped(lits, *group);
                    }
                }
                match (up.run(), fresh.run()) {
                    (UpOutcome::Conflict, UpOutcome::Conflict) => {}
                    (UpOutcome::Fixpoint { implied: a }, UpOutcome::Fixpoint { implied: b }) => {
                        let mut a = a;
                        let mut b = b;
                        a.sort_unstable();
                        b.sort_unstable();
                        assert_eq!(a, b, "fixpoint diverged (seed {seed}, dead {dead:?})");
                    }
                    (x, y) => panic!("outcome diverged (seed {seed}, dead {dead:?}): {x:?} vs {y:?}"),
                }
            }
        }
    }

    #[test]
    fn incremental_addition_reuses_state() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.negative(), b.positive()]);
        let mut up = UnitPropagator::new(&cnf);
        match up.run() {
            UpOutcome::Fixpoint { implied } => assert!(implied.is_empty()),
            UpOutcome::Conflict => panic!(),
        }
        up.add_clause(&[a.positive()]);
        match up.run() {
            UpOutcome::Fixpoint { implied } => {
                assert_eq!(implied, vec![a.positive(), b.positive()])
            }
            UpOutcome::Conflict => panic!(),
        }
        assert_eq!(up.literal_value(b.positive()), Some(true));
    }
}
