//! Dataset substrate for the experimental study (Section VI).
//!
//! Provides the paper's running example as an exact fixture ([`vjday`]) and
//! three generators emulating the evaluation datasets:
//!
//! * [`person`] — the synthetic Person data, implemented as the paper
//!   describes (generate a true tuple, then a conflicting-but-consistent
//!   history; the entity instance is `E \ {tc}`);
//! * [`nba`] — a simulated NBA player-statistics dataset matching the
//!   published shape statistics (760 entities, 2–136 tuples each, 54
//!   currency constraints, 58 constant CFDs of the documented forms);
//! * [`career`] — a simulated CAREER/citeseer dataset (65 entities, 2–175
//!   tuples, citation-derived currency constraints, an
//!   `affiliation → city, country` CFD with ~347 patterns).
//!
//! The real NBA and CAREER scrapes are not redistributable/available
//! offline; DESIGN.md §3 documents why these generators preserve the
//! behaviour the experiments measure.

pub mod career;
pub mod gen;
pub mod gen_util;
pub mod nba;
pub mod person;
pub mod vjday;

use std::sync::Arc;

use cr_constraints::{ConstantCfd, CurrencyConstraint};
use cr_core::Specification;
use cr_types::{EntityInstance, Schema, Tuple, ValueTable};

/// A dataset: shared schema and constraints plus per-entity instances with
/// their ground-truth current tuples.
pub struct Dataset {
    /// Dataset name (for reports).
    pub name: String,
    /// The relation schema.
    pub schema: Arc<Schema>,
    /// Currency constraints `Σ` shared by all entities.
    pub sigma: Vec<CurrencyConstraint>,
    /// Constant CFDs `Γ` shared by all entities.
    pub gamma: Vec<ConstantCfd>,
    /// `(entity instance, ground-truth tuple)` pairs.
    pub entities: Vec<(EntityInstance, Tuple)>,
}

impl Dataset {
    /// Builds the specification (with empty currency orders, as in all the
    /// paper's experiments) for entity `i`.
    pub fn spec(&self, i: usize) -> Specification {
        Specification::without_orders(
            self.entities[i].0.clone(),
            self.sigma.clone(),
            self.gamma.clone(),
        )
    }

    /// The ground truth of entity `i`.
    pub fn truth(&self, i: usize) -> &Tuple {
        &self.entities[i].1
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True iff the dataset has no entities.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Re-interns every entity instance over **one dataset-wide
    /// [`ValueTable`]**: all values are interned exactly once, every
    /// entity's dense id rows reference the shared table (via `Arc`), and
    /// equal values are deduplicated across entities. Generators call this
    /// as their final step; the SAT encoder's instantiation then runs on
    /// dense ids whose interning cost was paid once per dataset rather than
    /// once per specification.
    pub(crate) fn share_value_table(mut self) -> Self {
        let mut table = ValueTable::new();
        for (e, truth) in &self.entities {
            table.intern_tuples(e.tuples());
            table.intern_tuples(std::iter::once(truth));
        }
        self.entities = self
            .entities
            .into_iter()
            .map(|(e, truth)| {
                let tuples = e.tuples().to_vec();
                let schema = e.schema().clone();
                (
                    EntityInstance::with_table(schema, tuples, &table)
                        .expect("arity already validated"),
                    truth,
                )
            })
            .collect();
        self
    }

    /// Summary statistics: `(entities, min/avg/max instance size, |Σ|, |Γ|)`.
    pub fn stats(&self) -> DatasetStats {
        let sizes: Vec<usize> = self.entities.iter().map(|(e, _)| e.len()).collect();
        let total: usize = sizes.iter().sum();
        DatasetStats {
            entities: self.entities.len(),
            min_tuples: sizes.iter().copied().min().unwrap_or(0),
            avg_tuples: if sizes.is_empty() { 0.0 } else { total as f64 / sizes.len() as f64 },
            max_tuples: sizes.iter().copied().max().unwrap_or(0),
            total_tuples: total,
            sigma: self.sigma.len(),
            gamma: self.gamma.len(),
        }
    }
}

/// Shape statistics of a dataset (compared against the paper's in tests).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetStats {
    /// Number of entities.
    pub entities: usize,
    /// Smallest entity instance.
    pub min_tuples: usize,
    /// Mean entity instance size.
    pub avg_tuples: f64,
    /// Largest entity instance.
    pub max_tuples: usize,
    /// Total tuples across entities.
    pub total_tuples: usize,
    /// Currency constraint count.
    pub sigma: usize,
    /// Constant CFD count.
    pub gamma: usize,
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} entities, {} tuples ({}..{} per entity, avg {:.1}), |Sigma|={}, |Gamma|={}",
            self.entities,
            self.total_tuples,
            self.min_tuples,
            self.max_tuples,
            self.avg_tuples,
            self.sigma,
            self.gamma
        )
    }
}
