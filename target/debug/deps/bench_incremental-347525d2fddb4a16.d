/root/repo/target/debug/deps/bench_incremental-347525d2fddb4a16.d: crates/cr-bench/src/bin/bench_incremental.rs Cargo.toml

/root/repo/target/debug/deps/libbench_incremental-347525d2fddb4a16.rmeta: crates/cr-bench/src/bin/bench_incremental.rs Cargo.toml

crates/cr-bench/src/bin/bench_incremental.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
