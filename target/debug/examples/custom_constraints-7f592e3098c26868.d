/root/repo/target/debug/examples/custom_constraints-7f592e3098c26868.d: examples/custom_constraints.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_constraints-7f592e3098c26868.rmeta: examples/custom_constraints.rs Cargo.toml

examples/custom_constraints.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
