//! End-to-end behaviour of the serving front-end: admission and
//! load-shedding, round-robin fairness, deadline cancellation (in-queue
//! and mid-request), idempotent retries, and eviction racing admission.
//!
//! All tests drive the [`Server`] with explicit logical ticks over an
//! in-memory backend — no wall clock, fully deterministic.

use cr_core::framework::DeductionMethod;
use cr_core::spec::UserInput;
use cr_data::gen::scenario_from_raw;
use cr_server::proto::{Reply, Request, Response, ServeError};
use cr_server::{AdmissionConfig, Server};
use cr_store::{MemoryBackend, SessionId, SessionStore, StoreConfig};
use cr_types::wire::{Envelope, IdemKey, RequestId, TenantId};
use cr_types::AttrId;

fn server_with(
    admission: AdmissionConfig,
    store: StoreConfig,
    sessions: u64,
    seed: u64,
) -> Server<MemoryBackend> {
    let store = SessionStore::new(MemoryBackend::new(), store).unwrap();
    let mut server = Server::new(store, admission);
    for s in 0..sessions {
        let scenario = scenario_from_raw(seed.wrapping_add(s), 4, 3, 60, false);
        server.open(s, &scenario.spec);
    }
    server
}

fn env(tenant: u32, session: u64, rid: u64) -> Envelope {
    Envelope {
        request_id: RequestId(rid),
        tenant: TenantId(tenant),
        session,
        deadline: None,
        idempotency: None,
    }
}

fn ok_response(reply: &Reply) -> &Response {
    match &reply.outcome {
        Ok(resp) => resp,
        Err(e) => panic!("expected success, got {e}"),
    }
}

#[test]
fn serves_reads_and_mutations_end_to_end() {
    let mut server =
        server_with(AdmissionConfig::default(), StoreConfig::default(), 1, 11);
    assert!(server.submit(0, env(0, 0, 1), Request::IsValid).is_none());
    assert!(server
        .submit(0, env(0, 0, 2), Request::TrueValues { method: DeductionMethod::UnitPropagation })
        .is_none());
    let mut input = UserInput::empty();
    let scenario = scenario_from_raw(11, 4, 3, 60, false);
    input.values.insert(AttrId(1), scenario.truth.get(AttrId(1)).clone());
    let mut menv = env(0, 0, 3);
    menv.idempotency = Some(IdemKey(1));
    assert!(server.submit(0, menv, Request::ApplyInput { input }).is_none());

    let replies = server.dispatch(1);
    assert_eq!(replies.len(), 3);
    assert_eq!(replies[0].request_id, RequestId(1));
    assert!(matches!(ok_response(&replies[0]), Response::Valid(_)));
    assert!(matches!(ok_response(&replies[1]), Response::TrueValues { .. }));
    assert!(matches!(ok_response(&replies[2]), Response::Applied { .. }));
    let t = server.telemetry();
    assert_eq!(t.admitted, 3);
    assert_eq!(t.served, 3);
    assert_eq!(t.failed, 0);
    // The mutation landed durably.
    assert!(server.store().log_len(SessionId(0)).unwrap() > 0);
}

#[test]
fn unknown_session_is_rejected_at_submit() {
    let mut server =
        server_with(AdmissionConfig::default(), StoreConfig::default(), 1, 3);
    let reply = server.submit(0, env(0, 99, 7), Request::IsValid).expect("immediate reject");
    assert_eq!(reply.request_id, RequestId(7));
    assert_eq!(reply.outcome, Err(ServeError::UnknownSession { session: 99 }));
}

#[test]
fn empty_token_bucket_sheds_with_honest_retry_after() {
    let admission = AdmissionConfig {
        refill_per_tick: 1,
        burst: 2,
        cost: 1,
        cold_cost: 0,
        ..AdmissionConfig::default()
    };
    let mut server = server_with(admission, StoreConfig::default(), 1, 5);
    assert!(server.submit(0, env(0, 0, 1), Request::IsValid).is_none());
    assert!(server.submit(0, env(0, 0, 2), Request::IsValid).is_none());
    let reply = server.submit(0, env(0, 0, 3), Request::IsValid).expect("shed");
    match reply.outcome {
        Err(ServeError::Overloaded { retry_after }) => assert_eq!(retry_after, 1),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(server.telemetry().shed_rate, 1);
    // After the refill tick the same request is admitted.
    assert!(server.submit(1, env(0, 0, 4), Request::IsValid).is_none());
}

#[test]
fn full_queue_sheds_instead_of_growing() {
    let admission = AdmissionConfig {
        refill_per_tick: 100,
        burst: 100,
        cost: 1,
        cold_cost: 0,
        queue_cap: 3,
        ..AdmissionConfig::default()
    };
    let mut server = server_with(admission, StoreConfig::default(), 1, 5);
    for rid in 0..3 {
        assert!(server.submit(0, env(0, 0, rid), Request::IsValid).is_none());
    }
    let reply = server.submit(0, env(0, 0, 9), Request::IsValid).expect("shed");
    assert!(matches!(reply.outcome, Err(ServeError::Overloaded { retry_after }) if retry_after > 0));
    assert_eq!(server.telemetry().shed_queue, 1);
    assert_eq!(server.queued(), 3);
}

#[test]
fn round_robin_keeps_a_trickle_tenant_ahead_of_a_flooder() {
    let admission = AdmissionConfig {
        refill_per_tick: 100,
        burst: 100,
        cost: 1,
        cold_cost: 0,
        queue_cap: 16,
        max_in_flight: 2,
        ..AdmissionConfig::default()
    };
    let mut server = server_with(admission, StoreConfig::default(), 1, 5);
    // Tenant 0 floods ten requests; tenant 1 submits one.
    for rid in 0..10 {
        assert!(server.submit(0, env(0, 0, rid), Request::IsValid).is_none());
    }
    assert!(server.submit(0, env(1, 0, 100), Request::IsValid).is_none());
    // With an in-flight budget of 2, the first dispatch must serve one
    // request from EACH tenant — the flood cannot starve the trickle.
    let replies = server.dispatch(1);
    assert_eq!(replies.len(), 2);
    let ids: Vec<u64> = replies.iter().map(|r| r.request_id.0).collect();
    assert!(ids.contains(&100), "trickle tenant starved: served {ids:?}");
}

#[test]
fn deadline_cancellation_at_dequeue_time() {
    let mut server =
        server_with(AdmissionConfig::default(), StoreConfig::default(), 1, 5);
    let mut e = env(0, 0, 1);
    e.deadline = Some(3);
    assert!(server.submit(0, e, Request::IsValid).is_none());
    // Dispatch only happens at tick 10 — past the deadline, so the
    // request is cancelled without touching the engine.
    let replies = server.dispatch(10);
    assert_eq!(replies.len(), 1);
    assert_eq!(
        replies[0].outcome,
        Err(ServeError::DeadlineExceeded { deadline: 3, now: 10, queued: true })
    );
    let t = server.telemetry();
    assert_eq!(t.expired_in_queue, 1);
    assert_eq!(t.served, 0);
    // The engine was never built: the session is still cold.
    assert!(!server.store().is_live(SessionId(0)));
}

#[test]
fn multi_phase_read_expires_mid_request() {
    let admission = AdmissionConfig { cost_per_phase: 10, ..AdmissionConfig::default() };
    let mut server = server_with(admission, StoreConfig::default(), 1, 5);
    // Suggest spends 4 phases at 10 ticks each; a deadline of 15 admits
    // phases starting at ticks 0 and 10, then expires at 20 — mid-request.
    let mut e = env(0, 0, 1);
    e.deadline = Some(15);
    assert!(server
        .submit(0, e, Request::Suggest { method: DeductionMethod::UnitPropagation })
        .is_none());
    let replies = server.dispatch(0);
    assert_eq!(replies.len(), 1);
    assert_eq!(
        replies[0].outcome,
        Err(ServeError::DeadlineExceeded { deadline: 15, now: 20, queued: false })
    );
    assert_eq!(server.telemetry().expired_mid_request, 1);
}

#[test]
fn idempotent_retry_replays_instead_of_reapplying() {
    let mut server =
        server_with(AdmissionConfig::default(), StoreConfig::default(), 1, 11);
    let scenario = scenario_from_raw(11, 4, 3, 60, false);
    let mut input = UserInput::empty();
    input.values.insert(AttrId(1), scenario.truth.get(AttrId(1)).clone());

    let mut e = env(0, 0, 1);
    e.idempotency = Some(IdemKey(42));
    assert!(server.submit(0, e.clone(), Request::ApplyInput { input: input.clone() }).is_none());
    let first = server.dispatch(1);
    assert_eq!(first.len(), 1);
    let first_resp = ok_response(&first[0]).clone();
    let log_after_first = server.store().log_len(SessionId(0)).unwrap();

    // The client never saw the ack and retries the same logical mutation
    // (same idempotency key, fresh request id).
    e.request_id = RequestId(2);
    assert!(server.submit(2, e, Request::ApplyInput { input }).is_none());
    let second = server.dispatch(3);
    assert_eq!(second.len(), 1);
    assert_eq!(ok_response(&second[0]), &first_resp);
    // Nothing was re-applied: the durable log did not grow and the ledger
    // answered the retry.
    assert_eq!(server.store().log_len(SessionId(0)).unwrap(), log_after_first);
    assert_eq!(server.telemetry().idem_hits, 1);
}

/// The idempotency ledger is store-level, not engine state: a retry
/// arriving after the session was evicted still deduplicates.
#[test]
fn idempotent_retry_survives_eviction() {
    let mut server =
        server_with(AdmissionConfig::default(), StoreConfig::default(), 1, 11);
    let scenario = scenario_from_raw(11, 4, 3, 60, false);
    let mut input = UserInput::empty();
    input.values.insert(AttrId(1), scenario.truth.get(AttrId(1)).clone());

    let mut e = env(0, 0, 1);
    e.idempotency = Some(IdemKey(7));
    assert!(server.submit(0, e.clone(), Request::ApplyInput { input: input.clone() }).is_none());
    let first = server.dispatch(1);
    let first_resp = ok_response(&first[0]).clone();
    let log_after_first = server.store().log_len(SessionId(0)).unwrap();

    assert!(server.store_mut().evict(SessionId(0)).unwrap());
    e.request_id = RequestId(2);
    assert!(server.submit(2, e, Request::ApplyInput { input }).is_none());
    let second = server.dispatch(3);
    assert_eq!(ok_response(&second[0]), &first_resp);
    assert_eq!(server.store().log_len(SessionId(0)).unwrap(), log_after_first);
    assert_eq!(server.telemetry().idem_hits, 1);
}

/// Satellite coverage: a request admitted for a session the LRU cap just
/// evicted must transparently rehydrate — `rehydrations` increments and
/// the client sees a normal reply, never an error.
#[test]
fn eviction_racing_admission_rehydrates_transparently() {
    let store_cfg = StoreConfig { max_live: 1, ..StoreConfig::default() };
    let mut server = server_with(AdmissionConfig::default(), store_cfg, 2, 23);

    // Warm session 0, then warm session 1 — the live cap evicts 0.
    assert!(server.submit(0, env(0, 0, 1), Request::IsValid).is_none());
    assert_eq!(server.dispatch(1).len(), 1);
    assert!(server.submit(2, env(0, 1, 2), Request::IsValid).is_none());
    assert_eq!(server.dispatch(3).len(), 1);
    assert!(!server.store().is_live(SessionId(0)), "live cap should have evicted session 0");
    assert!(server.store().is_live(SessionId(1)));
    let evictions_before = server.store().recovery().evictions;
    let rehydrations_before = server.store().recovery().rehydrations;
    assert!(evictions_before >= 1);

    // A request races in for the just-evicted session: admission charges
    // the cold cost, execution rehydrates, the client never notices.
    assert!(server.submit(4, env(0, 0, 3), Request::IsValid).is_none());
    let replies = server.dispatch(5);
    assert_eq!(replies.len(), 1);
    assert!(matches!(ok_response(&replies[0]), Response::Valid(_)));
    assert_eq!(server.store().recovery().rehydrations, rehydrations_before + 1);
    assert!(server.store().is_live(SessionId(0)));
    assert_eq!(server.telemetry().failed, 0);
}

/// The cold-session surcharge is visible in admission: with a bucket that
/// exactly covers a warm request, a cold target is shed.
#[test]
fn cold_sessions_cost_more_to_admit() {
    let admission = AdmissionConfig {
        refill_per_tick: 1,
        burst: 1,
        cost: 1,
        cold_cost: 2,
        ..AdmissionConfig::default()
    };
    let mut server = server_with(admission, StoreConfig::default(), 1, 5);
    // Session 0 is cold: cost 3 > burst 1 → shed, retry_after covers the
    // 2-token deficit at 1 token/tick.
    let reply = server.submit(0, env(0, 0, 1), Request::IsValid).expect("shed");
    assert_eq!(reply.outcome, Err(ServeError::Overloaded { retry_after: 2 }));
}
