/root/repo/target/debug/deps/encoder_vs_bruteforce-c3d4ee6ff76dbf0e.d: crates/cr-core/tests/encoder_vs_bruteforce.rs Cargo.toml

/root/repo/target/debug/deps/libencoder_vs_bruteforce-c3d4ee6ff76dbf0e.rmeta: crates/cr-core/tests/encoder_vs_bruteforce.rs Cargo.toml

crates/cr-core/tests/encoder_vs_bruteforce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
