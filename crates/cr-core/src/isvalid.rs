//! `IsValid`: validity checking via SAT (Section V-A, step (1) of Fig. 4).

use cr_sat::SolveResult;

use crate::encode::EncodedSpec;
use crate::spec::Specification;

/// Result of a validity check, carrying solver statistics for reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Validity {
    /// True iff the specification admits a valid completion.
    pub valid: bool,
    /// Conflicts the SAT search needed.
    pub conflicts: u64,
    /// Decisions the SAT search needed.
    pub decisions: u64,
}

/// Checks whether `spec` is valid: encodes it to `Φ(Se)` and runs the CDCL
/// solver (Lemma 5: `Se` is valid iff `Φ(Se)` is satisfiable).
pub fn is_valid(spec: &Specification) -> Validity {
    let enc = EncodedSpec::encode(spec);
    is_valid_encoded(&enc)
}

/// Validity of an already encoded specification (avoids re-encoding when the
/// caller also needs the encoding for deduction). Lazy encodings run the
/// CEGAR loop against a throwaway axiom source — `Unsat` is sound (injected
/// axioms are entailed by the eager formula) and `Sat` is exact (the final
/// model satisfies the full theory).
pub fn is_valid_encoded(enc: &EncodedSpec) -> Validity {
    let mut solver = enc.fresh_solver();
    let valid = if enc.options().is_lazy() {
        let mut source = crate::encode::TransientAxiomSource::new(enc);
        solver.solve_lazy(&mut source) == SolveResult::Sat
    } else {
        solver.solve() == SolveResult::Sat
    };
    Validity {
        valid,
        conflicts: solver.stats().conflicts,
        decisions: solver.stats().decisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_constraints::parser::{parse_cfds, parse_currency_constraint};
    use cr_types::{EntityInstance, Schema, Tuple, Value};

    #[test]
    fn consistent_spec_is_valid() {
        let s = Schema::new("p", ["status"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("working")]),
                Tuple::of([Value::str("retired")]),
            ],
        )
        .unwrap();
        let sigma = vec![parse_currency_constraint(
            &s,
            r#"t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2"#,
        )
        .unwrap()];
        assert!(is_valid(&Specification::without_orders(e, sigma, vec![])).valid);
    }

    #[test]
    fn cyclic_constraints_are_invalid() {
        let s = Schema::new("p", ["status"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("a")]),
                Tuple::of([Value::str("b")]),
            ],
        )
        .unwrap();
        let sigma = vec![
            parse_currency_constraint(
                &s,
                r#"t1[status] = "a" && t2[status] = "b" -> t1 <[status] t2"#,
            )
            .unwrap(),
            parse_currency_constraint(
                &s,
                r#"t1[status] = "b" && t2[status] = "a" -> t1 <[status] t2"#,
            )
            .unwrap(),
        ];
        assert!(!is_valid(&Specification::without_orders(e, sigma, vec![])).valid);
    }

    #[test]
    fn conflicting_cfds_are_invalid() {
        // Two CFDs force different cities for the same forced AC top.
        let s = Schema::new("p", ["AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::int(213), Value::str("NY")]),
                Tuple::of([Value::int(213), Value::str("LA")]),
            ],
        )
        .unwrap();
        // AC has a single value → it is trivially the top → both CFDs fire;
        // they demand both NY ≺ LA and LA ≺ NY.
        let gamma = [
            parse_cfds(&s, "AC = 213 -> city = \"LA\"").unwrap(),
            parse_cfds(&s, "AC = 213 -> city = \"NY\"").unwrap(),
        ]
        .concat();
        assert!(!is_valid(&Specification::without_orders(e, vec![], gamma)).valid);
    }

    #[test]
    fn cfd_rhs_outside_domain_invalidates_when_forced() {
        let s = Schema::new("p", ["AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![Tuple::of([Value::int(213), Value::str("NY")])],
        )
        .unwrap();
        // AC=213 is the only AC value (always top); city LA unobtainable.
        let gamma = parse_cfds(&s, "AC = 213 -> city = \"LA\"").unwrap();
        assert!(!is_valid(&Specification::without_orders(e, vec![], gamma)).valid);
    }
}
