/root/repo/target/debug/deps/fig8cd_overall-eea773ba6a106e1b.d: crates/cr-bench/src/bin/fig8cd_overall.rs

/root/repo/target/debug/deps/fig8cd_overall-eea773ba6a106e1b: crates/cr-bench/src/bin/fig8cd_overall.rs

crates/cr-bench/src/bin/fig8cd_overall.rs:
