//! Partial currency orders `⪯_Ai` over the tuples of an entity instance.

use std::collections::BTreeSet;

use cr_types::{AttrId, EntityInstance, TupleId};

/// Per-attribute partial currency orders at the tuple level.
///
/// A pair `(t1, t2)` in attribute `Ai`'s set asserts `t1 ≺_Ai t2`: `t2`'s
/// `Ai`-value is more current than `t1`'s. Pairs whose two tuples share the
/// same `Ai`-value are allowed in the input (they are trivially satisfied
/// members of `⪯_Ai`) and simply carry no strict information.
///
/// The same type represents both the initial orders of `It` and the
/// additional partial temporal orders `Ot` used to extend a specification
/// (`Se ⊕ Ot`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartialOrders {
    per_attr: Vec<BTreeSet<(TupleId, TupleId)>>,
}

impl PartialOrders {
    /// Empty orders for a schema of `arity` attributes.
    pub fn empty(arity: usize) -> Self {
        PartialOrders { per_attr: vec![BTreeSet::new(); arity] }
    }

    /// Number of attributes covered.
    pub fn arity(&self) -> usize {
        self.per_attr.len()
    }

    /// Asserts `t1 ≺_attr t2`. Self-pairs are ignored.
    pub fn add(&mut self, attr: AttrId, t1: TupleId, t2: TupleId) {
        if t1 != t2 {
            self.per_attr[attr.index()].insert((t1, t2));
        }
    }

    /// The pairs recorded for `attr`.
    pub fn pairs(&self, attr: AttrId) -> impl Iterator<Item = (TupleId, TupleId)> + '_ {
        self.per_attr[attr.index()].iter().copied()
    }

    /// Withdraws `t1 ≺_attr t2`, returning whether it was present. Used by
    /// push-based correction ingestion (upstream revisions withdrawing a
    /// previously-asserted currency order).
    pub fn remove(&mut self, attr: AttrId, t1: TupleId, t2: TupleId) -> bool {
        self.per_attr[attr.index()].remove(&(t1, t2))
    }

    /// Withdraws every pair of `attr` whose *upper* tuple is `hi` — the
    /// order extension a user answer induced for one attribute (Section III
    /// Remark (1) ranks the answer tuple above every existing tuple).
    /// Returns the removed pairs.
    pub fn remove_pairs_above(&mut self, attr: AttrId, hi: TupleId) -> Vec<(TupleId, TupleId)> {
        let set = &mut self.per_attr[attr.index()];
        let removed: Vec<(TupleId, TupleId)> =
            set.iter().copied().filter(|&(_, t2)| t2 == hi).collect();
        for pair in &removed {
            set.remove(pair);
        }
        removed
    }

    /// True iff `t1 ≺_attr t2` is recorded.
    pub fn contains(&self, attr: AttrId, t1: TupleId, t2: TupleId) -> bool {
        self.per_attr[attr.index()].contains(&(t1, t2))
    }

    /// Total size `|Ot| = Σ_i |≺'_Ai|` (the minimisation objective of the
    /// conflict resolution problem).
    pub fn size(&self) -> usize {
        self.per_attr.iter().map(BTreeSet::len).sum()
    }

    /// True iff no pairs are recorded.
    pub fn is_empty(&self) -> bool {
        self.per_attr.iter().all(BTreeSet::is_empty)
    }

    /// Merges `other` into `self` (the `⊕` of `Se ⊕ Ot` on the order part).
    pub fn merge(&mut self, other: &PartialOrders) {
        assert_eq!(self.arity(), other.arity(), "order arity mismatch");
        for (mine, theirs) in self.per_attr.iter_mut().zip(&other.per_attr) {
            mine.extend(theirs.iter().copied());
        }
    }

    /// Checks that, projected to attribute values of `entity`, the recorded
    /// pairs are acyclic (i.e. they can be a fragment of a partial order on
    /// values). Returns the offending attribute on failure.
    ///
    /// Pairs between equal values are ignored: they assert nothing strict.
    pub fn check_acyclic(&self, entity: &EntityInstance) -> Result<(), AttrId> {
        for attr in entity.schema().attr_ids() {
            // Build the value-level digraph.
            let mut edges: BTreeSet<(String, String)> = BTreeSet::new();
            let mut nodes: BTreeSet<String> = BTreeSet::new();
            for (t1, t2) in self.pairs(attr) {
                let v1 = entity.tuple(t1).get(attr);
                let v2 = entity.tuple(t2).get(attr);
                if v1 == v2 {
                    continue;
                }
                let a = v1.to_token().into_owned();
                let b = v2.to_token().into_owned();
                nodes.insert(a.clone());
                nodes.insert(b.clone());
                edges.insert((a, b));
            }
            // Kahn's algorithm.
            let mut remaining = edges.clone();
            let mut alive: BTreeSet<String> = nodes.clone();
            loop {
                let source = alive
                    .iter()
                    .find(|n| !remaining.iter().any(|(_, to)| to == *n))
                    .cloned();
                match source {
                    Some(n) => {
                        remaining.retain(|(from, _)| from != &n);
                        alive.remove(&n);
                    }
                    None => break,
                }
            }
            if !alive.is_empty() {
                return Err(attr);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_types::{Schema, Tuple, Value};

    fn entity() -> EntityInstance {
        let s = Schema::new("r", ["a", "b"]).unwrap();
        EntityInstance::new(
            s,
            vec![
                Tuple::of([Value::int(1), Value::str("x")]),
                Tuple::of([Value::int(2), Value::str("y")]),
                Tuple::of([Value::int(3), Value::str("x")]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn add_merge_size() {
        let mut o1 = PartialOrders::empty(2);
        o1.add(AttrId(0), TupleId(0), TupleId(1));
        o1.add(AttrId(0), TupleId(0), TupleId(0)); // ignored
        let mut o2 = PartialOrders::empty(2);
        o2.add(AttrId(1), TupleId(1), TupleId(2));
        o2.add(AttrId(0), TupleId(0), TupleId(1)); // duplicate of o1's
        o1.merge(&o2);
        assert_eq!(o1.size(), 2);
        assert!(!o1.is_empty());
    }

    #[test]
    fn acyclic_check_accepts_chains_rejects_cycles() {
        let e = entity();
        let mut ok = PartialOrders::empty(2);
        ok.add(AttrId(0), TupleId(0), TupleId(1));
        ok.add(AttrId(0), TupleId(1), TupleId(2));
        assert!(ok.check_acyclic(&e).is_ok());

        let mut cyc = ok.clone();
        cyc.add(AttrId(0), TupleId(2), TupleId(0));
        assert_eq!(cyc.check_acyclic(&e), Err(AttrId(0)));
    }

    #[test]
    fn same_value_pairs_do_not_create_cycles() {
        let e = entity();
        let mut o = PartialOrders::empty(2);
        // tuples 0 and 2 share value "x" on attr b: both directions fine.
        o.add(AttrId(1), TupleId(0), TupleId(2));
        o.add(AttrId(1), TupleId(2), TupleId(0));
        assert!(o.check_acyclic(&e).is_ok());
    }
}
