//! Ad-hoc phase breakdown of the end-to-end loop (validity / deduce /
//! suggest / other) for the incremental and scratch paths. Not part of the
//! published figures; handy when hunting hot spots.

use std::time::{Duration, Instant};

use cr_bench::{arg_entities, arg_seed, quick};
use cr_core::framework::{GroundTruthOracle, ResolutionConfig, Resolver};

fn main() {
    let entities = arg_entities(12);
    let seed = arg_seed(7);
    for label in ["nba", "person", "career"] {
        let ds = match label {
            "nba" => quick::nba(entities, seed),
            "person" => quick::person(entities, seed),
            _ => quick::career(entities.min(65), seed),
        };
        for incremental in [false, true] {
            let r = Resolver::new(ResolutionConfig {
                max_rounds: 3,
                incremental,
                ..Default::default()
            });
            let (mut v, mut d, mut s) = (Duration::ZERO, Duration::ZERO, Duration::ZERO);
            let mut nrounds = 0usize;
            let t = Instant::now();
            for i in 0..ds.len() {
                let spec = ds.spec(i);
                let mut oracle = GroundTruthOracle::with_cap(ds.truth(i).clone(), 1);
                let out = r.resolve(&spec, &mut oracle);
                for round in &out.rounds {
                    v += round.validity;
                    d += round.deduce;
                    s += round.suggest;
                    nrounds += 1;
                }
            }
            let total = t.elapsed();
            println!(
                "{label:>8} incremental={incremental}: total {total:>9.4?} validity {v:>9.4?} deduce {d:>9.4?} suggest {s:>9.4?} other {:>9.4?} rounds {nrounds}",
                total.saturating_sub(v + d + s)
            );
        }
    }
}
