/root/repo/target/debug/deps/random_cross_check-30f5a7fd8fbf924a.d: crates/cr-sat/tests/random_cross_check.rs Cargo.toml

/root/repo/target/debug/deps/librandom_cross_check-30f5a7fd8fbf924a.rmeta: crates/cr-sat/tests/random_cross_check.rs Cargo.toml

crates/cr-sat/tests/random_cross_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
