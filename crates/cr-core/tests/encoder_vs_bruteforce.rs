//! Property tests: the SAT encoding against the brute-force reference
//! semantics on randomly generated small specifications.
//!
//! * `IsValid` must agree with "at least one valid completion exists".
//! * `DeduceOrder` results must hold in every valid completion (soundness).
//! * `NaiveDeduce` must derive exactly the brute-force implied orders
//!   (completeness of the probes under the totality encoding).
//! * True values from deduced orders must agree with the completions'
//!   consensus current tuple.

use proptest::prelude::*;

use cr_constraints::{CompOp, CurrencyConstraint, Predicate, TupleRef};
use cr_core::bruteforce::{
    brute_force_implied_orders, brute_force_true_values, brute_force_valid,
};
use cr_core::encode::EncodedSpec;
use cr_core::{deduce_order, is_valid, naive_deduce, true_values_from_orders, Specification};
use cr_types::{AttrId, EntityInstance, Schema, Tuple, Value};

const ATTRS: usize = 3;
const VALUES_PER_ATTR: i64 = 3;

/// A compact generator language for random specs.
#[derive(Clone, Debug)]
struct SpecSeed {
    tuples: Vec<Vec<i64>>, // value indices per attribute; -1 = null
    constraints: Vec<ConstraintSeed>,
    cfds: Vec<CfdSeed>,
}

#[derive(Clone, Debug)]
enum ConstraintSeed {
    /// t1[a]=c1 && t2[a]=c2 -> t1 <[r] t2
    ConstPair { attr: usize, c1: i64, c2: i64, concl: usize },
    /// t1[a] < t2[a] -> t1 <[r] t2
    Monotone { attr: usize, concl: usize },
    /// t1 <[a] t2 -> t1 <[r] t2
    OrderProp { attr: usize, concl: usize },
}

#[derive(Clone, Debug)]
struct CfdSeed {
    lhs_attr: usize,
    lhs_val: i64,
    rhs_attr: usize,
    rhs_val: i64,
}

fn schema() -> std::sync::Arc<Schema> {
    Schema::new("r", (0..ATTRS).map(|i| format!("a{i}"))).unwrap()
}

fn value(v: i64) -> Value {
    if v < 0 {
        Value::Null
    } else {
        Value::int(v)
    }
}

fn build_spec(seed: &SpecSeed) -> Option<Specification> {
    let s = schema();
    let tuples: Vec<Tuple> = seed
        .tuples
        .iter()
        .map(|row| Tuple::from_values(row.iter().map(|&v| value(v)).collect()))
        .collect();
    let entity = EntityInstance::new(s.clone(), tuples).ok()?;
    let mut sigma = Vec::new();
    for c in &seed.constraints {
        let constraint = match c {
            ConstraintSeed::ConstPair { attr, c1, c2, concl } => CurrencyConstraint::new(
                s.clone(),
                None,
                vec![
                    Predicate::ConstCmp {
                        tuple: TupleRef::T1,
                        attr: AttrId(*attr as u16),
                        op: CompOp::Eq,
                        constant: value(*c1),
                    },
                    Predicate::ConstCmp {
                        tuple: TupleRef::T2,
                        attr: AttrId(*attr as u16),
                        op: CompOp::Eq,
                        constant: value(*c2),
                    },
                ],
                AttrId(*concl as u16),
            ),
            ConstraintSeed::Monotone { attr, concl } => CurrencyConstraint::new(
                s.clone(),
                None,
                vec![Predicate::TupleCmp { attr: AttrId(*attr as u16), op: CompOp::Lt }],
                AttrId(*concl as u16),
            ),
            ConstraintSeed::OrderProp { attr, concl } => CurrencyConstraint::new(
                s.clone(),
                None,
                vec![Predicate::Order { attr: AttrId(*attr as u16) }],
                AttrId(*concl as u16),
            ),
        }
        .ok()?;
        sigma.push(constraint);
    }
    let mut gamma = Vec::new();
    for c in &seed.cfds {
        if c.lhs_attr == c.rhs_attr || c.lhs_val < 0 || c.rhs_val < 0 {
            continue;
        }
        gamma.push(
            cr_constraints::ConstantCfd::new(
                s.clone(),
                None,
                vec![(AttrId(c.lhs_attr as u16), value(c.lhs_val))],
                (AttrId(c.rhs_attr as u16), value(c.rhs_val)),
            )
            .ok()?,
        );
    }
    Some(Specification::without_orders(entity, sigma, gamma))
}

fn seed_strategy() -> impl Strategy<Value = SpecSeed> {
    let tuple = prop::collection::vec(-1i64..VALUES_PER_ATTR, ATTRS);
    let tuples = prop::collection::vec(tuple, 1..4);
    let constraint = prop_oneof![
        (0..ATTRS, 0..VALUES_PER_ATTR, 0..VALUES_PER_ATTR, 0..ATTRS).prop_map(
            |(attr, c1, c2, concl)| ConstraintSeed::ConstPair { attr, c1, c2, concl }
        ),
        (0..ATTRS, 0..ATTRS).prop_map(|(attr, concl)| ConstraintSeed::Monotone { attr, concl }),
        (0..ATTRS, 0..ATTRS).prop_map(|(attr, concl)| ConstraintSeed::OrderProp { attr, concl }),
    ];
    let constraints = prop::collection::vec(constraint, 0..5);
    let cfd = (0..ATTRS, 0..VALUES_PER_ATTR, 0..ATTRS, 0..VALUES_PER_ATTR).prop_map(
        |(lhs_attr, lhs_val, rhs_attr, rhs_val)| CfdSeed { lhs_attr, lhs_val, rhs_attr, rhs_val },
    );
    let cfds = prop::collection::vec(cfd, 0..3);
    (tuples, constraints, cfds)
        .prop_map(|(tuples, constraints, cfds)| SpecSeed { tuples, constraints, cfds })
}

const LIMIT: usize = 1_000_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn isvalid_matches_bruteforce(seed in seed_strategy()) {
        let Some(spec) = build_spec(&seed) else { return Ok(()); };
        let expected = brute_force_valid(&spec, LIMIT);
        let got = is_valid(&spec).valid;
        prop_assert_eq!(got, expected, "IsValid disagreed with brute force");
    }

    #[test]
    fn deduce_order_is_sound(seed in seed_strategy()) {
        let Some(spec) = build_spec(&seed) else { return Ok(()); };
        if !brute_force_valid(&spec, LIMIT) {
            return Ok(());
        }
        let enc = EncodedSpec::encode(&spec);
        let od = deduce_order(&enc).expect("valid spec propagates without conflict");
        let implied = brute_force_implied_orders(&spec, LIMIT);
        for attr in spec.schema().attr_ids() {
            for (lo, hi) in od.pairs(attr) {
                let vlo = enc.value(attr, lo).clone();
                let vhi = enc.value(attr, hi).clone();
                if vlo.is_null() || vhi.is_null() {
                    continue; // null-bottom axioms are true by the semantics
                }
                prop_assert!(
                    implied.iter().any(|(a, x, y)| *a == attr && *x == vlo && *y == vhi),
                    "DeduceOrder derived {vlo:?} ≺ {vhi:?} on {attr:?}, not implied semantically"
                );
            }
        }
    }

    #[test]
    fn naive_deduce_is_exactly_the_implied_orders(seed in seed_strategy()) {
        let Some(spec) = build_spec(&seed) else { return Ok(()); };
        if !brute_force_valid(&spec, LIMIT) {
            return Ok(());
        }
        let enc = EncodedSpec::encode(&spec);
        let od = naive_deduce(&enc).expect("valid");
        let implied = brute_force_implied_orders(&spec, LIMIT);
        // Completeness: every semantically implied pair is found.
        for (attr, vlo, vhi) in &implied {
            let lo = enc.value_id(*attr, vlo).unwrap();
            let hi = enc.value_id(*attr, vhi).unwrap();
            prop_assert!(
                od.contains(*attr, lo, hi),
                "NaiveDeduce missed implied order {vlo:?} ≺ {vhi:?}"
            );
        }
        // Soundness: every found non-null pair is semantically implied.
        for attr in spec.schema().attr_ids() {
            for (lo, hi) in od.pairs(attr) {
                let vlo = enc.value(attr, lo).clone();
                let vhi = enc.value(attr, hi).clone();
                if vlo.is_null() || vhi.is_null() {
                    continue;
                }
                prop_assert!(
                    implied.iter().any(|(a, x, y)| *a == attr && *x == vlo && *y == vhi),
                    "NaiveDeduce over-derived {vlo:?} ≺ {vhi:?}"
                );
            }
        }
    }

    #[test]
    fn true_values_agree_with_completion_consensus(seed in seed_strategy()) {
        let Some(spec) = build_spec(&seed) else { return Ok(()); };
        let (bf_valid, bf_truth) = brute_force_true_values(&spec, LIMIT);
        if !bf_valid {
            return Ok(());
        }
        let enc = EncodedSpec::encode(&spec);
        let od = naive_deduce(&enc).expect("valid");
        let tv = true_values_from_orders(&enc, &od);
        for attr in spec.schema().attr_ids() {
            // Complete deduction must match the consensus exactly.
            let got = tv.get(attr);
            let expected = bf_truth[attr.index()].as_ref();
            prop_assert_eq!(
                got, expected,
                "true value mismatch on {:?}", attr
            );
        }
    }
}
