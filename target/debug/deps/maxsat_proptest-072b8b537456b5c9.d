/root/repo/target/debug/deps/maxsat_proptest-072b8b537456b5c9.d: crates/cr-maxsat/tests/maxsat_proptest.rs

/root/repo/target/debug/deps/maxsat_proptest-072b8b537456b5c9: crates/cr-maxsat/tests/maxsat_proptest.rs

crates/cr-maxsat/tests/maxsat_proptest.rs:
