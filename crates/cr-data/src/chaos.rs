//! Fault-injecting delivery for causal revision streams.
//!
//! [`chaos`] takes a canonical `(round, event)` schedule (from
//! [`crate::gen::causal_timeline`]) and applies seeded delivery faults:
//!
//! * **reorder-within-window** — each round's batch is shuffled (the
//!   window is the poll batch);
//! * **duplicate** — selected events are re-delivered at the same or a
//!   later round (the frontier's `(source, hlc)` dedup must drop them);
//! * **delay** — selected events move to later rounds. Because delivery is
//!   per-round polling, a delay is simultaneously a **batch split** (the
//!   event leaves its original batch) and a **batch merge** (it joins
//!   another round's batch), and it forces frontier buffering whenever a
//!   causal successor now arrives first;
//! * **corrupt-event injection** — malformed revisions (unknown CFD /
//!   tuple / attribute / order targets) from dedicated corruptor sources.
//!   Corrupt events carry *valid* stamps (sequence 1, no dependencies), so
//!   quarantining them never blocks a stream — exactly the degradation
//!   path [`cr_core::ingest::RevisionPolicy`] exists for.
//!
//! The transformed schedule is fed back through
//! [`cr_core::causal::ScriptedCausalRevisions`]; the convergence
//! differentials then assert that every chaotic delivery resolves exactly
//! like the canonical one and like scratch re-resolution.

use cr_core::causal::{CausalRevision, ScriptedCausalRevisions};
use cr_core::ingest::Revision;
use cr_core::Specification;
use cr_types::{AttrId, CausalStamp, Hlc, SourceId, TupleId, VectorClock};
use rand::prelude::*;

use crate::gen_util::rng;

/// Knobs of one seeded chaos transformation.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// RNG seed; equal configs produce identical fault schedules.
    pub seed: u64,
    /// Shuffle each round's batch (reorder within the delivery window).
    pub reorder: bool,
    /// Events to re-deliver (at the original round or up to 2 rounds
    /// later); the frontier must drop every one.
    pub duplicates: usize,
    /// Per-event probability of being delayed to a later round.
    pub delay_density: f64,
    /// Maximum delay in rounds (≥ 1 when `delay_density > 0`).
    pub delay_max: usize,
    /// Malformed events to inject from dedicated corruptor sources
    /// (`SourceId(900)`, `SourceId(901)`, …).
    pub corrupt: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            reorder: true,
            duplicates: 2,
            delay_density: 0.0,
            delay_max: 3,
            corrupt: 0,
        }
    }
}

impl ChaosConfig {
    /// A schedule-preserving profile: within-round reorder plus duplicates
    /// only. Every event still *applies* in its canonical round, so even
    /// interleaved interaction (answers between deliveries, re-opens)
    /// converges with canonical delivery.
    pub fn schedule_preserving(seed: u64) -> Self {
        ChaosConfig { seed, ..Default::default() }
    }

    /// A fully adversarial profile: reorder, duplicates and cross-round
    /// delays (splits/merges batches and forces buffering). Convergence
    /// with canonical delivery is guaranteed for drain-first runs
    /// (`CausalReplayConfig { interact_while_streaming: false, .. }`),
    /// where the post-drain state is a pure function of the event set.
    pub fn adversarial(seed: u64) -> Self {
        ChaosConfig { seed, delay_density: 0.6, ..Default::default() }
    }
}

/// Applies the seeded fault schedule to a canonical `(round, event)`
/// schedule and returns the chaotic delivery source. `spec` is only used
/// to craft corrupt targets that are guaranteed out of range.
pub fn chaos(
    schedule: &[(usize, CausalRevision)],
    spec: &Specification,
    cfg: &ChaosConfig,
) -> ScriptedCausalRevisions {
    let mut r = rng(cfg.seed ^ 0x0DD5_0CC5_DEAD_BEEFu64);
    let mut out: Vec<(usize, CausalRevision)> = schedule.to_vec();

    // Delay: move events to later rounds (split from their batch, merged
    // into another). The frontier re-establishes causal order.
    if cfg.delay_density > 0.0 && cfg.delay_max > 0 {
        for entry in &mut out {
            if r.gen_bool(cfg.delay_density.clamp(0.0, 1.0)) {
                entry.0 += r.gen_range(1..=cfg.delay_max);
            }
        }
    }

    // Duplicates: re-deliver existing events at the same or a later round.
    if !out.is_empty() {
        for _ in 0..cfg.duplicates {
            let i = r.gen_range(0..out.len());
            let (round, ev) = out[i].clone();
            out.push((round + r.gen_range(0..3usize), ev));
        }
    }

    // Corrupt injections: each from its own corruptor source with a valid
    // first-and-only stamp, rotating through the malformed-target kinds.
    let gamma_len = spec.gamma().len();
    let len = spec.entity().len();
    let arity = spec.schema().arity();
    let max_round = out.iter().map(|(r, _)| *r).max().unwrap_or(0);
    for k in 0..cfg.corrupt {
        let source = SourceId(900 + k as u32);
        let mut vclock = VectorClock::new();
        vclock.observe(source, 1);
        let stamp = CausalStamp { source, hlc: Hlc::new(1, k as u32), vclock };
        let rev = match k % 4 {
            0 => Revision::RetractCfd { cfd: gamma_len + 7 },
            1 => Revision::ReplaceValue {
                tuple: TupleId((len + 9) as u32),
                attr: AttrId(0),
                value: cr_types::Value::Null,
            },
            2 => Revision::WithdrawOrder {
                attr: AttrId((arity + 3) as u16),
                lo: TupleId(0),
                hi: TupleId(0),
            },
            _ => Revision::WithdrawAnswer { attr: AttrId(0), tuple: TupleId((len + 4) as u32) },
        };
        out.push((r.gen_range(0..=max_round.max(1)), CausalRevision { stamp, rev }));
    }

    // Reorder within each round's batch (stable sort by round in
    // `ScriptedCausalRevisions::new` preserves the shuffled order).
    if cfg.reorder {
        let mut rounds: Vec<usize> = out.iter().map(|(round, _)| *round).collect();
        rounds.sort_unstable();
        rounds.dedup();
        let mut shuffled: Vec<(usize, CausalRevision)> = Vec::with_capacity(out.len());
        for round in rounds {
            let mut batch: Vec<CausalRevision> = out
                .iter()
                .filter(|(rd, _)| *rd == round)
                .map(|(_, ev)| ev.clone())
                .collect();
            batch.shuffle(&mut r);
            shuffled.extend(batch.into_iter().map(|ev| (round, ev)));
        }
        out = shuffled;
    }

    ScriptedCausalRevisions::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{causal_timeline, scenario_from_raw, CausalTimelineConfig, Scenario};
    use cr_core::causal::CausalRevisionSource;

    fn drain(src: &mut ScriptedCausalRevisions, spec: &Specification) -> Vec<CausalRevision> {
        let mut all = Vec::new();
        let mut round = 0;
        while src.remaining() > 0 {
            all.extend(src.poll(round, spec));
            round += 1;
        }
        all
    }

    #[test]
    fn chaos_preserves_the_event_multiset_modulo_faults() {
        let Scenario { spec, .. } = scenario_from_raw(3, 8, 5, 40, false);
        let timeline = causal_timeline(&spec, &CausalTimelineConfig::default());
        let cfg = ChaosConfig { seed: 9, duplicates: 3, corrupt: 2, ..ChaosConfig::adversarial(9) };
        let mut chaotic = chaos(&timeline, &spec, &cfg);
        let delivered = drain(&mut chaotic, &spec);
        assert_eq!(delivered.len(), timeline.len() + cfg.duplicates + cfg.corrupt);
        // Every original event survives (by stamp identity).
        for (_, ev) in &timeline {
            assert!(
                delivered.iter().any(|d| d.stamp == ev.stamp),
                "chaos must never drop events permanently"
            );
        }
        // Determinism: the same config reproduces the same fault schedule.
        let again = drain(&mut chaos(&timeline, &spec, &cfg), &spec);
        assert_eq!(delivered, again);
    }

    #[test]
    fn schedule_preserving_chaos_keeps_rounds() {
        let Scenario { spec, .. } = scenario_from_raw(5, 6, 4, 30, false);
        let timeline = causal_timeline(&spec, &CausalTimelineConfig::default());
        let mut chaotic = chaos(&timeline, &spec, &ChaosConfig::schedule_preserving(11));
        // Collect delivery rounds per original stamp: each original event
        // must still first arrive at its canonical round (duplicates may
        // trail later).
        let mut first_arrival = std::collections::BTreeMap::new();
        let mut round = 0;
        while chaotic.remaining() > 0 {
            for ev in chaotic.poll(round, &spec) {
                first_arrival.entry(ev.stamp.dedup_key()).or_insert(round);
            }
            round += 1;
        }
        for (canonical_round, ev) in &timeline {
            assert_eq!(first_arrival.get(&ev.stamp.dedup_key()), Some(canonical_round));
        }
    }
}
