/root/repo/target/debug/deps/conflict_resolution-e0367cd9625fb6bc.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libconflict_resolution-e0367cd9625fb6bc.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
