/root/repo/target/debug/deps/parser_proptest-c21e960875f51e93.d: crates/cr-constraints/tests/parser_proptest.rs Cargo.toml

/root/repo/target/debug/deps/libparser_proptest-c21e960875f51e93.rmeta: crates/cr-constraints/tests/parser_proptest.rs Cargo.toml

crates/cr-constraints/tests/parser_proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
