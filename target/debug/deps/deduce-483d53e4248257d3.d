/root/repo/target/debug/deps/deduce-483d53e4248257d3.d: crates/cr-bench/benches/deduce.rs

/root/repo/target/debug/deps/deduce-483d53e4248257d3: crates/cr-bench/benches/deduce.rs

crates/cr-bench/benches/deduce.rs:
