/root/repo/target/debug/deps/fig8_accuracy-52492d3f431af170.d: crates/cr-bench/src/bin/fig8_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_accuracy-52492d3f431af170.rmeta: crates/cr-bench/src/bin/fig8_accuracy.rs Cargo.toml

crates/cr-bench/src/bin/fig8_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
