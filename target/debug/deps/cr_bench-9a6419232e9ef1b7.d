/root/repo/target/debug/deps/cr_bench-9a6419232e9ef1b7.d: crates/cr-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcr_bench-9a6419232e9ef1b7.rmeta: crates/cr-bench/src/lib.rs Cargo.toml

crates/cr-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
