//! Text syntax for constraints, mirroring the paper's Fig. 3.
//!
//! Currency constraints (ASCII rendition of `∀t1,t2 (ω → t1 ≺_Ar t2)`):
//!
//! ```text
//! phi1: forall t1,t2 (t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2)
//! phi4: t1[kids] < t2[kids] -> t1 <[kids] t2
//! phi5: t1 <[status] t2 -> t1 <[job] t2
//! ```
//!
//! The `forall t1,t2` prefix, outer parentheses and the `name:` label are
//! optional. The Unicode spellings `∧`, `→` and `≺attr` are accepted.
//!
//! Constant CFDs (one LHS pattern, one or more RHS pairs — a multi-RHS line
//! expands into one CFD per RHS attribute, which is how the CAREER dataset's
//! `affiliation → city, country` dependency is represented):
//!
//! ```text
//! psi1: (AC = 213 -> city = "LA")
//! (affiliation = "UoE" -> city = "Edinburgh", country = "UK")
//! ```
//!
//! Multi-constraint files: one constraint per line; blank lines and `#`
//! comments are skipped ([`parse_currency_file`], [`parse_cfd_file`]).

use std::sync::Arc;

use cr_types::{Schema, Value};

use crate::cfd::ConstantCfd;
use crate::currency::CurrencyConstraint;
use crate::error::ConstraintError;
use crate::op::CompOp;
use crate::predicate::{Predicate, TupleRef};

// ---------------------------------------------------------------- lexer --

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Arrow,
    And,
    Prec, // ≺
    Op(String),
}

#[derive(Clone, Debug)]
struct SpannedTok {
    tok: Tok,
    offset: usize,
}

fn lex(input: &str) -> Result<Vec<SpannedTok>, ConstraintError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    // Track byte offset for error messages.
    let mut offset = 0;
    let advance = |c: char| c.len_utf8();
    while i < bytes.len() {
        let c = bytes[i];
        let start = offset;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
                offset += advance(c);
            }
            '(' => {
                out.push(SpannedTok { tok: Tok::LParen, offset: start });
                i += 1;
                offset += 1;
            }
            ')' => {
                out.push(SpannedTok { tok: Tok::RParen, offset: start });
                i += 1;
                offset += 1;
            }
            '[' => {
                out.push(SpannedTok { tok: Tok::LBracket, offset: start });
                i += 1;
                offset += 1;
            }
            ']' => {
                out.push(SpannedTok { tok: Tok::RBracket, offset: start });
                i += 1;
                offset += 1;
            }
            ',' => {
                out.push(SpannedTok { tok: Tok::Comma, offset: start });
                i += 1;
                offset += 1;
            }
            ':' => {
                out.push(SpannedTok { tok: Tok::Colon, offset: start });
                i += 1;
                offset += 1;
            }
            '∧' => {
                out.push(SpannedTok { tok: Tok::And, offset: start });
                i += 1;
                offset += advance(c);
            }
            '→' => {
                out.push(SpannedTok { tok: Tok::Arrow, offset: start });
                i += 1;
                offset += advance(c);
            }
            '≺' => {
                out.push(SpannedTok { tok: Tok::Prec, offset: start });
                i += 1;
                offset += advance(c);
            }
            '&' => {
                if bytes.get(i + 1) == Some(&'&') {
                    i += 2;
                    offset += 2;
                } else {
                    i += 1;
                    offset += 1;
                }
                out.push(SpannedTok { tok: Tok::And, offset: start });
            }
            '-' => {
                if bytes.get(i + 1) == Some(&'>') {
                    out.push(SpannedTok { tok: Tok::Arrow, offset: start });
                    i += 2;
                    offset += 2;
                } else if bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    let (tok, len) = lex_number(&bytes[i..]);
                    out.push(SpannedTok { tok, offset: start });
                    i += len;
                    offset += len;
                } else {
                    return Err(ConstraintError::parse("stray '-'", start));
                }
            }
            '"' => {
                let mut s = String::new();
                let mut j = i + 1;
                let mut consumed = 1;
                let mut closed = false;
                while j < bytes.len() {
                    let d = bytes[j];
                    consumed += advance(d);
                    j += 1;
                    if d == '"' {
                        closed = true;
                        break;
                    }
                    if d == '\\' && j < bytes.len() {
                        let e = bytes[j];
                        consumed += advance(e);
                        j += 1;
                        s.push(e);
                    } else {
                        s.push(d);
                    }
                }
                if !closed {
                    return Err(ConstraintError::parse("unterminated string literal", start));
                }
                out.push(SpannedTok { tok: Tok::Str(s), offset: start });
                offset += consumed;
                i = j;
            }
            '<' | '>' | '=' | '!' => {
                let mut op = String::from(c);
                if bytes.get(i + 1) == Some(&'=') || (c == '<' && bytes.get(i + 1) == Some(&'>')) {
                    op.push(bytes[i + 1]);
                    i += 2;
                    offset += 2;
                } else {
                    i += 1;
                    offset += 1;
                }
                if op == "!" {
                    return Err(ConstraintError::parse("stray '!'", start));
                }
                out.push(SpannedTok { tok: Tok::Op(op), offset: start });
            }
            d if d.is_ascii_digit() => {
                let (tok, len) = lex_number(&bytes[i..]);
                out.push(SpannedTok { tok, offset: start });
                i += len;
                offset += len;
            }
            d if d.is_alphanumeric() || d == '_' => {
                let mut s = String::new();
                let mut consumed = 0;
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_alphanumeric() || bytes[j] == '_' || bytes[j] == '/')
                {
                    s.push(bytes[j]);
                    consumed += advance(bytes[j]);
                    j += 1;
                }
                out.push(SpannedTok { tok: Tok::Ident(s), offset: start });
                i = j;
                offset += consumed;
            }
            other => {
                return Err(ConstraintError::parse(format!("unexpected character `{other}`"), start));
            }
        }
    }
    Ok(out)
}

/// Lexes a number starting at `chars[0]` (possibly `-`); returns the token
/// and character count consumed.
fn lex_number(chars: &[char]) -> (Tok, usize) {
    let mut s = String::new();
    let mut i = 0;
    if chars[0] == '-' {
        s.push('-');
        i = 1;
    }
    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
        s.push(chars[i]);
        i += 1;
    }
    (Tok::Num(s), i)
}

// --------------------------------------------------------------- parser --

struct Parser<'a> {
    toks: Vec<SpannedTok>,
    pos: usize,
    schema: &'a Schema,
}

impl<'a> Parser<'a> {
    fn new(schema: &'a Schema, input: &str) -> Result<Self, ConstraintError> {
        Ok(Parser { toks: lex(input)?, pos: 0, schema })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, ahead: usize) -> Option<&Tok> {
        self.toks.get(self.pos + ahead).map(|t| &t.tok)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or_else(|| self.toks.last().map(|t| t.offset + 1).unwrap_or(0))
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), ConstraintError> {
        let off = self.offset();
        match self.bump() {
            Some(t) if &t == tok => Ok(()),
            got => Err(ConstraintError::parse(
                format!("expected {what}, found {got:?}"),
                off,
            )),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// `name ':'` prefix if present (identifier not named t1/t2/forall).
    fn take_label(&mut self) -> Option<String> {
        if let (Some(Tok::Ident(name)), Some(Tok::Colon)) = (self.peek(), self.peek_at(1)) {
            let name = name.clone();
            self.pos += 2;
            Some(name)
        } else {
            None
        }
    }

    fn attr(&mut self, name: &str) -> Result<cr_types::AttrId, ConstraintError> {
        self.schema
            .attr_id(name)
            .ok_or_else(|| ConstraintError::UnknownAttribute(name.to_string()))
    }

    fn literal(&mut self) -> Result<Value, ConstraintError> {
        let off = self.offset();
        match self.bump() {
            Some(Tok::Str(s)) => Ok(Value::str(s)),
            Some(Tok::Num(n)) => Ok(Value::parse_token(&n)),
            Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("null") => Ok(Value::Null),
            Some(Tok::Ident(id)) => Ok(Value::str(id)), // bare word constant
            got => Err(ConstraintError::parse(
                format!("expected a constant, found {got:?}"),
                off,
            )),
        }
    }

    /// Parses `t1` or `t2`.
    fn tuple_ref(&mut self) -> Result<TupleRef, ConstraintError> {
        let off = self.offset();
        match self.bump() {
            Some(Tok::Ident(id)) if id == "t1" => Ok(TupleRef::T1),
            Some(Tok::Ident(id)) if id == "t2" => Ok(TupleRef::T2),
            got => Err(ConstraintError::parse(
                format!("expected t1 or t2, found {got:?}"),
                off,
            )),
        }
    }

    /// Parses an order atom `t1 <[attr] t2` or `t1 ≺attr t2`, assuming the
    /// caller has already seen it coming. Returns the attribute.
    fn order_atom(&mut self) -> Result<cr_types::AttrId, ConstraintError> {
        let who = self.tuple_ref()?;
        let off = self.offset();
        if who != TupleRef::T1 {
            return Err(ConstraintError::parse("order predicates read `t1 < t2`", off));
        }
        let attr = match self.bump() {
            Some(Tok::Op(op)) if op == "<" => {
                self.expect(&Tok::LBracket, "'[' after '<'")?;
                let off2 = self.offset();
                let name = match self.bump() {
                    Some(Tok::Ident(n)) => n,
                    got => {
                        return Err(ConstraintError::parse(
                            format!("expected attribute name, found {got:?}"),
                            off2,
                        ))
                    }
                };
                self.expect(&Tok::RBracket, "']' closing attribute")?;
                self.attr(&name)?
            }
            Some(Tok::Prec) => {
                let off2 = self.offset();
                let name = match self.bump() {
                    Some(Tok::Ident(n)) => n,
                    got => {
                        return Err(ConstraintError::parse(
                            format!("expected attribute name, found {got:?}"),
                            off2,
                        ))
                    }
                };
                self.attr(&name)?
            }
            got => {
                return Err(ConstraintError::parse(
                    format!("expected '<[' or '≺', found {got:?}"),
                    off,
                ))
            }
        };
        let off3 = self.offset();
        if self.tuple_ref()? != TupleRef::T2 {
            return Err(ConstraintError::parse("order predicates read `t1 < t2`", off3));
        }
        Ok(attr)
    }

    /// True iff an order atom starts at the cursor.
    fn looks_like_order(&self) -> bool {
        matches!(self.peek(), Some(Tok::Ident(id)) if id == "t1")
            && match self.peek_at(1) {
                Some(Tok::Prec) => true,
                Some(Tok::Op(op)) if op == "<" => matches!(self.peek_at(2), Some(Tok::LBracket)),
                _ => false,
            }
    }

    /// Parses one premise conjunct.
    fn predicate(&mut self) -> Result<Predicate, ConstraintError> {
        if self.looks_like_order() {
            let attr = self.order_atom()?;
            return Ok(Predicate::Order { attr });
        }
        // `ti[attr] op rhs` or `literal op ti[attr]`.
        if matches!(self.peek(), Some(Tok::Ident(id)) if id == "t1" || id == "t2") {
            let tref = self.tuple_ref()?;
            self.expect(&Tok::LBracket, "'[' after tuple variable")?;
            let off = self.offset();
            let attr_name = match self.bump() {
                Some(Tok::Ident(n)) => n,
                got => {
                    return Err(ConstraintError::parse(
                        format!("expected attribute name, found {got:?}"),
                        off,
                    ))
                }
            };
            let attr = self.attr(&attr_name)?;
            self.expect(&Tok::RBracket, "']' closing attribute")?;
            let off = self.offset();
            let op = match self.bump() {
                Some(Tok::Op(op)) => CompOp::parse(&op)
                    .ok_or_else(|| ConstraintError::parse(format!("bad operator `{op}`"), off))?,
                got => {
                    return Err(ConstraintError::parse(
                        format!("expected comparison operator, found {got:?}"),
                        off,
                    ))
                }
            };
            // RHS: other tuple's same attribute, or a constant.
            if matches!(self.peek(), Some(Tok::Ident(id)) if id == "t1" || id == "t2") {
                let other = self.tuple_ref()?;
                self.expect(&Tok::LBracket, "'[' after tuple variable")?;
                let off2 = self.offset();
                let rhs_name = match self.bump() {
                    Some(Tok::Ident(n)) => n,
                    got => {
                        return Err(ConstraintError::parse(
                            format!("expected attribute name, found {got:?}"),
                            off2,
                        ))
                    }
                };
                self.expect(&Tok::RBracket, "']' closing attribute")?;
                if rhs_name != attr_name {
                    return Err(ConstraintError::parse(
                        "tuple comparisons must use the same attribute on both sides",
                        off2,
                    ));
                }
                match (tref, other) {
                    (TupleRef::T1, TupleRef::T2) => Ok(Predicate::TupleCmp { attr, op }),
                    (TupleRef::T2, TupleRef::T1) => {
                        Ok(Predicate::TupleCmp { attr, op: op.flip() })
                    }
                    _ => Err(ConstraintError::parse(
                        "tuple comparison must relate t1 and t2",
                        off2,
                    )),
                }
            } else {
                let constant = self.literal()?;
                Ok(Predicate::ConstCmp { tuple: tref, attr, op, constant })
            }
        } else {
            // `literal op ti[attr]` — flip into canonical form.
            let constant = self.literal()?;
            let off = self.offset();
            let op = match self.bump() {
                Some(Tok::Op(op)) => CompOp::parse(&op)
                    .ok_or_else(|| ConstraintError::parse(format!("bad operator `{op}`"), off))?,
                got => {
                    return Err(ConstraintError::parse(
                        format!("expected comparison operator, found {got:?}"),
                        off,
                    ))
                }
            };
            let tref = self.tuple_ref()?;
            self.expect(&Tok::LBracket, "'[' after tuple variable")?;
            let off2 = self.offset();
            let attr_name = match self.bump() {
                Some(Tok::Ident(n)) => n,
                got => {
                    return Err(ConstraintError::parse(
                        format!("expected attribute name, found {got:?}"),
                        off2,
                    ))
                }
            };
            self.expect(&Tok::RBracket, "']' closing attribute")?;
            let attr = self.attr(&attr_name)?;
            Ok(Predicate::ConstCmp { tuple: tref, attr, op: op.flip(), constant })
        }
    }
}

/// Parses one currency constraint. See the module docs for the grammar.
pub fn parse_currency_constraint(
    schema: &Arc<Schema>,
    input: &str,
) -> Result<CurrencyConstraint, ConstraintError> {
    let mut p = Parser::new(schema, input)?;
    let name = p.take_label();
    // Optional `forall t1,t2` prefix.
    if matches!(p.peek(), Some(Tok::Ident(id)) if id == "forall") {
        p.bump();
        p.tuple_ref()?;
        p.expect(&Tok::Comma, "',' between t1 and t2")?;
        p.tuple_ref()?;
    }
    let parens = matches!(p.peek(), Some(Tok::LParen));
    if parens {
        p.bump();
    }
    let mut premises = Vec::new();
    loop {
        // The conclusion is also an order atom; detect `-> …` by trying the
        // arrow first.
        if matches!(p.peek(), Some(Tok::Arrow)) {
            break;
        }
        premises.push(p.predicate()?);
        match p.peek() {
            Some(Tok::And) => {
                p.bump();
            }
            Some(Tok::Arrow) => break,
            other => {
                let off = p.offset();
                return Err(ConstraintError::parse(
                    format!("expected '&&' or '->', found {other:?}"),
                    off,
                ));
            }
        }
    }
    p.expect(&Tok::Arrow, "'->'")?;
    let conclusion = p.order_atom()?;
    if parens {
        p.expect(&Tok::RParen, "')'")?;
    }
    if !p.at_end() {
        return Err(ConstraintError::parse("trailing input", p.offset()));
    }
    CurrencyConstraint::new(schema.clone(), name, premises, conclusion)
}

/// Parses one CFD line, expanding multiple RHS pairs into one CFD each.
pub fn parse_cfds(
    schema: &Arc<Schema>,
    input: &str,
) -> Result<Vec<ConstantCfd>, ConstraintError> {
    let mut p = Parser::new(schema, input)?;
    let name = p.take_label();
    let parens = matches!(p.peek(), Some(Tok::LParen));
    if parens {
        p.bump();
    }
    let mut lhs = Vec::new();
    loop {
        if matches!(p.peek(), Some(Tok::Arrow)) {
            break;
        }
        lhs.push(parse_pair(&mut p)?);
        match p.peek() {
            Some(Tok::Comma) => {
                p.bump();
            }
            Some(Tok::Arrow) => break,
            other => {
                let off = p.offset();
                return Err(ConstraintError::parse(
                    format!("expected ',' or '->', found {other:?}"),
                    off,
                ));
            }
        }
    }
    p.expect(&Tok::Arrow, "'->'")?;
    let mut rhs = vec![parse_pair(&mut p)?];
    while matches!(p.peek(), Some(Tok::Comma)) {
        p.bump();
        rhs.push(parse_pair(&mut p)?);
    }
    if parens {
        p.expect(&Tok::RParen, "')'")?;
    }
    if !p.at_end() {
        return Err(ConstraintError::parse("trailing input", p.offset()));
    }
    rhs.into_iter()
        .map(|r| ConstantCfd::new(schema.clone(), name.clone(), lhs.clone(), r))
        .collect()
}

fn parse_pair(p: &mut Parser<'_>) -> Result<(cr_types::AttrId, Value), ConstraintError> {
    let off = p.offset();
    let name = match p.bump() {
        Some(Tok::Ident(n)) => n,
        got => {
            return Err(ConstraintError::parse(
                format!("expected attribute name, found {got:?}"),
                off,
            ))
        }
    };
    let attr = p.attr(&name)?;
    let off2 = p.offset();
    match p.bump() {
        Some(Tok::Op(op)) if op == "=" || op == "==" => {}
        got => {
            return Err(ConstraintError::parse(
                format!("expected '=', found {got:?}"),
                off2,
            ))
        }
    }
    let value = p.literal()?;
    Ok((attr, value))
}

/// Parses a multi-line file of currency constraints (blank lines and `#`
/// comments skipped).
pub fn parse_currency_file(
    schema: &Arc<Schema>,
    input: &str,
) -> Result<Vec<CurrencyConstraint>, ConstraintError> {
    input
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| parse_currency_constraint(schema, l))
        .collect()
}

/// Parses a multi-line file of constant CFDs (blank lines and `#` comments
/// skipped); multi-RHS lines expand.
pub fn parse_cfd_file(
    schema: &Arc<Schema>,
    input: &str,
) -> Result<Vec<ConstantCfd>, ConstraintError> {
    let mut out = Vec::new();
    for line in input.lines().map(str::trim) {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.extend(parse_cfds(schema, line)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Schema::new(
            "person",
            ["name", "status", "job", "kids", "city", "AC", "zip", "county"],
        )
        .unwrap()
    }

    #[test]
    fn parses_phi1_with_label_and_forall() {
        let s = schema();
        let c = parse_currency_constraint(
            &s,
            r#"phi1: forall t1,t2 (t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2)"#,
        )
        .unwrap();
        assert_eq!(c.name(), Some("phi1"));
        assert_eq!(c.premises().len(), 2);
        assert_eq!(s.attr_name(c.conclusion_attr()), "status");
        assert!(c.is_comparison_only());
    }

    #[test]
    fn parses_phi4_tuple_comparison() {
        let s = schema();
        let c = parse_currency_constraint(&s, "t1[kids] < t2[kids] -> t1 <[kids] t2").unwrap();
        assert_eq!(
            c.premises(),
            &[Predicate::TupleCmp { attr: s.attr_id("kids").unwrap(), op: CompOp::Lt }]
        );
    }

    #[test]
    fn parses_phi5_order_premise() {
        let s = schema();
        let c = parse_currency_constraint(&s, "t1 <[status] t2 -> t1 <[job] t2").unwrap();
        assert_eq!(
            c.premises(),
            &[Predicate::Order { attr: s.attr_id("status").unwrap() }]
        );
        assert_eq!(s.attr_name(c.conclusion_attr()), "job");
        assert!(!c.is_comparison_only());
    }

    #[test]
    fn parses_phi8_two_order_premises() {
        let s = schema();
        let c = parse_currency_constraint(
            &s,
            "phi8: t1 <[city] t2 && t1 <[zip] t2 -> t1 <[county] t2",
        )
        .unwrap();
        assert_eq!(c.premises().len(), 2);
        assert!(c.premises().iter().all(Predicate::is_order));
    }

    #[test]
    fn parses_unicode_spelling() {
        let s = schema();
        let c = parse_currency_constraint(
            &s,
            "t1[status] = \"retired\" ∧ t2[status] = \"deceased\" → t1 ≺status t2",
        )
        .unwrap();
        assert_eq!(c.premises().len(), 2);
        assert_eq!(s.attr_name(c.conclusion_attr()), "status");
    }

    #[test]
    fn flipped_constant_comparison_is_canonicalised() {
        let s = schema();
        let c = parse_currency_constraint(&s, "0 < t1[kids] -> t1 <[kids] t2").unwrap();
        assert_eq!(
            c.premises(),
            &[Predicate::ConstCmp {
                tuple: TupleRef::T1,
                attr: s.attr_id("kids").unwrap(),
                op: CompOp::Gt,
                constant: Value::int(0),
            }]
        );
    }

    #[test]
    fn reversed_tuple_comparison_flips_operator() {
        let s = schema();
        let c = parse_currency_constraint(&s, "t2[kids] > t1[kids] -> t1 <[kids] t2").unwrap();
        assert_eq!(
            c.premises(),
            &[Predicate::TupleCmp { attr: s.attr_id("kids").unwrap(), op: CompOp::Lt }]
        );
    }

    #[test]
    fn display_round_trips_through_parser() {
        let s = schema();
        for text in [
            r#"phi1: forall t1,t2 (t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2)"#,
            "t1[kids] < t2[kids] -> t1 <[kids] t2",
            "t1 <[city] t2 && t1 <[zip] t2 -> t1 <[county] t2",
        ] {
            let c = parse_currency_constraint(&s, text).unwrap();
            let again = parse_currency_constraint(&s, &c.to_string()).unwrap();
            assert_eq!(c.premises(), again.premises());
            assert_eq!(c.conclusion_attr(), again.conclusion_attr());
        }
    }

    #[test]
    fn parses_cfd_single_and_multi_rhs() {
        let s = schema();
        let single = parse_cfds(&s, r#"psi1: (AC = 213 -> city = "LA")"#).unwrap();
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].name(), Some("psi1"));
        let multi = parse_cfds(&s, r#"city = "LA", zip = 90058 -> county = "Vermont", AC = 213"#)
            .unwrap();
        assert_eq!(multi.len(), 2);
        assert_eq!(multi[0].lhs().len(), 2);
    }

    #[test]
    fn parse_files_skip_comments() {
        let s = schema();
        let text = "# currency rules\n\nphi4: t1[kids] < t2[kids] -> t1 <[kids] t2\nt1 <[status] t2 -> t1 <[job] t2\n";
        let cs = parse_currency_file(&s, text).unwrap();
        assert_eq!(cs.len(), 2);
        let cfds = parse_cfd_file(&s, "# cfds\npsi: AC = 212 -> city = \"NY\"\n").unwrap();
        assert_eq!(cfds.len(), 1);
    }

    #[test]
    fn errors_carry_position_and_reason() {
        let s = schema();
        let err = parse_currency_constraint(&s, "t1[status] = -> t1 <[job] t2").unwrap_err();
        assert!(matches!(err, ConstraintError::Parse { .. }));
        let err = parse_currency_constraint(&s, "t1[nope] = 1 -> t1 <[job] t2").unwrap_err();
        assert!(matches!(err, ConstraintError::UnknownAttribute(a) if a == "nope"));
        let err =
            parse_currency_constraint(&s, "t1[kids] < t2[zip] -> t1 <[kids] t2").unwrap_err();
        assert!(matches!(err, ConstraintError::Parse { .. }));
        let err = parse_currency_constraint(&s, "t2 <[kids] t1 -> t1 <[kids] t2").unwrap_err();
        assert!(matches!(err, ConstraintError::Parse { .. }));
    }

    #[test]
    fn bare_word_constants_are_strings() {
        let s = schema();
        let c = parse_currency_constraint(&s, "t1[city] = NY -> t1 <[city] t2").unwrap();
        assert_eq!(
            c.premises(),
            &[Predicate::ConstCmp {
                tuple: TupleRef::T1,
                attr: s.attr_id("city").unwrap(),
                op: CompOp::Eq,
                constant: Value::str("NY"),
            }]
        );
    }
}
