//! Dataset-level integration tests: shape statistics, validity, determinism
//! and the headline accuracy ordering.

use conflict_resolution::core::framework::{GroundTruthOracle, ResolutionConfig, Resolver};
use conflict_resolution::core::{is_valid, pick_baseline, Accuracy};
use conflict_resolution::data::{career, nba, person};

#[test]
fn nba_shape_matches_published_statistics() {
    let ds = nba::generate(nba::NbaConfig { entities: 120, seed: 1, ..Default::default() });
    let stats = ds.stats();
    assert_eq!(stats.sigma, 54, "54 currency constraints");
    assert_eq!(stats.gamma, 58, "58 constant CFDs");
    assert!(stats.min_tuples >= 2 && stats.max_tuples <= 136);
    assert!((10.0..45.0).contains(&stats.avg_tuples), "avg near 27");
    assert_eq!(ds.schema.arity(), 14);
}

#[test]
fn career_shape_matches_published_statistics() {
    let ds = career::generate(career::CareerConfig::default());
    let stats = ds.stats();
    assert_eq!(stats.entities, 65);
    assert_eq!(stats.gamma, 347, "347 CFD patterns");
    assert!(
        (300..=700).contains(&stats.sigma),
        "citation constraints {} near the paper's 503",
        stats.sigma
    );
    assert!(stats.max_tuples <= 175);
}

#[test]
fn person_shape_matches_published_statistics() {
    let ds = person::generate(person::PersonConfig { entities: 20, ..Default::default() });
    let stats = ds.stats();
    assert_eq!(stats.sigma, 983, "983 currency constraints");
    assert_eq!(stats.gamma, 1000, "1000 CFD patterns");
    assert_eq!(ds.schema.arity(), 8);
}

#[test]
fn all_generated_specs_are_valid() {
    let nba = nba::generate(nba::NbaConfig { entities: 10, seed: 77, ..Default::default() });
    let career =
        career::generate(career::CareerConfig { entities: 10, seed: 77, ..Default::default() });
    let person = person::generate(person::PersonConfig {
        entities: 10,
        min_tuples: 2,
        max_tuples: 40,
        seed: 77,
    });
    for ds in [&nba, &career, &person] {
        for i in 0..ds.len() {
            assert!(
                is_valid(&ds.spec(i)).valid,
                "{} entity {i} must be valid",
                ds.name
            );
        }
    }
}

#[test]
fn generation_is_deterministic_per_seed() {
    let a = person::generate(person::PersonConfig { entities: 5, ..Default::default() });
    let b = person::generate(person::PersonConfig { entities: 5, ..Default::default() });
    for i in 0..a.len() {
        assert_eq!(a.entities[i].0.tuples(), b.entities[i].0.tuples());
        assert_eq!(a.entities[i].1, b.entities[i].1);
    }
    let c = nba::generate_with_sizes(&[10, 20], 3);
    let d = nba::generate_with_sizes(&[10, 20], 3);
    assert_eq!(c.entities[1].0.tuples(), d.entities[1].0.tuples());
}

#[test]
fn unified_method_beats_pick_on_every_dataset() {
    let seed = 0xBEA7;
    let datasets = [
        nba::generate(nba::NbaConfig { entities: 20, seed, ..Default::default() }),
        career::generate(career::CareerConfig { entities: 20, seed, ..Default::default() }),
        person::generate(person::PersonConfig {
            entities: 20,
            min_tuples: 4,
            max_tuples: 40,
            seed,
        }),
    ];
    let resolver = Resolver::new(ResolutionConfig { max_rounds: 3, ..Default::default() });
    for ds in &datasets {
        let mut unified = Accuracy::new();
        let mut pick = Accuracy::new();
        for i in 0..ds.len() {
            let spec = ds.spec(i);
            let mut oracle = GroundTruthOracle::with_cap(ds.truth(i).clone(), 1);
            let outcome = resolver.resolve(&spec, &mut oracle);
            unified.add_entity(&ds.entities[i].0, ds.truth(i), &outcome.resolved);
            pick.add_entity(&ds.entities[i].0, ds.truth(i), &pick_baseline(&spec, seed));
        }
        let fu = unified.f_measure().f_measure;
        let fp = pick.f_measure().f_measure;
        assert!(
            fu > fp,
            "{}: unified {fu:.3} must beat Pick {fp:.3}",
            ds.name
        );
    }
}

#[test]
fn csv_round_trip_of_generated_entities() {
    let ds = nba::generate(nba::NbaConfig { entities: 3, seed: 4, ..Default::default() });
    for (entity, _) in &ds.entities {
        let csv = conflict_resolution::types::csv::write_entity(entity);
        let back = conflict_resolution::types::csv::read_entity("nba", &csv).unwrap();
        assert_eq!(back.len(), entity.len());
        for (a, b) in entity.tuples().iter().zip(back.tuples()) {
            assert_eq!(a.values(), b.values());
        }
    }
}
