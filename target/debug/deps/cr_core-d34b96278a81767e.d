/root/repo/target/debug/deps/cr_core-d34b96278a81767e.d: crates/cr-core/src/lib.rs crates/cr-core/src/bruteforce.rs crates/cr-core/src/compat.rs crates/cr-core/src/deduce.rs crates/cr-core/src/encode/mod.rs crates/cr-core/src/encode/cnf.rs crates/cr-core/src/encode/omega.rs crates/cr-core/src/framework.rs crates/cr-core/src/implication.rs crates/cr-core/src/isvalid.rs crates/cr-core/src/metrics.rs crates/cr-core/src/orders.rs crates/cr-core/src/pick.rs crates/cr-core/src/rules.rs crates/cr-core/src/spec.rs crates/cr-core/src/suggest.rs crates/cr-core/src/truevalue.rs

/root/repo/target/debug/deps/libcr_core-d34b96278a81767e.rlib: crates/cr-core/src/lib.rs crates/cr-core/src/bruteforce.rs crates/cr-core/src/compat.rs crates/cr-core/src/deduce.rs crates/cr-core/src/encode/mod.rs crates/cr-core/src/encode/cnf.rs crates/cr-core/src/encode/omega.rs crates/cr-core/src/framework.rs crates/cr-core/src/implication.rs crates/cr-core/src/isvalid.rs crates/cr-core/src/metrics.rs crates/cr-core/src/orders.rs crates/cr-core/src/pick.rs crates/cr-core/src/rules.rs crates/cr-core/src/spec.rs crates/cr-core/src/suggest.rs crates/cr-core/src/truevalue.rs

/root/repo/target/debug/deps/libcr_core-d34b96278a81767e.rmeta: crates/cr-core/src/lib.rs crates/cr-core/src/bruteforce.rs crates/cr-core/src/compat.rs crates/cr-core/src/deduce.rs crates/cr-core/src/encode/mod.rs crates/cr-core/src/encode/cnf.rs crates/cr-core/src/encode/omega.rs crates/cr-core/src/framework.rs crates/cr-core/src/implication.rs crates/cr-core/src/isvalid.rs crates/cr-core/src/metrics.rs crates/cr-core/src/orders.rs crates/cr-core/src/pick.rs crates/cr-core/src/rules.rs crates/cr-core/src/spec.rs crates/cr-core/src/suggest.rs crates/cr-core/src/truevalue.rs

crates/cr-core/src/lib.rs:
crates/cr-core/src/bruteforce.rs:
crates/cr-core/src/compat.rs:
crates/cr-core/src/deduce.rs:
crates/cr-core/src/encode/mod.rs:
crates/cr-core/src/encode/cnf.rs:
crates/cr-core/src/encode/omega.rs:
crates/cr-core/src/framework.rs:
crates/cr-core/src/implication.rs:
crates/cr-core/src/isvalid.rs:
crates/cr-core/src/metrics.rs:
crates/cr-core/src/orders.rs:
crates/cr-core/src/pick.rs:
crates/cr-core/src/rules.rs:
crates/cr-core/src/spec.rs:
crates/cr-core/src/suggest.rs:
crates/cr-core/src/truevalue.rs:
