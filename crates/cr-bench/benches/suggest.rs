//! Criterion bench for the suggestion phase of Fig. 8(c)/(d): `TrueDer` +
//! compatibility graph + `MaxClique` + MaxSAT repair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cr_core::encode::EncodedSpec;
use cr_core::{deduce_order, suggest, true_values_from_orders};
use cr_data::{nba, person, vjday};

fn bench_suggest(c: &mut Criterion) {
    let mut group = c.benchmark_group("suggest");
    group.sample_size(15);

    // The paper's Example 12: George's suggestion is exactly {status}.
    let george = vjday::george_spec();
    let enc = EncodedSpec::encode(&george);
    let od = deduce_order(&enc).expect("valid");
    let known = true_values_from_orders(&enc, &od);
    group.bench_function("vjday/george", |b| {
        b.iter(|| black_box(suggest(&george, &enc, &od, &known)))
    });

    for size in [27usize, 135] {
        let ds = nba::generate_with_sizes(&[size], 7);
        let spec = ds.spec(0);
        let enc = EncodedSpec::encode(&spec);
        let od = deduce_order(&enc).expect("valid");
        let known = true_values_from_orders(&enc, &od);
        group.bench_with_input(BenchmarkId::new("nba", size), &size, |b, _| {
            b.iter(|| black_box(suggest(&spec, &enc, &od, &known)))
        });
    }

    for size in [200usize, 600] {
        let ds = person::generate_with_sizes(&[size], 7);
        let spec = ds.spec(0);
        let enc = EncodedSpec::encode(&spec);
        let od = deduce_order(&enc).expect("valid");
        let known = true_values_from_orders(&enc, &od);
        group.bench_with_input(BenchmarkId::new("person", size), &size, |b, _| {
            b.iter(|| black_box(suggest(&spec, &enc, &od, &known)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_suggest);
criterion_main!(benches);
