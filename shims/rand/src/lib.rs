//! Minimal offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! Provides the subset of the rand 0.8 API this workspace uses: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits and
//! [`seq::SliceRandom::choose`].

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw(rng: &mut impl RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut impl RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform value in the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value in `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }

    /// A random value of a supported type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Slice helpers.
pub mod seq {
    use super::RngCore;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// One-stop imports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
