/root/repo/target/debug/deps/cr_data-aa05205903e8043d.d: crates/cr-data/src/lib.rs crates/cr-data/src/career.rs crates/cr-data/src/gen_util.rs crates/cr-data/src/nba.rs crates/cr-data/src/person.rs crates/cr-data/src/vjday.rs

/root/repo/target/debug/deps/libcr_data-aa05205903e8043d.rlib: crates/cr-data/src/lib.rs crates/cr-data/src/career.rs crates/cr-data/src/gen_util.rs crates/cr-data/src/nba.rs crates/cr-data/src/person.rs crates/cr-data/src/vjday.rs

/root/repo/target/debug/deps/libcr_data-aa05205903e8043d.rmeta: crates/cr-data/src/lib.rs crates/cr-data/src/career.rs crates/cr-data/src/gen_util.rs crates/cr-data/src/nba.rs crates/cr-data/src/person.rs crates/cr-data/src/vjday.rs

crates/cr-data/src/lib.rs:
crates/cr-data/src/career.rs:
crates/cr-data/src/gen_util.rs:
crates/cr-data/src/nba.rs:
crates/cr-data/src/person.rs:
crates/cr-data/src/vjday.rs:
