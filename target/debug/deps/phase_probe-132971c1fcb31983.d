/root/repo/target/debug/deps/phase_probe-132971c1fcb31983.d: crates/cr-bench/src/bin/phase_probe.rs Cargo.toml

/root/repo/target/debug/deps/libphase_probe-132971c1fcb31983.rmeta: crates/cr-bench/src/bin/phase_probe.rs Cargo.toml

crates/cr-bench/src/bin/phase_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
