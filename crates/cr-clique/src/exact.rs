//! Exact maximum clique: branch-and-bound with a greedy-colouring bound
//! (Tomita's MCQ family).

use crate::graph::{Graph, VertexSet};

/// Computes a maximum clique of `g` exactly.
///
/// Classic scheme: expand cliques vertex by vertex; at each node greedily
/// colour the candidate set — the colour count bounds how many more vertices
/// any clique through this node can gain, pruning branches that cannot beat
/// the incumbent.
pub fn max_clique(g: &Graph) -> Vec<usize> {
    if g.is_empty() {
        return Vec::new();
    }
    let mut best: Vec<usize> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let candidates = VertexSet::full(g.len());
    expand(g, &mut current, &candidates, &mut best);
    best
}

fn expand(g: &Graph, current: &mut Vec<usize>, candidates: &VertexSet, best: &mut Vec<usize>) {
    if candidates.is_empty() {
        if current.len() > best.len() {
            *best = current.clone();
        }
        return;
    }
    // Greedy colouring of the candidate set; process vertices in decreasing
    // colour order so the bound tightens fastest.
    let ordered = colour_order(g, candidates);
    let mut remaining = candidates.clone();
    for (v, colour) in ordered.into_iter().rev() {
        if current.len() + colour <= best.len() {
            return; // bound: even taking every colour class cannot win
        }
        current.push(v);
        let next = remaining.intersect_row(g.row(v));
        expand(g, current, &next, best);
        current.pop();
        remaining.remove(v);
    }
}

/// Greedily colours `candidates`, returning `(vertex, colour)` pairs in
/// non-decreasing colour order. `colour` is 1-based; vertices in the same
/// class are pairwise non-adjacent.
fn colour_order(g: &Graph, candidates: &VertexSet) -> Vec<(usize, usize)> {
    let mut uncoloured = candidates.clone();
    let mut ordered = Vec::with_capacity(candidates.count());
    let mut colour = 0;
    while !uncoloured.is_empty() {
        colour += 1;
        let mut class_candidates = uncoloured.clone();
        while let Some(v) = class_candidates.first() {
            ordered.push((v, colour));
            uncoloured.remove(v);
            class_candidates.remove(v);
            // Remove v's neighbours from this colour class.
            for w in 0..class_candidates.words.len() {
                class_candidates.words[w] &= !g.row(v)[w];
            }
        }
    }
    ordered
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_with_edges(n: usize, edges: &[(usize, usize)]) -> Graph {
        let mut g = Graph::new(n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    #[test]
    fn empty_graph_has_empty_clique() {
        assert!(max_clique(&Graph::new(0)).is_empty());
    }

    #[test]
    fn isolated_vertices_give_singleton() {
        let c = max_clique(&Graph::new(5));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn complete_graph_is_its_own_clique() {
        let n = 8;
        let mut g = Graph::new(n);
        for a in 0..n {
            for b in a + 1..n {
                g.add_edge(a, b);
            }
        }
        assert_eq!(max_clique(&g).len(), n);
    }

    #[test]
    fn two_cliques_picks_larger() {
        // K4 on {0..3} and K3 on {4..6}.
        let mut edges = Vec::new();
        for a in 0..4 {
            for b in a + 1..4 {
                edges.push((a, b));
            }
        }
        for a in 4..7 {
            for b in a + 1..7 {
                edges.push((a, b));
            }
        }
        let g = graph_with_edges(7, &edges);
        let mut c = max_clique(&g);
        c.sort_unstable();
        assert_eq!(c, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cycle_of_five_has_clique_two() {
        let g = graph_with_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(max_clique(&g).len(), 2);
    }

    #[test]
    fn petersen_graph_clique_is_two() {
        // Petersen graph: outer 5-cycle, inner pentagram, spokes.
        let mut edges = vec![];
        for i in 0..5 {
            edges.push((i, (i + 1) % 5)); // outer cycle
            edges.push((5 + i, 5 + (i + 2) % 5)); // pentagram
            edges.push((i, 5 + i)); // spokes
        }
        let g = graph_with_edges(10, &edges);
        assert_eq!(max_clique(&g).len(), 2);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn agrees_with_brute_force_on_dense_random_graph() {
        // Deterministic pseudo-random graph via a multiplicative hash.
        let n = 14usize;
        let mut g = Graph::new(n);
        let mut brute_edges = vec![vec![false; n]; n];
        for a in 0..n {
            for b in a + 1..n {
                let h = (a * 2654435761 + b * 40503).wrapping_mul(2246822519) % 100;
                if h < 55 {
                    g.add_edge(a, b);
                    brute_edges[a][b] = true;
                    brute_edges[b][a] = true;
                }
            }
        }
        // Brute force over all subsets.
        let mut best = 0;
        for mask in 0u32..(1 << n) {
            let members: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            if members.len() > best
                && members
                    .iter()
                    .enumerate()
                    .all(|(i, &a)| members[i + 1..].iter().all(|&b| brute_edges[a][b]))
            {
                best = members.len();
            }
        }
        assert_eq!(max_clique(&g).len(), best);
    }
}
