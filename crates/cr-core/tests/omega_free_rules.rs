//! Differential tests for the Ω-free memory diet: with the default
//! `EncodeOptions` the encoder no longer retains the instantiated Ω(Se)
//! constraint list, and `TrueDer` re-derives suggestion rules on demand
//! by scanning the CNF clause arena (`EncodedSpec::for_each_order_rule`).
//! These tests prove the scan is *exactly* equivalent to the retained-Ω
//! baseline (`true_der_retained` over `with_retained_omega()`), and that
//! dropping Ω actually shrinks the encoding.

use cr_core::framework::{GroundTruthOracle, ResolutionConfig, Resolver};
use cr_core::rules::{true_der, true_der_retained};
use cr_core::{deduce_order, EncodeOptions, EncodedSpec, Specification};
use cr_core::truevalue::true_values_from_orders;
use cr_data::gen::{scenario_from_raw, PowerLawConfig, PowerLawDataset};
use proptest::prelude::*;

/// Renders both paths' rule lists on one specification. Each path renders
/// against its own encoding (value ids are per-encoding), so equality is
/// checked on the human-readable rule forms.
fn rules_both_paths(spec: &Specification) -> (Vec<String>, Vec<String>) {
    let lean = EncodedSpec::encode_with(spec, EncodeOptions::default());
    assert!(lean.omega().is_empty(), "default encodes must not retain Ω");
    let od = deduce_order(&lean).unwrap();
    let known = true_values_from_orders(&lean, &od);
    let scan: Vec<String> = true_der(spec, &lean, &od, &known)
        .iter()
        .map(|r| r.display(&lean, spec.schema()))
        .collect();

    let fat = EncodedSpec::encode_with(spec, EncodeOptions::default().with_retained_omega());
    assert!(!fat.omega().is_empty() || fat.cnf().num_clauses() == lean.cnf().num_clauses());
    let od = deduce_order(&fat).unwrap();
    let known = true_values_from_orders(&fat, &od);
    let retained: Vec<String> = true_der_retained(spec, &fat, &od, &known)
        .iter()
        .map(|r| r.display(&fat, spec.schema()))
        .collect();
    (scan, retained)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized scenarios: the clause-arena scan and the retained-Ω
    /// baseline must derive the *same rules in the same order* (the scan
    /// visits clauses in emission order, which is the retained list's
    /// order filtered to order rules).
    #[test]
    fn scan_rules_equal_retained_rules(
        seed in 0u64..5_000,
        tuples in 2usize..16,
        domain in 2usize..10,
        density_pct in 0u32..100,
    ) {
        let s = scenario_from_raw(seed, tuples, domain, density_pct, false);
        if !cr_core::is_valid(&s.spec).valid {
            return Ok(()); // TrueDer is only meaningful on valid specs
        }
        let (scan, retained) = rules_both_paths(&s.spec);
        prop_assert_eq!(scan, retained);
    }

    /// End-to-end: resolution (which consumes the rules through the
    /// suggestion engine) is unchanged by retaining Ω.
    #[test]
    fn resolution_is_invariant_in_retain_omega(
        seed in 0u64..2_000,
        tuples in 2usize..14,
        cap in 1usize..3,
    ) {
        let s = scenario_from_raw(seed, tuples, 6, (seed % 90) as u32, false);
        let run = |encode: EncodeOptions| {
            let config = ResolutionConfig { encode, ..Default::default() };
            let mut oracle = GroundTruthOracle::with_cap(s.truth.clone(), cap);
            Resolver::new(config).resolve(&s.spec, &mut oracle)
        };
        let lean = run(EncodeOptions::default());
        let fat = run(EncodeOptions::default().with_retained_omega());
        prop_assert_eq!(lean.valid, fat.valid);
        prop_assert_eq!(lean.resolved, fat.resolved);
        prop_assert_eq!(lean.interactions, fat.interactions);
        prop_assert_eq!(lean.rounds.len(), fat.rounds.len());
    }
}

/// The diet is real: on power-law entities the Ω-free encoding is
/// strictly smaller than the retained one, and the gap is exactly the
/// retained Ω list.
#[test]
fn omega_free_encoding_is_smaller() {
    let ds = PowerLawDataset::new(&PowerLawConfig {
        seed: 21,
        entities: 3,
        min_tuples: 40,
        max_tuples: 80,
        ..Default::default()
    });
    for i in 0..ds.len() {
        let spec = ds.spec(i);
        let lean = EncodedSpec::encode_with(&spec, EncodeOptions::default());
        let fat = EncodedSpec::encode_with(&spec, EncodeOptions::default().with_retained_omega());
        assert_eq!(lean.omega_bytes(), 0, "no retained Ω by default");
        assert!(fat.omega_bytes() > 0, "baseline retains Ω");
        assert!(
            lean.approx_bytes() < fat.approx_bytes(),
            "entity {i}: lean {} >= fat {}",
            lean.approx_bytes(),
            fat.approx_bytes()
        );
        // Same CNF either way — the diet only drops the side list.
        assert_eq!(lean.cnf().num_clauses(), fat.cnf().num_clauses());
        assert_eq!(lean.cnf().num_vars(), fat.cnf().num_vars());
    }
}

/// The scan reconstructs premises and conclusions faithfully on a curated
/// spec where the expected rules are known (Example 10 shape, as in the
/// `rules` module's own tests).
#[test]
fn scan_visits_order_rules_with_reconstructed_premises() {
    let ds = PowerLawDataset::new(&PowerLawConfig {
        seed: 4,
        entities: 1,
        min_tuples: 12,
        max_tuples: 12,
        ..Default::default()
    });
    let spec = ds.spec(0);
    let lean = EncodedSpec::encode_with(&spec, EncodeOptions::default());
    let fat = EncodedSpec::encode_with(&spec, EncodeOptions::default().with_retained_omega());

    // Collect (premise, conclusion) pairs from the scan and the retained
    // list; they must match pairwise in order.
    let mut scanned: Vec<(Vec<String>, String)> = Vec::new();
    lean.for_each_order_rule(|premise, conclusion| {
        scanned.push((
            premise.iter().map(|a| format!("{a:?}")).collect(),
            format!("{conclusion:?}"),
        ));
    });
    let retained: Vec<(Vec<String>, String)> = fat
        .omega()
        .iter()
        .filter_map(|c| match (&c.origin, &c.conclusion) {
            (
                cr_core::encode::Origin::Currency(_) | cr_core::encode::Origin::BaseOrder,
                cr_core::encode::Conclusion::Atom(a),
            ) => Some((
                c.premise.iter().map(|x| format!("{x:?}")).collect(),
                format!("{a:?}"),
            )),
            _ => None,
        })
        .collect();
    assert!(!scanned.is_empty(), "power-law entities must emit order rules");
    assert_eq!(scanned, retained);
}
