//! The serving front-end: admission, fair dispatch, deadlines, and
//! idempotent retries over a [`SessionStore`].
//!
//! [`Server`] is deterministic and single-threaded by design: the harness
//! (a simulated client fleet, a soak, a bench) advances a logical tick
//! counter and drives two entry points — [`Server::submit`] makes the
//! admission decision *now* (shedding returns an immediate reply, an
//! admitted request is queued per tenant), and [`Server::dispatch`]
//! drains the queues round-robin, one request per tenant per turn, under
//! the global in-flight budget. The request lifecycle:
//!
//! 1. **Admission** (submit tick): the tenant's token bucket must cover
//!    the request cost (cold sessions cost extra), and its bounded queue
//!    must have room — otherwise `ServeError::Overloaded { retry_after }`.
//! 2. **Cancellation** (dequeue tick): a request whose deadline passed
//!    while queued is cancelled without touching the engine.
//! 3. **Execution**: multi-phase reads thread a
//!    [`PhaseDeadline`] and can expire
//!    between phases; mutations are atomic (WAL-committed whole or not at
//!    all, per `cr-store`'s batch discipline).
//! 4. **Idempotency**: a mutating request carrying an idempotency key is
//!    looked up in the store's ledger first — a retry of an acknowledged
//!    mutation replays the recorded reply instead of re-applying; under
//!    it, the causal frontier's `(source, hlc)` dedup catches stamped
//!    events regardless.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use cr_core::deadline::PhaseDeadline;
use cr_core::spec::Specification;
use cr_store::{SessionId, SessionStore, StorageBackend, StoreError};
use cr_types::codec::{Dec, Enc};
use cr_types::wire::Envelope;

use crate::admission::{AdmissionConfig, TokenBucket};
use crate::proto::{
    decode_response, encode_response, Reply, Request, Response, ServeError,
};

/// Serving telemetry: what admission, the queues and the dispatcher did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeTelemetry {
    /// Requests submitted (admitted + shed + rejected outright).
    pub submitted: u64,
    /// Requests that passed admission and were queued.
    pub admitted: u64,
    /// Requests shed by an empty token bucket.
    pub shed_rate: u64,
    /// Requests shed by a full tenant queue.
    pub shed_queue: u64,
    /// Requests cancelled at dequeue because their deadline had passed.
    pub expired_in_queue: u64,
    /// Requests that expired between phases mid-execution.
    pub expired_mid_request: u64,
    /// Requests answered with a successful [`Response`].
    pub served: u64,
    /// Requests answered with a non-deadline [`ServeError`].
    pub failed: u64,
    /// Mutation retries answered from the idempotency ledger (no
    /// re-apply).
    pub idem_hits: u64,
    /// High-water mark of any single tenant queue.
    pub max_queue_depth: u64,
}

impl fmt::Display for ServeTelemetry {
    /// One human-readable row per server, for soak and bench output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "serve: {} submitted, {} admitted, {} served, {} failed, shed {}+{} \
             (rate+queue), expired {}+{} (queue+mid), {} idempotent replays, \
             queue depth ≤ {}",
            self.submitted,
            self.admitted,
            self.served,
            self.failed,
            self.shed_rate,
            self.shed_queue,
            self.expired_in_queue,
            self.expired_mid_request,
            self.idem_hits,
            self.max_queue_depth,
        )
    }
}

struct Queued {
    env: Envelope,
    req: Request,
    /// Absolute deadline tick (the envelope's, or the stamped default).
    deadline: u64,
}

struct Tenant {
    bucket: TokenBucket,
    queue: VecDeque<Queued>,
}

/// A deterministic, tick-driven serving front-end over a
/// [`SessionStore`].
pub struct Server<B: StorageBackend> {
    store: SessionStore<B>,
    cfg: AdmissionConfig,
    tenants: BTreeMap<u32, Tenant>,
    /// Rotates the round-robin starting tenant across dispatch calls so
    /// a budget smaller than the tenant count still divides fairly.
    rr_cursor: u64,
    telemetry: ServeTelemetry,
}

impl<B: StorageBackend> Server<B> {
    /// A server over `store` with the given admission knobs.
    pub fn new(store: SessionStore<B>, cfg: AdmissionConfig) -> Self {
        Server {
            store,
            cfg,
            tenants: BTreeMap::new(),
            rr_cursor: 0,
            telemetry: ServeTelemetry::default(),
        }
    }

    /// Registers a session with its base specification (cheap; see
    /// [`SessionStore::open`]).
    pub fn open(&mut self, session: u64, base: &Specification) {
        self.store.open(SessionId(session), base);
    }

    /// The serving telemetry so far.
    pub fn telemetry(&self) -> ServeTelemetry {
        self.telemetry
    }

    /// The admission configuration.
    pub fn admission(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Immutable access to the underlying store (differential harnesses
    /// read recovery telemetry and logs through this).
    pub fn store(&self) -> &SessionStore<B> {
        &self.store
    }

    /// Mutable access to the underlying store (tests force evictions and
    /// reach fault-injecting backends through this).
    pub fn store_mut(&mut self) -> &mut SessionStore<B> {
        &mut self.store
    }

    /// Consumes the server, returning the store.
    pub fn into_store(self) -> SessionStore<B> {
        self.store
    }

    /// Total requests currently queued across all tenants.
    pub fn queued(&self) -> usize {
        self.tenants.values().map(|t| t.queue.len()).sum()
    }

    /// Submits a request at tick `now`. The admission decision is made
    /// synchronously: `Some(reply)` is an immediate rejection (shed or
    /// invalid), `None` means the request was admitted and queued for a
    /// later [`Server::dispatch`].
    pub fn submit(&mut self, now: u64, env: Envelope, req: Request) -> Option<Reply> {
        self.telemetry.submitted += 1;
        let request_id = env.request_id;
        let reject = |outcome: ServeError| Some(Reply { request_id, outcome: Err(outcome) });

        // Probe without touching: a shed request must not bump the LRU
        // clock or trigger a rehydration.
        let probe = match self.store.admission_probe(SessionId(env.session)) {
            Ok(p) => p,
            Err(StoreError::UnknownSession(id)) => {
                return reject(ServeError::UnknownSession { session: id.0 });
            }
            Err(e) => return reject(ServeError::Store { message: e.to_string() }),
        };
        let cost = self.cfg.cost + if probe.live { 0 } else { self.cfg.cold_cost };

        let cfg = self.cfg;
        let tenant = self
            .tenants
            .entry(env.tenant.0)
            .or_insert_with(|| Tenant { bucket: TokenBucket::full(&cfg, now), queue: VecDeque::new() });
        if let Err(retry_after) = tenant.bucket.try_spend(&cfg, now, cost) {
            self.telemetry.shed_rate += 1;
            return reject(ServeError::Overloaded { retry_after });
        }
        if tenant.queue.len() >= cfg.queue_cap {
            // Honest drain estimate: the queue empties at most
            // max_in_flight per dispatch tick even if this tenant gets
            // the whole budget.
            let retry_after = 1 + (tenant.queue.len() / cfg.max_in_flight.max(1)) as u64;
            self.telemetry.shed_queue += 1;
            return reject(ServeError::Overloaded { retry_after });
        }
        let deadline =
            env.deadline.unwrap_or_else(|| now.saturating_add(cfg.default_deadline));
        tenant.queue.push_back(Queued { env, req, deadline });
        self.telemetry.admitted += 1;
        self.telemetry.max_queue_depth =
            self.telemetry.max_queue_depth.max(tenant.queue.len() as u64);
        None
    }

    /// Drains queued requests at tick `now`: round-robin across tenants
    /// (one request per tenant per turn) until every queue is empty or
    /// the global in-flight budget (`max_in_flight`) is spent. Returns
    /// the replies in dispatch order.
    pub fn dispatch(&mut self, now: u64) -> Vec<Reply> {
        let mut replies = Vec::new();
        let mut budget = self.cfg.max_in_flight;
        let order: Vec<u32> = self
            .tenants
            .iter()
            .filter(|(_, t)| !t.queue.is_empty())
            .map(|(&id, _)| id)
            .collect();
        if order.is_empty() || budget == 0 {
            return replies;
        }
        // Rotate the starting tenant so a budget smaller than the tenant
        // count doesn't always favour the lowest id.
        let start = (self.rr_cursor % order.len() as u64) as usize;
        self.rr_cursor = self.rr_cursor.wrapping_add(1);
        let mut progressed = true;
        while budget > 0 && progressed {
            progressed = false;
            for i in 0..order.len() {
                if budget == 0 {
                    break;
                }
                let id = order[(start + i) % order.len()];
                let Some(queued) =
                    self.tenants.get_mut(&id).and_then(|t| t.queue.pop_front())
                else {
                    continue;
                };
                budget -= 1;
                progressed = true;
                replies.push(self.execute(now, queued));
            }
        }
        replies
    }

    /// Executes one dequeued request at tick `now`.
    fn execute(&mut self, now: u64, queued: Queued) -> Reply {
        let Queued { env, req, deadline } = queued;
        let request_id = env.request_id;
        // Cancellation at dequeue time: a request that overstayed its
        // deadline in the queue never touches the engine.
        if now > deadline {
            self.telemetry.expired_in_queue += 1;
            return Reply {
                request_id,
                outcome: Err(ServeError::DeadlineExceeded { deadline, now, queued: true }),
            };
        }
        let id = SessionId(env.session);

        // Idempotent retry: an acknowledged mutation replays its recorded
        // reply instead of re-applying.
        if req.is_mutation() {
            if let Some(key) = env.idempotency {
                if let Some(bytes) = self.store.idempotent_reply(id, key.0) {
                    let replay = decode_response(&mut Dec::new(bytes))
                        .expect("ledger holds only server-encoded responses");
                    self.telemetry.idem_hits += 1;
                    self.telemetry.served += 1;
                    return Reply { request_id, outcome: Ok(replay) };
                }
            }
        }

        let mut pd = PhaseDeadline::new(now, deadline, self.cfg.cost_per_phase);
        let outcome = self.run(id, &req, &mut pd);
        match &outcome {
            Ok(resp) => {
                if req.is_mutation() {
                    if let Some(key) = env.idempotency {
                        let mut e = Enc::new();
                        encode_response(&mut e, resp);
                        let _ = self.store.record_reply(id, key.0, e.into_bytes());
                    }
                }
                self.telemetry.served += 1;
            }
            Err(ServeError::DeadlineExceeded { .. }) => {
                self.telemetry.expired_mid_request += 1;
            }
            Err(_) => self.telemetry.failed += 1,
        }
        Reply { request_id, outcome }
    }

    /// Runs the request against the store/engine under the phase budget.
    fn run(
        &mut self,
        id: SessionId,
        req: &Request,
        pd: &mut PhaseDeadline,
    ) -> Result<Response, ServeError> {
        match req {
            Request::IsValid => {
                let session = self.store.session(id).map_err(store_err)?;
                let valid = session.is_valid_within(pd).map_err(deadline_err)?;
                Ok(Response::Valid(valid))
            }
            Request::Deduce { method } => {
                let session = self.store.session(id).map_err(store_err)?;
                let od = session.deduce_within(*method, pd).map_err(deadline_err)?;
                Ok(Response::Deduced {
                    found: od.is_some(),
                    order_pairs: od.map_or(0, |od| od.size() as u64),
                })
            }
            Request::TrueValues { method } => {
                let session = self.store.session(id).map_err(store_err)?;
                let valid = session.is_valid_within(pd).map_err(deadline_err)?;
                if !valid {
                    return Ok(Response::TrueValues { values: Vec::new() });
                }
                let od = session
                    .deduce_within(*method, pd)
                    .map_err(deadline_err)?
                    .expect("valid specifications always deduce");
                let tv = session.true_values_within(&od, pd).map_err(deadline_err)?;
                Ok(Response::TrueValues { values: tv.as_slice().to_vec() })
            }
            Request::Suggest { method } => {
                let session = self.store.session(id).map_err(store_err)?;
                let valid = session.is_valid_within(pd).map_err(deadline_err)?;
                if !valid {
                    return Ok(Response::Suggest { ask: Vec::new(), derived: Vec::new() });
                }
                let od = session
                    .deduce_within(*method, pd)
                    .map_err(deadline_err)?
                    .expect("valid specifications always deduce");
                let tv = session.true_values_within(&od, pd).map_err(deadline_err)?;
                let sug = session.suggest_within(&od, &tv, pd).map_err(deadline_err)?;
                Ok(Response::Suggest {
                    ask: sug.ask.into_iter().collect(),
                    derived: sug.derived,
                })
            }
            Request::ApplyInput { input } => {
                pd.check().map_err(deadline_err)?;
                let added = self.store.apply_input(id, input).map_err(store_err)?;
                Ok(Response::Applied { added: added as u64 })
            }
            Request::IngestCausal { events } => {
                pd.check().map_err(deadline_err)?;
                let effective =
                    self.store.ingest_causal(id, events.clone()).map_err(store_err)?;
                let epoch = self.store.session(id).map_err(store_err)?.epoch().0;
                Ok(Response::Ingested { effective: effective.len() as u64, epoch })
            }
            Request::AbsorbBatch { revs } => {
                pd.check().map_err(deadline_err)?;
                let (report, applied) =
                    self.store.absorb_revision_batch(id, revs).map_err(store_err)?;
                Ok(Response::Absorbed { epoch: report.epoch.0, applied })
            }
            Request::Snapshot => {
                pd.check().map_err(deadline_err)?;
                self.store.snapshot(id).map_err(store_err)?;
                let log_bytes = self.store.log_len(id).map_err(store_err)?;
                Ok(Response::Snapshotted { log_bytes })
            }
        }
    }
}

fn store_err(e: StoreError) -> ServeError {
    match e {
        StoreError::UnknownSession(id) => ServeError::UnknownSession { session: id.0 },
        other => ServeError::Store { message: other.to_string() },
    }
}

fn deadline_err(e: cr_core::deadline::DeadlineExceeded) -> ServeError {
    ServeError::DeadlineExceeded { deadline: e.deadline, now: e.now, queued: false }
}
