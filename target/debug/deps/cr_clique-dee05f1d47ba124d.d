/root/repo/target/debug/deps/cr_clique-dee05f1d47ba124d.d: crates/cr-clique/src/lib.rs crates/cr-clique/src/exact.rs crates/cr-clique/src/graph.rs crates/cr-clique/src/greedy.rs

/root/repo/target/debug/deps/cr_clique-dee05f1d47ba124d: crates/cr-clique/src/lib.rs crates/cr-clique/src/exact.rs crates/cr-clique/src/graph.rs crates/cr-clique/src/greedy.rs

crates/cr-clique/src/lib.rs:
crates/cr-clique/src/exact.rs:
crates/cr-clique/src/graph.rs:
crates/cr-clique/src/greedy.rs:
