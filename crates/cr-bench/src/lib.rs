//! Shared experiment harness for reproducing Fig. 8(a)–(p) of the paper.
//!
//! Each `fig8*` binary regenerates one panel group; the `summary` binary prints the
//! headline comparisons of Section VI. Binaries accept `--entities N`,
//! `--seed S` and `--full` (paper-scale sizes) via simple flags.

use std::time::{Duration, Instant};

use cr_core::framework::{DeductionMethod, GroundTruthOracle, ResolutionConfig, Resolver};
use cr_core::{
    deduce_order, naive_deduce, pick_baseline, true_values_from_orders, Accuracy, EncodedSpec,
    Specification,
};
use cr_data::Dataset;

pub mod perf;

/// Simple CLI flag access: `--name value`.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &format!("--{name}"))
        .and_then(|i| args.get(i + 1).cloned())
}

/// Simple CLI boolean flag: `--name`.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == format!("--{name}"))
}

/// Parses `--entities`, defaulting to `default`.
pub fn arg_entities(default: usize) -> usize {
    arg_value("entities")
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--seed`, defaulting to `default`.
pub fn arg_seed(default: u64) -> u64 {
    arg_value("seed").and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The NBA size bins of Fig. 8(a): `\[1,27\] … \[109,135\]`.
pub fn nba_bins() -> Vec<(String, usize, usize)> {
    vec![
        ("[1,27]".into(), 1, 27),
        ("[28,54]".into(), 28, 54),
        ("[55,81]".into(), 55, 81),
        ("[82,108]".into(), 82, 108),
        ("[109,135]".into(), 109, 135),
    ]
}

/// The Person size bins of Fig. 8(a): `\[1,2000\] … \[8001,10000\]`.
pub fn person_bins(full: bool) -> Vec<(String, usize, usize)> {
    if full {
        vec![
            ("[1,2000]".into(), 1, 2000),
            ("[2001,4000]".into(), 2001, 4000),
            ("[4001,6000]".into(), 4001, 6000),
            ("[6001,8000]".into(), 6001, 8000),
            ("[8001,10000]".into(), 8001, 10000),
        ]
    } else {
        // Quick mode: same bin structure at 1/10 scale.
        vec![
            ("[1,200]".into(), 1, 200),
            ("[201,400]".into(), 201, 400),
            ("[401,600]".into(), 401, 600),
            ("[601,800]".into(), 601, 800),
            ("[801,1000]".into(), 801, 1000),
        ]
    }
}

/// Midpoint sample sizes inside a bin.
pub fn bin_sizes(lo: usize, hi: usize, n: usize) -> Vec<usize> {
    (0..n)
        .map(|i| lo + (hi - lo) * (2 * i + 1) / (2 * n))
        .map(|s| s.max(1))
        .collect()
}

/// Measured phase times for one specification.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Encode + SAT validity check.
    pub validity: Duration,
    /// `DeduceOrder` (unit propagation) on the encoded spec.
    pub deduce: Duration,
    /// Suggestion generation.
    pub suggest: Duration,
}

/// Times the three framework phases on one specification (one round, no
/// user input) — the measurement behind Fig. 8(a)/(c)/(d).
pub fn time_phases(spec: &Specification) -> PhaseTimes {
    let t0 = Instant::now();
    let enc = EncodedSpec::encode(spec);
    let mut solver = cr_sat::Solver::from_cnf(enc.cnf());
    let valid = solver.solve() == cr_sat::SolveResult::Sat;
    let validity = t0.elapsed();
    if !valid {
        return PhaseTimes { validity, ..Default::default() };
    }
    let t1 = Instant::now();
    let od = deduce_order(&enc).expect("valid spec");
    let known = true_values_from_orders(&enc, &od);
    let deduce = t1.elapsed();
    let t2 = Instant::now();
    if !known.complete() {
        let _ = cr_core::suggest(spec, &enc, &od, &known);
    }
    let suggest = t2.elapsed();
    PhaseTimes { validity, deduce, suggest }
}

/// Times `DeduceOrder` vs `NaiveDeduce` on one spec (Fig. 8(b)): returns
/// (unit propagation, incremental NaiveDeduce, paper-faithful fresh-solver
/// NaiveDeduce).
pub fn time_deduction(spec: &Specification) -> (Duration, Duration, Duration) {
    let enc = EncodedSpec::encode(spec);
    let t0 = Instant::now();
    let up = deduce_order(&enc);
    let up_time = t0.elapsed();
    let t1 = Instant::now();
    let naive = naive_deduce(&enc);
    let naive_time = t1.elapsed();
    let t2 = Instant::now();
    let _ = cr_core::naive_deduce_fresh(&enc);
    let fresh_time = t2.elapsed();
    // Sanity: both agree on validity; naive is a superset.
    if let (Some(a), Some(b)) = (up, naive) {
        debug_assert!(b.size() >= a.size());
    }
    (up_time, naive_time, fresh_time)
}

/// Resolution modes measured in the accuracy sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConstraintMode {
    /// Scale both Σ and Γ by the fraction (Fig. 8(f)/(j)/(n)).
    Both,
    /// Scale Σ; Γ empty (Fig. 8(g)/(k)/(o)).
    SigmaOnly,
    /// Scale Γ; Σ empty (Fig. 8(h)/(l)/(p)).
    GammaOnly,
}

impl ConstraintMode {
    /// Applies the mode to a spec.
    pub fn apply(&self, spec: &Specification, frac: f64, seed: u64) -> Specification {
        match self {
            ConstraintMode::Both => spec.with_constraint_fraction(frac, frac, seed),
            ConstraintMode::SigmaOnly => spec.with_constraint_fraction(frac, 0.0, seed),
            ConstraintMode::GammaOnly => spec.with_constraint_fraction(0.0, frac, seed),
        }
    }
}

/// Runs conflict resolution over every entity of `dataset` with at most
/// `max_rounds` user interactions, returning the accuracy accumulator and
/// the largest number of rounds any entity used.
///
/// Entities are independent, so they are fanned out across all cores via
/// [`Resolver::resolve_all_parallel`]; accuracy is accumulated from the
/// in-order results, keeping the output deterministic.
pub fn run_dataset(
    dataset: &Dataset,
    mode: ConstraintMode,
    frac: f64,
    max_rounds: usize,
    seed: u64,
) -> (Accuracy, usize) {
    let config = ResolutionConfig {
        max_rounds,
        deduction: DeductionMethod::UnitPropagation,
        ..Default::default()
    };
    let resolver = Resolver::new(config);
    let specs: Vec<Specification> = (0..dataset.len())
        .map(|i| mode.apply(&dataset.spec(i), frac, seed))
        .collect();
    // Like the paper's simulated users, answer sparingly (one attribute
    // per round) — k rounds therefore cost k answers. With max_rounds == 0
    // the oracle is never consulted, matching the old SilentOracle branch.
    let outcomes = resolver.resolve_all_parallel(&specs, |i| {
        GroundTruthOracle::with_cap(dataset.truth(i).clone(), 1)
    });
    let mut acc = Accuracy::new();
    let mut max_used = 0;
    for (i, outcome) in outcomes.iter().enumerate() {
        acc.add_entity(&dataset.entities[i].0, dataset.truth(i), &outcome.resolved);
        max_used = max_used.max(outcome.interactions);
    }
    (acc, max_used)
}


/// Runs the `Pick` baseline over every entity.
pub fn run_pick(dataset: &Dataset, seed: u64) -> Accuracy {
    let mut acc = Accuracy::new();
    for i in 0..dataset.len() {
        let spec = dataset.spec(i);
        let picked = pick_baseline(&spec, seed.wrapping_add(i as u64));
        acc.add_entity(&dataset.entities[i].0, dataset.truth(i), &picked);
    }
    acc
}

/// Formats a duration in ms with 1 decimal.
pub fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

/// Prints an aligned table: header row then data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Machine-readable benchmark reports (`BENCH_*.json`).
///
/// Future PRs diff these files to track the perf trajectory; keep the
/// format append-friendly: a flat `measurements` list of named wall-clock
/// timings plus free-form string context.
pub mod json {
    use std::io;
    use std::path::Path;

    /// One named wall-clock measurement.
    pub struct Measurement {
        /// Measurement identifier, e.g. `end_to_end/nba/incremental`.
        pub name: String,
        /// Wall-clock seconds.
        pub seconds: f64,
    }

    /// A benchmark report serialised as `BENCH_<n>.json`.
    #[derive(Default)]
    pub struct BenchReport {
        /// Report name, e.g. `incremental-engine`.
        pub name: String,
        /// Free-form context: dataset sizes, seeds, hardware notes.
        pub context: Vec<(String, String)>,
        /// Recorded measurements in insertion order.
        pub measurements: Vec<Measurement>,
    }

    impl BenchReport {
        /// An empty report.
        pub fn new(name: impl Into<String>) -> Self {
            BenchReport { name: name.into(), ..Default::default() }
        }

        /// Adds a context entry.
        pub fn context(&mut self, key: impl Into<String>, value: impl std::fmt::Display) {
            self.context.push((key.into(), value.to_string()));
        }

        /// Records a measurement.
        pub fn measure(&mut self, name: impl Into<String>, seconds: f64) {
            self.measurements.push(Measurement { name: name.into(), seconds });
        }

        /// The report as a JSON document.
        pub fn to_json(&self) -> String {
            let mut out = String::from("{\n");
            out.push_str(&format!("  \"name\": \"{}\",\n", escape(&self.name)));
            out.push_str("  \"context\": {\n");
            for (i, (k, v)) in self.context.iter().enumerate() {
                let comma = if i + 1 < self.context.len() { "," } else { "" };
                out.push_str(&format!("    \"{}\": \"{}\"{comma}\n", escape(k), escape(v)));
            }
            out.push_str("  },\n  \"measurements\": [\n");
            for (i, m) in self.measurements.iter().enumerate() {
                let comma = if i + 1 < self.measurements.len() { "," } else { "" };
                out.push_str(&format!(
                    "    {{\"name\": \"{}\", \"seconds\": {:.6}}}{comma}\n",
                    escape(&m.name),
                    m.seconds
                ));
            }
            out.push_str("  ]\n}\n");
            out
        }

        /// Writes the report to `path`.
        pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
            std::fs::write(path, self.to_json())
        }
    }

    fn escape(s: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out
    }
}

/// Standard quick-mode datasets used across binaries.
pub mod quick {
    use cr_data::career::{self, CareerConfig};
    use cr_data::nba::{self, NbaConfig};
    use cr_data::person::{self, PersonConfig};
    use cr_data::Dataset;

    /// NBA at reduced entity count for fast runs.
    pub fn nba(entities: usize, seed: u64) -> Dataset {
        nba::generate(NbaConfig { entities, seed, ..Default::default() })
    }

    /// CAREER at its natural size (65 entities).
    pub fn career(entities: usize, seed: u64) -> Dataset {
        career::generate(CareerConfig { entities, seed, ..Default::default() })
    }

    /// Person with moderate instances.
    pub fn person(entities: usize, seed: u64) -> Dataset {
        person::generate(PersonConfig {
            entities,
            min_tuples: 2,
            max_tuples: 60,
            seed,
        })
    }
}
