/root/repo/target/debug/deps/fig8b_deduce-6a40bbc834b6abbd.d: crates/cr-bench/src/bin/fig8b_deduce.rs

/root/repo/target/debug/deps/fig8b_deduce-6a40bbc834b6abbd: crates/cr-bench/src/bin/fig8b_deduce.rs

crates/cr-bench/src/bin/fig8b_deduce.rs:
