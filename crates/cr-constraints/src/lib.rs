//! The constraint language of the conflict-resolution model (Section II).
//!
//! Two constraint classes are provided:
//!
//! * [`CurrencyConstraint`] — `∀t1,t2 (ω → t1 ≺_Ar t2)` where `ω` conjoins
//!   order predicates `t1 ≺_Al t2`, tuple comparisons `t1[Al] op t2[Al]` and
//!   constant comparisons `ti[Al] op c` (Section II-A);
//! * [`ConstantCfd`] — constant conditional functional dependencies
//!   `tp[X] → tp[B]`, interpreted on the current tuple of a completion
//!   (Section II-B).
//!
//! Constraints can be built programmatically ([`builder`]) or parsed from a
//! text syntax mirroring the paper's Fig. 3 ([`parser`]):
//!
//! ```
//! use cr_types::Schema;
//! use cr_constraints::parser::{parse_currency_constraint, parse_cfds};
//!
//! let schema = Schema::new("person", ["status", "job", "AC", "city"]).unwrap();
//! let phi1 = parse_currency_constraint(
//!     &schema,
//!     r#"t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2"#,
//! ).unwrap();
//! assert_eq!(schema.attr_name(phi1.conclusion_attr()), "status");
//!
//! let psi = parse_cfds(&schema, r#"AC = 213 -> city = "LA""#).unwrap();
//! assert_eq!(psi.len(), 1);
//! ```

pub mod builder;
pub mod cfd;
pub(crate) mod fmt_util;
pub mod currency;
pub mod error;
pub mod op;
pub mod parser;
pub mod predicate;

pub use builder::CurrencyConstraintBuilder;
pub use cfd::ConstantCfd;
pub use currency::CurrencyConstraint;
pub use error::ConstraintError;
pub use op::CompOp;
pub use predicate::{Predicate, TupleRef};
