/root/repo/target/release/deps/conflict_resolution-8dea5ab032d9c32e.d: src/lib.rs

/root/repo/target/release/deps/libconflict_resolution-8dea5ab032d9c32e.rlib: src/lib.rs

/root/repo/target/release/deps/libconflict_resolution-8dea5ab032d9c32e.rmeta: src/lib.rs

src/lib.rs:
