/root/repo/target/debug/deps/cr_clique-c15d3c0ce1b96520.d: crates/cr-clique/src/lib.rs crates/cr-clique/src/exact.rs crates/cr-clique/src/graph.rs crates/cr-clique/src/greedy.rs

/root/repo/target/debug/deps/libcr_clique-c15d3c0ce1b96520.rmeta: crates/cr-clique/src/lib.rs crates/cr-clique/src/exact.rs crates/cr-clique/src/graph.rs crates/cr-clique/src/greedy.rs

crates/cr-clique/src/lib.rs:
crates/cr-clique/src/exact.rs:
crates/cr-clique/src/graph.rs:
crates/cr-clique/src/greedy.rs:
