/root/repo/target/debug/deps/cr_bench-e50ca18978db9c28.d: crates/cr-bench/src/lib.rs

/root/repo/target/debug/deps/libcr_bench-e50ca18978db9c28.rmeta: crates/cr-bench/src/lib.rs

crates/cr-bench/src/lib.rs:
