/root/repo/target/debug/deps/cr_clique-5826d3ff1f7a10f9.d: crates/cr-clique/src/lib.rs crates/cr-clique/src/exact.rs crates/cr-clique/src/graph.rs crates/cr-clique/src/greedy.rs Cargo.toml

/root/repo/target/debug/deps/libcr_clique-5826d3ff1f7a10f9.rmeta: crates/cr-clique/src/lib.rs crates/cr-clique/src/exact.rs crates/cr-clique/src/graph.rs crates/cr-clique/src/greedy.rs Cargo.toml

crates/cr-clique/src/lib.rs:
crates/cr-clique/src/exact.rs:
crates/cr-clique/src/graph.rs:
crates/cr-clique/src/greedy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
