/root/repo/target/debug/deps/fig8_accuracy-982a024a85beb6a6.d: crates/cr-bench/src/bin/fig8_accuracy.rs

/root/repo/target/debug/deps/libfig8_accuracy-982a024a85beb6a6.rmeta: crates/cr-bench/src/bin/fig8_accuracy.rs

crates/cr-bench/src/bin/fig8_accuracy.rs:
