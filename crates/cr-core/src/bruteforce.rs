//! Reference semantics by exhaustive enumeration.
//!
//! For small specifications this module enumerates *every* value-level
//! completion — one total order of the non-null value space per attribute,
//! with nulls pinned at the bottom — and checks the definition of validity
//! directly (Section II-C): base orders contained, every currency constraint
//! satisfied on every tuple pair, every CFD satisfied by the current tuple.
//!
//! It exists to validate the SAT encoding and the deduction algorithms:
//! property tests assert `IsValid` ⇔ "some completion is valid",
//! `DeduceOrder ⊆` the orders shared by all valid completions, and the
//! true-value extraction matches the completions' consensus.

use cr_constraints::Predicate;
use cr_types::{AttrId, Value};

use crate::spec::Specification;

/// All valid completions of `spec`, each given as one permutation of the
/// non-null active-domain values per attribute (least current first).
///
/// # Panics
/// Panics if the enumeration would exceed `limit` completions (guard against
/// accidental blow-up in tests).
pub fn valid_completions(spec: &Specification, limit: usize) -> Vec<Vec<Vec<Value>>> {
    let schema = spec.schema();
    let entity = spec.entity();
    let arity = schema.arity();

    // Value lists per attribute (non-null; null is a fixed bottom).
    let domains: Vec<Vec<Value>> = schema.attr_ids().map(|a| entity.active_domain(a)).collect();

    // Estimate the search space.
    let mut total: u128 = 1;
    for d in &domains {
        total = total.saturating_mul(factorial(d.len()) as u128);
    }
    assert!(
        total as usize <= limit,
        "brute force space {total} exceeds limit {limit}"
    );

    let mut completions = Vec::new();
    let mut current: Vec<Vec<Value>> = Vec::with_capacity(arity);
    enumerate(spec, &domains, 0, &mut current, &mut completions);
    completions
}

fn factorial(n: usize) -> u64 {
    (1..=n as u64).product::<u64>().max(1)
}

fn enumerate(
    spec: &Specification,
    domains: &[Vec<Value>],
    attr: usize,
    current: &mut Vec<Vec<Value>>,
    out: &mut Vec<Vec<Vec<Value>>>,
) {
    if attr == domains.len() {
        if satisfies(spec, current) {
            out.push(current.clone());
        }
        return;
    }
    for perm in permutations(&domains[attr]) {
        current.push(perm);
        enumerate(spec, domains, attr + 1, current, out);
        current.pop();
    }
}

/// All permutations of `items` (Heap's algorithm, materialised).
fn permutations(items: &[Value]) -> Vec<Vec<Value>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    let mut work: Vec<Value> = items.to_vec();
    heap_permute(work.len(), &mut work, &mut out);
    out
}

fn heap_permute(k: usize, work: &mut Vec<Value>, out: &mut Vec<Vec<Value>>) {
    if k == 1 {
        out.push(work.clone());
        return;
    }
    for i in 0..k {
        heap_permute(k - 1, work, out);
        if k.is_multiple_of(2) {
            work.swap(i, k - 1);
        } else {
            work.swap(0, k - 1);
        }
    }
}

/// Position of `v` in the permutation of its attribute; nulls are below
/// every non-null value (`-1`), equal values share a position.
fn rank(completion: &[Vec<Value>], attr: AttrId, v: &Value) -> i64 {
    if v.is_null() {
        return -1;
    }
    completion[attr.index()]
        .iter()
        .position(|x| x == v)
        .map(|p| p as i64)
        .expect("value drawn from active domain")
}

/// `v1 ≺v_attr v2` under the completion: strictly more current, with null
/// strictly below every non-null value.
fn strictly_before(completion: &[Vec<Value>], attr: AttrId, v1: &Value, v2: &Value) -> bool {
    if v1 == v2 {
        return false;
    }
    rank(completion, attr, v1) < rank(completion, attr, v2)
}

/// Checks the specification's semantics against one completion.
fn satisfies(spec: &Specification, completion: &[Vec<Value>]) -> bool {
    let entity = spec.entity();

    // 1. Base orders: t1 ≺_Ai t2 pairs with differing values must agree with
    //    the completion (equal values are the reflexive part of ⪯).
    for attr in spec.schema().attr_ids() {
        for (t1, t2) in spec.orders().pairs(attr) {
            let v1 = entity.tuple(t1).get(attr);
            let v2 = entity.tuple(t2).get(attr);
            if v1 == v2 {
                continue;
            }
            if !strictly_before(completion, attr, v1, v2) {
                return false;
            }
        }
    }

    // 2. Currency constraints on every ordered tuple pair.
    for c in spec.sigma() {
        for (i1, t1) in entity.iter() {
            'pair: for (i2, t2) in entity.iter() {
                if i1 == i2 {
                    continue;
                }
                for p in c.premises() {
                    match p {
                        Predicate::Order { attr } => {
                            let v1 = t1.get(*attr);
                            let v2 = t2.get(*attr);
                            // Mirror the encoder: order premises over
                            // missing data are vacuous.
                            if v1.is_null()
                                || v2.is_null()
                                || !strictly_before(completion, *attr, v1, v2)
                            {
                                continue 'pair;
                            }
                        }
                        other => {
                            if !other.eval_comparison(t1, t2).expect("comparison") {
                                continue 'pair;
                            }
                        }
                    }
                }
                // Premise holds: conclusion must too. Equal values satisfy
                // it vacuously, and nulls carry no strict obligation.
                let ar = c.conclusion_attr();
                let w1 = t1.get(ar);
                let w2 = t2.get(ar);
                if w1 != w2
                    && !w1.is_null()
                    && !w2.is_null()
                    && !strictly_before(completion, ar, w1, w2)
                {
                    return false;
                }
            }
        }
    }

    // 3. CFDs on the current tuple.
    let lst = current_tuple(completion);
    for cfd in spec.gamma() {
        let matches = cfd
            .lhs()
            .iter()
            .all(|(a, v)| lst[a.index()].as_ref() == Some(v));
        if matches {
            let (b, bv) = cfd.rhs();
            if lst[b.index()].as_ref() != Some(bv) {
                return false;
            }
        }
    }
    true
}

/// The current tuple of a completion: the last (most current) value of each
/// attribute, `None` when the attribute has no non-null values.
pub fn current_tuple(completion: &[Vec<Value>]) -> Vec<Option<Value>> {
    completion.iter().map(|perm| perm.last().cloned()).collect()
}

/// Brute-force validity: at least one valid completion exists.
pub fn brute_force_valid(spec: &Specification, limit: usize) -> bool {
    !valid_completions(spec, limit).is_empty()
}

/// Brute-force true values: the per-attribute consensus of the current
/// tuples of all valid completions (`None` where completions disagree or
/// none exist). The boolean is `false` when the spec is invalid.
pub fn brute_force_true_values(
    spec: &Specification,
    limit: usize,
) -> (bool, Vec<Option<Value>>) {
    let completions = valid_completions(spec, limit);
    let arity = spec.schema().arity();
    if completions.is_empty() {
        return (false, vec![None; arity]);
    }
    let mut consensus: Vec<Option<Value>> = current_tuple(&completions[0])
        .into_iter()
        .map(|v| v.or(Some(Value::Null)))
        .collect();
    for c in &completions[1..] {
        let lst = current_tuple(c);
        for (slot, v) in consensus.iter_mut().zip(lst) {
            let v = v.or(Some(Value::Null));
            if *slot != v {
                *slot = None;
            }
        }
    }
    (true, consensus)
}

/// Brute-force implied orders: value pairs `(attr, v1, v2)` with
/// `v1 ≺v v2` in *every* valid completion.
pub fn brute_force_implied_orders(
    spec: &Specification,
    limit: usize,
) -> Vec<(AttrId, Value, Value)> {
    let completions = valid_completions(spec, limit);
    let mut out = Vec::new();
    if completions.is_empty() {
        return out;
    }
    for attr in spec.schema().attr_ids() {
        let dom = spec.entity().active_domain(attr);
        for v1 in &dom {
            for v2 in &dom {
                if v1 == v2 {
                    continue;
                }
                if completions
                    .iter()
                    .all(|c| strictly_before(c, attr, v1, v2))
                {
                    out.push((attr, v1.clone(), v2.clone()));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_constraints::parser::{parse_cfds, parse_currency_constraint};
    use cr_types::{EntityInstance, Schema, Tuple};

    #[test]
    fn unconstrained_pair_has_two_completions() {
        let s = Schema::new("p", ["a"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![Tuple::of([Value::int(1)]), Tuple::of([Value::int(2)])],
        )
        .unwrap();
        let spec = Specification::without_orders(e, vec![], vec![]);
        assert_eq!(valid_completions(&spec, 1000).len(), 2);
        let (valid, tv) = brute_force_true_values(&spec, 1000);
        assert!(valid);
        assert_eq!(tv, vec![None]);
    }

    #[test]
    fn constraint_pins_down_the_order() {
        let s = Schema::new("p", ["status"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("working")]),
                Tuple::of([Value::str("retired")]),
            ],
        )
        .unwrap();
        let sigma = vec![parse_currency_constraint(
            &s,
            r#"t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2"#,
        )
        .unwrap()];
        let spec = Specification::without_orders(e, sigma, vec![]);
        let comps = valid_completions(&spec, 1000);
        assert_eq!(comps.len(), 1);
        let (_, tv) = brute_force_true_values(&spec, 1000);
        assert_eq!(tv, vec![Some(Value::str("retired"))]);
        let implied = brute_force_implied_orders(&spec, 1000);
        assert_eq!(implied.len(), 1);
    }

    #[test]
    fn cfd_filters_completions() {
        let s = Schema::new("p", ["AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::int(212), Value::str("NY")]),
                Tuple::of([Value::int(213), Value::str("LA")]),
            ],
        )
        .unwrap();
        let gamma = parse_cfds(&s, "AC = 213 -> city = \"LA\"").unwrap();
        let spec = Specification::without_orders(e, vec![], gamma);
        // 2 AC orders × 2 city orders = 4; the (213 top, NY top) one dies.
        assert_eq!(valid_completions(&spec, 1000).len(), 3);
    }

    #[test]
    fn equal_value_conclusion_is_not_a_violation() {
        // phi: order premise on status, conclusion job; jobs equal → fine.
        let s = Schema::new("p", ["status", "job"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("retired"), Value::str("n/a")]),
                Tuple::of([Value::str("deceased"), Value::str("n/a")]),
            ],
        )
        .unwrap();
        let sigma = vec![
            parse_currency_constraint(
                &s,
                r#"t1[status] = "retired" && t2[status] = "deceased" -> t1 <[status] t2"#,
            )
            .unwrap(),
            parse_currency_constraint(&s, "t1 <[status] t2 -> t1 <[job] t2").unwrap(),
        ];
        let spec = Specification::without_orders(e, sigma, vec![]);
        assert!(brute_force_valid(&spec, 1000));
    }

    #[test]
    fn blowup_guard_panics() {
        let s = Schema::new("p", ["a"]).unwrap();
        let e = EntityInstance::new(
            s,
            (0..6).map(|i| Tuple::of([Value::int(i)])).collect(),
        )
        .unwrap();
        let spec = Specification::without_orders(e, vec![], vec![]);
        let res = std::panic::catch_unwind(|| valid_completions(&spec, 10));
        assert!(res.is_err());
    }
}
