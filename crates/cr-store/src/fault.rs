//! Fault injection: a storage wrapper that simulates crashes.
//!
//! [`FaultyBackend`] wraps any [`StorageBackend`] and tracks, per session,
//! the byte range of the most recent append and the *synced watermark* —
//! the log length as of the last `sync`. [`FaultyBackend::crash`] then
//! rewrites the inner log the way a real crash would have left it: a torn
//! final write, a chopped tail, a flipped bit, or a lost final fsync. The
//! recovery differential in [`crate::harness`] drives all four modes at
//! every event boundary.

use std::collections::BTreeMap;

use crate::backend::{SessionId, StorageBackend};
use crate::store::StoreError;

/// A simulated crash mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The last append was cut short: only the first `at` bytes of it made
    /// it to storage. `at` past the append's length degrades to a clean
    /// crash after a complete write.
    TornWrite {
        /// Bytes of the final append that survived.
        at: u64,
    },
    /// The final `bytes` bytes of the log are lost (regardless of append
    /// boundaries).
    TruncatedTail {
        /// Bytes chopped off the end.
        bytes: u64,
    },
    /// One bit is flipped in place; the log keeps its length. `byte` is
    /// reduced modulo the log length.
    BitFlip {
        /// Byte offset of the corrupted byte.
        byte: u64,
        /// Bit index 0..8 within that byte.
        bit: u8,
    },
    /// Everything after the last explicit `sync` is lost — the log reverts
    /// to the synced watermark. Surviving bytes are all intact, so recovery
    /// must report **zero** checksum failures for this mode.
    LostSync,
}

/// What a [`FaultyBackend::crash`] actually did to the log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashReport {
    /// The injected fault.
    pub fault: Fault,
    /// Log length before the crash.
    pub original_len: u64,
    /// Log length after the crash (equal to `original_len` for
    /// [`Fault::BitFlip`]).
    pub surviving_len: u64,
    /// The `(byte, bit)` actually flipped, when the fault was a bit flip on
    /// a non-empty log.
    pub flipped: Option<(u64, u8)>,
}

#[derive(Clone, Copy, Debug, Default)]
struct Tracked {
    len: u64,
    synced: u64,
    /// Byte range `[start, end)` of the most recent append.
    last_append: Option<(u64, u64)>,
}

/// A [`StorageBackend`] decorator that records append/sync history and can
/// inject crashes. Delegates every operation to the wrapped backend, so a
/// [`crate::store::SessionStore`] runs over it unchanged. Clonable over a
/// clonable backend: harnesses checkpoint the whole (log + watermark)
/// state at an event boundary, then crash the copy.
#[derive(Clone, Debug)]
pub struct FaultyBackend<B: StorageBackend> {
    inner: B,
    tracked: BTreeMap<u64, Tracked>,
}

impl<B: StorageBackend> FaultyBackend<B> {
    /// Wraps `inner`. Pre-existing logs are adopted as fully synced.
    pub fn new(inner: B) -> Result<Self, StoreError> {
        let mut tracked = BTreeMap::new();
        for id in inner.sessions()? {
            let len = inner.log_len(id)?;
            tracked.insert(id.0, Tracked { len, synced: len, last_append: None });
        }
        Ok(FaultyBackend { inner, tracked })
    }

    /// Unwraps the inner backend.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// The synced watermark of `id`: bytes guaranteed to survive
    /// [`Fault::LostSync`].
    pub fn synced_len(&self, id: SessionId) -> u64 {
        self.tracked.get(&id.0).map_or(0, |t| t.synced)
    }

    /// Simulates a crash of the given mode on `id`'s log and rewrites the
    /// inner log to the post-crash bytes. After this returns, the backend
    /// behaves like a freshly opened store on the damaged log.
    pub fn crash(&mut self, id: SessionId, fault: Fault) -> Result<CrashReport, StoreError> {
        let mut log = self.inner.read_log(id)?;
        let original_len = log.len() as u64;
        let t = self.tracked.get(&id.0).copied().unwrap_or_default();
        let mut flipped = None;
        match fault {
            Fault::TornWrite { at } => {
                let cut = match t.last_append {
                    Some((start, end)) => (start + at).min(end),
                    None => original_len,
                };
                log.truncate(cut as usize);
            }
            Fault::TruncatedTail { bytes } => {
                let keep = original_len.saturating_sub(bytes);
                log.truncate(keep as usize);
            }
            Fault::BitFlip { byte, bit } => {
                if !log.is_empty() {
                    let at = (byte % log.len() as u64) as usize;
                    let bit = bit % 8;
                    log[at] ^= 1 << bit;
                    flipped = Some((at as u64, bit));
                }
            }
            Fault::LostSync => {
                log.truncate(t.synced.min(original_len) as usize);
            }
        }
        let surviving_len = log.len() as u64;
        self.inner.remove(id)?;
        if !log.is_empty() {
            self.inner.append(id, &log)?;
        }
        self.inner.sync(id)?;
        self.tracked.insert(
            id.0,
            Tracked { len: surviving_len, synced: surviving_len, last_append: None },
        );
        Ok(CrashReport { fault, original_len, surviving_len, flipped })
    }
}

impl<B: StorageBackend> StorageBackend for FaultyBackend<B> {
    fn append(&mut self, id: SessionId, frame: &[u8]) -> Result<(), StoreError> {
        self.inner.append(id, frame)?;
        let t = self.tracked.entry(id.0).or_default();
        let start = t.len;
        t.len += frame.len() as u64;
        t.last_append = Some((start, t.len));
        Ok(())
    }

    fn read_log(&self, id: SessionId) -> Result<Vec<u8>, StoreError> {
        self.inner.read_log(id)
    }

    fn truncate(&mut self, id: SessionId, len: u64) -> Result<(), StoreError> {
        self.inner.truncate(id, len)?;
        let t = self.tracked.entry(id.0).or_default();
        t.len = len;
        t.synced = t.synced.min(len);
        t.last_append = match t.last_append {
            Some((start, _)) if start < len => Some((start, len.min(t.len))),
            _ => None,
        };
        Ok(())
    }

    fn sync(&mut self, id: SessionId) -> Result<(), StoreError> {
        self.inner.sync(id)?;
        let t = self.tracked.entry(id.0).or_default();
        t.synced = t.len;
        Ok(())
    }

    fn sessions(&self) -> Result<Vec<SessionId>, StoreError> {
        self.inner.sessions()
    }

    fn remove(&mut self, id: SessionId) -> Result<(), StoreError> {
        self.inner.remove(id)?;
        self.tracked.remove(&id.0);
        Ok(())
    }

    fn log_len(&self, id: SessionId) -> Result<u64, StoreError> {
        self.inner.log_len(id)
    }
}
