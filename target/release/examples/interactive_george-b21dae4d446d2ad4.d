/root/repo/target/release/examples/interactive_george-b21dae4d446d2ad4.d: examples/interactive_george.rs

/root/repo/target/release/examples/interactive_george-b21dae4d446d2ad4: examples/interactive_george.rs

examples/interactive_george.rs:
