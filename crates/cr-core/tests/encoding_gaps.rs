//! Documents the gap between the paper's encoding (Section V-A:
//! transitivity and asymmetry, **no totality**) and the completion
//! semantics, and shows the totality clauses close it. See DESIGN.md §4 and
//! `EncodeOptions::paper_faithful`.

use proptest::prelude::*;

use cr_constraints::parser::parse_cfd_file;
use cr_core::bruteforce::brute_force_valid;
use cr_core::encode::{EncodeOptions, EncodedSpec};
use cr_core::Specification;
use cr_sat::{SolveResult, Solver};
use cr_types::{EntityInstance, Schema, Tuple, Value};

/// A specification with **no** valid completion that the paper-faithful
/// encoding nevertheless reports satisfiable:
///
/// * `AC ∈ {212, 213}`, and both `AC=212 → city=LA` and `AC=213 → city=LA`;
///   whichever AC value ends up most current, the city must be LA;
/// * `city=LA → zip=1`, but `1 ∉ adom(zip)` — so the firing CFD cannot be
///   satisfied. Every completion is invalid.
///
/// Without totality clauses, the solver can leave the two AC values
/// *unordered*, firing neither AC-CFD, and (vacuously) satisfy everything.
fn gap_spec() -> Specification {
    let s = Schema::new("p", ["AC", "city", "zip"]).unwrap();
    let e = EntityInstance::new(
        s.clone(),
        vec![
            Tuple::of([Value::int(212), Value::str("NY"), Value::int(2)]),
            Tuple::of([Value::int(213), Value::str("LA"), Value::int(2)]),
        ],
    )
    .unwrap();
    let gamma = parse_cfd_file(
        &s,
        r#"
        AC = 212 -> city = "LA"
        AC = 213 -> city = "LA"
        city = "LA" -> zip = 1
        "#,
    )
    .unwrap();
    Specification::without_orders(e, vec![], gamma)
}

#[test]
fn paper_encoding_reports_an_invalid_spec_as_valid() {
    let spec = gap_spec();
    assert!(
        !brute_force_valid(&spec, 1_000_000),
        "semantically there is no valid completion"
    );

    // Paper-faithful: Φ(Se) is satisfiable — the documented gap.
    let paper = EncodedSpec::encode_with(&spec, EncodeOptions::paper_faithful());
    let mut solver = Solver::from_cnf(paper.cnf());
    assert_eq!(
        solver.solve(),
        SolveResult::Sat,
        "the paper's encoding misses this invalidity"
    );

    // With totality (our default) the encoding agrees with the semantics.
    let fixed = EncodedSpec::encode(&spec);
    let mut solver = Solver::from_cnf(fixed.cnf());
    assert_eq!(solver.solve(), SolveResult::Unsat);
}

#[test]
fn totality_never_changes_the_answer_on_satisfiable_side() {
    // If the totality encoding is SAT, the paper encoding must be too
    // (its clause set is a subset).
    let spec = gap_spec();
    let full = EncodedSpec::encode(&spec);
    let paper = EncodedSpec::encode_with(&spec, EncodeOptions::paper_faithful());
    assert!(paper.cnf().num_clauses() < full.cnf().num_clauses());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One-sided property on random CFD-only specs: paper-faithful validity
    /// is implied by semantic validity (it can only over-approximate).
    #[test]
    fn paper_encoding_over_approximates_validity(
        rows in prop::collection::vec(prop::collection::vec(0i64..3, 2), 1..4),
        cfds in prop::collection::vec((0i64..3, 0i64..3), 0..4),
    ) {
        let s = Schema::new("p", ["x", "y"]).unwrap();
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|r| Tuple::of([Value::int(r[0]), Value::int(r[1])]))
            .collect();
        let e = EntityInstance::new(s.clone(), tuples).unwrap();
        let gamma: Vec<_> = cfds
            .iter()
            .map(|(a, b)| {
                cr_constraints::ConstantCfd::new(
                    s.clone(),
                    None,
                    vec![(s.attr_id("x").unwrap(), Value::int(*a))],
                    (s.attr_id("y").unwrap(), Value::int(*b)),
                )
                .unwrap()
            })
            .collect();
        let spec = Specification::without_orders(e, vec![], gamma);
        let semantic = brute_force_valid(&spec, 1_000_000);
        let paper = EncodedSpec::encode_with(&spec, EncodeOptions::paper_faithful());
        let mut solver = Solver::from_cnf(paper.cnf());
        let paper_valid = solver.solve() == SolveResult::Sat;
        // semantic ⇒ paper_valid.
        prop_assert!(!semantic || paper_valid);
        // And the default encoding is exact.
        let fixed = EncodedSpec::encode(&spec);
        let mut solver = Solver::from_cnf(fixed.cnf());
        prop_assert_eq!(solver.solve() == SolveResult::Sat, semantic);
    }
}
