/root/repo/target/debug/deps/proptest-be6904af7a39a27b.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-be6904af7a39a27b.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
