/root/repo/target/debug/deps/sat_integration-ff11b40d4dc2cc71.d: tests/sat_integration.rs Cargo.toml

/root/repo/target/debug/deps/libsat_integration-ff11b40d4dc2cc71.rmeta: tests/sat_integration.rs Cargo.toml

tests/sat_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
