//! Quickstart: the paper's running example (Example 2).
//!
//! Three conflicting records describe the nurse from the "V-J Day in Times
//! Square" photograph — none carries a timestamp. Currency constraints
//! (ϕ1–ϕ8) and constant CFDs (ψ1–ψ2) let the resolver infer her single
//! most-current, consistent tuple fully automatically.
//!
//! Run: `cargo run --example quickstart`

use conflict_resolution::core::framework::{Resolver, SilentOracle};
use conflict_resolution::core::framework::render_resolved;
use conflict_resolution::data::vjday;

fn main() {
    let spec = vjday::edith_spec();

    println!("Entity instance E1 (Fig. 2):");
    for (id, tuple) in spec.entity().iter() {
        println!("  r{}: {}", id.0 + 1, tuple.display(spec.schema()));
    }
    println!("\nCurrency constraints (Fig. 3):");
    for c in spec.sigma() {
        println!("  {c}");
    }
    println!("Constant CFDs (Fig. 3):");
    for c in spec.gamma() {
        println!("  {c}");
    }

    // Resolve with no user at all: Example 2 needs zero interactions.
    let outcome = Resolver::default_config().resolve(&spec, &mut SilentOracle);

    println!("\nvalid: {}", outcome.valid);
    println!("complete: {} (rounds of user interaction: {})", outcome.complete, outcome.interactions);
    println!("resolved tuple:\n  {}", render_resolved(spec.schema(), &outcome.resolved));

    let truth = vjday::edith_truth();
    assert_eq!(
        outcome.resolved.to_tuple().expect("complete").values(),
        truth.values(),
        "must match the paper's derived tuple"
    );
    println!("\nmatches the paper's Example 2 exactly:");
    println!("  (Edith Shain, deceased, n/a, 3, LA, 213, 90058, Vermont)");
}
