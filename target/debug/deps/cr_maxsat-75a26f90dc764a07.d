/root/repo/target/debug/deps/cr_maxsat-75a26f90dc764a07.d: crates/cr-maxsat/src/lib.rs crates/cr-maxsat/src/exact.rs crates/cr-maxsat/src/instance.rs crates/cr-maxsat/src/walksat.rs Cargo.toml

/root/repo/target/debug/deps/libcr_maxsat-75a26f90dc764a07.rmeta: crates/cr-maxsat/src/lib.rs crates/cr-maxsat/src/exact.rs crates/cr-maxsat/src/instance.rs crates/cr-maxsat/src/walksat.rs Cargo.toml

crates/cr-maxsat/src/lib.rs:
crates/cr-maxsat/src/exact.rs:
crates/cr-maxsat/src/instance.rs:
crates/cr-maxsat/src/walksat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
