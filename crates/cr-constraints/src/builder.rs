//! Fluent programmatic construction of currency constraints.

use std::sync::Arc;

use cr_types::{Schema, Value};

use crate::currency::CurrencyConstraint;
use crate::error::ConstraintError;
use crate::op::CompOp;
use crate::predicate::{Predicate, TupleRef};

/// Builder for [`CurrencyConstraint`]s, resolving attribute names eagerly.
///
/// ```
/// use cr_types::Schema;
/// use cr_constraints::{CurrencyConstraintBuilder, CompOp};
///
/// let schema = Schema::new("person", ["status", "job", "kids"]).unwrap();
/// // phi1: t1[status]="working" && t2[status]="retired" -> t1 <[status] t2
/// let phi1 = CurrencyConstraintBuilder::new(&schema, "status").unwrap()
///     .t1_cmp_const("status", CompOp::Eq, "working").unwrap()
///     .t2_cmp_const("status", CompOp::Eq, "retired").unwrap()
///     .named("phi1")
///     .build().unwrap();
/// assert!(phi1.is_comparison_only());
/// ```
pub struct CurrencyConstraintBuilder {
    schema: Arc<Schema>,
    name: Option<String>,
    premises: Vec<Predicate>,
    conclusion: cr_types::AttrId,
}

impl CurrencyConstraintBuilder {
    /// Starts a constraint concluding `t1 ≺_conclusion t2`.
    pub fn new(schema: &Arc<Schema>, conclusion: &str) -> Result<Self, ConstraintError> {
        let attr = schema
            .attr_id(conclusion)
            .ok_or_else(|| ConstraintError::UnknownAttribute(conclusion.to_string()))?;
        Ok(CurrencyConstraintBuilder {
            schema: schema.clone(),
            name: None,
            premises: Vec::new(),
            conclusion: attr,
        })
    }

    /// Names the constraint (`phi1`, …).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Adds an order premise `t1 ≺_attr t2`.
    pub fn order(mut self, attr: &str) -> Result<Self, ConstraintError> {
        let attr = self.resolve(attr)?;
        self.premises.push(Predicate::Order { attr });
        Ok(self)
    }

    /// Adds a tuple comparison `t1[attr] op t2[attr]`.
    pub fn tuple_cmp(mut self, attr: &str, op: CompOp) -> Result<Self, ConstraintError> {
        let attr = self.resolve(attr)?;
        self.premises.push(Predicate::TupleCmp { attr, op });
        Ok(self)
    }

    /// Adds a constant comparison `t1[attr] op c`.
    pub fn t1_cmp_const(
        self,
        attr: &str,
        op: CompOp,
        constant: impl Into<Value>,
    ) -> Result<Self, ConstraintError> {
        self.const_cmp(TupleRef::T1, attr, op, constant)
    }

    /// Adds a constant comparison `t2[attr] op c`.
    pub fn t2_cmp_const(
        self,
        attr: &str,
        op: CompOp,
        constant: impl Into<Value>,
    ) -> Result<Self, ConstraintError> {
        self.const_cmp(TupleRef::T2, attr, op, constant)
    }

    fn const_cmp(
        mut self,
        tuple: TupleRef,
        attr: &str,
        op: CompOp,
        constant: impl Into<Value>,
    ) -> Result<Self, ConstraintError> {
        let attr = self.resolve(attr)?;
        self.premises.push(Predicate::ConstCmp { tuple, attr, op, constant: constant.into() });
        Ok(self)
    }

    fn resolve(&self, attr: &str) -> Result<cr_types::AttrId, ConstraintError> {
        self.schema
            .attr_id(attr)
            .ok_or_else(|| ConstraintError::UnknownAttribute(attr.to_string()))
    }

    /// Finalises the constraint.
    pub fn build(self) -> Result<CurrencyConstraint, ConstraintError> {
        CurrencyConstraint::new(self.schema, self.name, self.premises, self.conclusion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_currency_constraint;

    #[test]
    fn builder_matches_parser() {
        let s = Schema::new("person", ["status", "job", "kids"]).unwrap();
        let built = CurrencyConstraintBuilder::new(&s, "job")
            .unwrap()
            .order("status")
            .unwrap()
            .build()
            .unwrap();
        let parsed = parse_currency_constraint(&s, "t1 <[status] t2 -> t1 <[job] t2").unwrap();
        assert_eq!(built.premises(), parsed.premises());
        assert_eq!(built.conclusion_attr(), parsed.conclusion_attr());
    }

    #[test]
    fn builder_rejects_unknown_attrs() {
        let s = Schema::new("person", ["status"]).unwrap();
        assert!(CurrencyConstraintBuilder::new(&s, "nope").is_err());
        assert!(CurrencyConstraintBuilder::new(&s, "status")
            .unwrap()
            .order("nope")
            .is_err());
    }

    #[test]
    fn numeric_constants_convert() {
        let s = Schema::new("person", ["kids"]).unwrap();
        let c = CurrencyConstraintBuilder::new(&s, "kids")
            .unwrap()
            .t1_cmp_const("kids", CompOp::Lt, 3i64)
            .unwrap()
            .tuple_cmp("kids", CompOp::Lt)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(c.premises().len(), 2);
    }
}
