//! Tuples of a relation schema.

use std::fmt;
use std::sync::Arc;

use crate::error::TypesError;
use crate::schema::{AttrId, Schema};
use crate::value::Value;

/// A tuple of attribute values conforming to a [`Schema`].
///
/// The schema is carried by the containing [`crate::EntityInstance`] (or by
/// the caller); the tuple itself stores only the dense value vector, keeping
/// large entity instances compact.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    values: Box<[Value]>,
}

impl Tuple {
    /// Builds a tuple after checking arity against `schema`.
    pub fn new(schema: &Schema, values: Vec<Value>) -> Result<Self, TypesError> {
        if values.len() != schema.arity() {
            return Err(TypesError::ArityMismatch {
                expected: schema.arity(),
                got: values.len(),
            });
        }
        Ok(Tuple { values: values.into_boxed_slice() })
    }

    /// Builds a tuple without a schema check (for internal generators that
    /// construct values positionally from the same schema).
    pub fn from_values(values: Vec<Value>) -> Self {
        Tuple { values: values.into_boxed_slice() }
    }

    /// Convenience constructor from anything convertible to [`Value`].
    pub fn of<V: Into<Value>, I: IntoIterator<Item = V>>(values: I) -> Self {
        Tuple::from_values(values.into_iter().map(Into::into).collect())
    }

    /// The value of attribute `attr` (`t[Ai]` in the paper).
    pub fn get(&self, attr: AttrId) -> &Value {
        &self.values[attr.index()]
    }

    /// Mutable access to the value of attribute `attr`.
    pub fn get_mut(&mut self, attr: AttrId) -> &mut Value {
        &mut self.values[attr.index()]
    }

    /// Replaces the value of attribute `attr`, returning the previous one.
    pub fn set(&mut self, attr: AttrId, value: Value) -> Value {
        std::mem::replace(&mut self.values[attr.index()], value)
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// All values in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Renders the tuple with attribute names, e.g.
    /// `(status: retired, kids: 3)`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> TupleDisplay<'a> {
        TupleDisplay { tuple: self, schema }
    }

    /// True iff the two tuples agree on every attribute in `attrs`.
    pub fn agrees_on(&self, other: &Tuple, attrs: &[AttrId]) -> bool {
        attrs.iter().all(|&a| self.get(a) == other.get(a))
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, ")")
    }
}

/// Pretty-printer for a tuple in the context of its schema.
pub struct TupleDisplay<'a> {
    tuple: &'a Tuple,
    schema: &'a Schema,
}

impl fmt::Display for TupleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (id, attr) in self.schema.iter() {
            if id.index() > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", attr.name(), self.tuple.get(id))?;
        }
        write!(f, ")")
    }
}

/// Builds a tuple for `schema` from `(attribute name, value)` pairs; missing
/// attributes become null.
pub fn tuple_from_pairs<'a, V: Into<Value>>(
    schema: &Schema,
    pairs: impl IntoIterator<Item = (&'a str, V)>,
) -> Result<Tuple, TypesError> {
    let mut values = vec![Value::Null; schema.arity()];
    for (name, v) in pairs {
        let id = schema.require_attr(name)?;
        values[id.index()] = v.into();
    }
    Ok(Tuple::from_values(values))
}

/// Shared handle to a schema, the form most APIs take.
pub type SchemaRef = Arc<Schema>;

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> SchemaRef {
        Schema::new("r", ["a", "b", "c"]).unwrap()
    }

    #[test]
    fn arity_checked() {
        let s = schema();
        assert!(Tuple::new(&s, vec![Value::int(1)]).is_err());
        assert!(Tuple::new(&s, vec![Value::int(1), Value::Null, Value::str("x")]).is_ok());
    }

    #[test]
    fn get_by_attr() {
        let s = schema();
        let t = Tuple::of([Value::int(1), Value::str("x"), Value::Null]);
        assert_eq!(t.get(s.attr_id("b").unwrap()), &Value::str("x"));
        assert!(t.get(s.attr_id("c").unwrap()).is_null());
    }

    #[test]
    fn from_pairs_fills_nulls() {
        let s = schema();
        let t = tuple_from_pairs(&s, [("c", Value::int(9))]).unwrap();
        assert!(t.get(AttrId(0)).is_null());
        assert_eq!(t.get(AttrId(2)), &Value::int(9));
        assert!(tuple_from_pairs(&s, [("zzz", Value::Null)]).is_err());
    }

    #[test]
    fn agrees_on_subset() {
        let t1 = Tuple::of([Value::int(1), Value::int(2), Value::int(3)]);
        let t2 = Tuple::of([Value::int(1), Value::int(9), Value::int(3)]);
        assert!(t1.agrees_on(&t2, &[AttrId(0), AttrId(2)]));
        assert!(!t1.agrees_on(&t2, &[AttrId(0), AttrId(1)]));
    }

    #[test]
    fn display_with_schema() {
        let s = schema();
        let t = Tuple::of([Value::int(1), Value::str("x"), Value::Null]);
        assert_eq!(t.display(&s).to_string(), "(a: 1, b: x, c: null)");
    }
}
