/root/repo/target/debug/deps/validity-d08e269fd14a2f30.d: crates/cr-bench/benches/validity.rs

/root/repo/target/debug/deps/validity-d08e269fd14a2f30: crates/cr-bench/benches/validity.rs

crates/cr-bench/benches/validity.rs:
