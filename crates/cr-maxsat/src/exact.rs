//! Complete partial-MaxSAT for unit weights via CDCL + cardinality bounds.
//!
//! Each soft clause `C_i` gets a selector `s_i` with `s_i → C_i`; a
//! sequential-counter encoding of `Σ s_i ≥ k` is added, and `k` is searched
//! downward from the soft-clause count. The first satisfiable `k` is the
//! optimum. Weighted instances fall back to the WalkSAT search.

use cr_sat::{Cnf, Lit, SolveResult, Solver, Var};

use crate::instance::{MaxSatInstance, MaxSatResult};
use crate::walksat;

/// Solves exactly when all weights are 1; otherwise delegates to WalkSAT
/// with a generous budget (documented fallback).
pub fn solve_exact(instance: &MaxSatInstance<'_>) -> Option<MaxSatResult> {
    if !instance.has_unit_weights() {
        return walksat::solve_walksat(instance, 500_000, 0xFA11BACC);
    }
    let m = instance.soft_len();

    // Base formula: hard clauses + selector implications.
    let mut base = Cnf::new();
    base.ensure_vars(instance.num_vars());
    for c in instance.hard_iter() {
        base.add_clause(c.iter().copied());
    }
    let selectors: Vec<Var> = (0..m).map(|_| base.new_var()).collect();
    for (i, s) in instance.soft().iter().enumerate() {
        let mut clause = s.lits.clone();
        clause.push(selectors[i].negative());
        base.add_clause(clause);
    }

    // Feasibility check (k = 0).
    let mut solver = Solver::from_cnf(&base);
    if solver.solve() == SolveResult::Unsat {
        return None;
    }
    let mut best_model = solver.model();

    for k in (1..=m).rev() {
        let mut cnf = base.clone();
        let sel_lits: Vec<Lit> = selectors.iter().map(|v| v.positive()).collect();
        encode_at_least_k(&mut cnf, &sel_lits, k);
        let mut solver = Solver::from_cnf(&cnf);
        if solver.solve() == SolveResult::Sat {
            best_model = solver.model();
            break;
        }
    }
    best_model.resize(instance.num_vars() as usize, false);
    best_model.truncate(instance.num_vars() as usize);
    Some(MaxSatResult::from_assignment(instance, best_model, true))
}

/// Adds clauses enforcing "at least `k` of `lits` are true" using the
/// complement sequential counter: at most `n - k` of the negations are true.
pub fn encode_at_least_k(cnf: &mut Cnf, lits: &[Lit], k: usize) {
    let n = lits.len();
    if k == 0 {
        return;
    }
    if k > n {
        cnf.add_clause([]); // impossible
        return;
    }
    let negs: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
    encode_at_most_k(cnf, &negs, n - k);
}

/// Adds clauses enforcing "at most `k` of `lits` are true" with the
/// sequential counter (Sinz 2005): registers `r[i][j]` = "at least j+1 of
/// the first i+1 literals are true".
pub fn encode_at_most_k(cnf: &mut Cnf, lits: &[Lit], k: usize) {
    let n = lits.len();
    if n == 0 || k >= n {
        return;
    }
    if k == 0 {
        for &l in lits {
            cnf.add_clause([l.negate()]);
        }
        return;
    }
    // r[i][j], i in 0..n-1, j in 0..k.
    let regs: Vec<Vec<Var>> = (0..n - 1)
        .map(|_| (0..k).map(|_| cnf.new_var()).collect())
        .collect();
    // First literal seeds the counter.
    cnf.add_clause([lits[0].negate(), regs[0][0].positive()]);
    for reg in &regs[0][1..] {
        cnf.add_clause([reg.negative()]);
    }
    for i in 1..n - 1 {
        // Carry: r[i][j] ← r[i-1][j].
        for (prev, cur) in regs[i - 1].iter().zip(&regs[i]) {
            cnf.add_clause([prev.negative(), cur.positive()]);
        }
        // Increment: r[i][0] ← lits[i]; r[i][j] ← lits[i] ∧ r[i-1][j-1].
        cnf.add_clause([lits[i].negate(), regs[i][0].positive()]);
        for j in 1..k {
            cnf.add_clause([
                lits[i].negate(),
                regs[i - 1][j - 1].negative(),
                regs[i][j].positive(),
            ]);
        }
        // Overflow forbidden: lits[i] ∧ r[i-1][k-1] → ⊥.
        cnf.add_clause([lits[i].negate(), regs[i - 1][k - 1].negative()]);
    }
    cnf.add_clause([lits[n - 1].negate(), regs[n - 2][k - 1].negative()]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::MaxSatInstance;

    fn count_models_with_bound(n: usize, k: usize, at_most: bool) -> usize {
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = (0..n).map(|_| cnf.new_var()).collect();
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        if at_most {
            encode_at_most_k(&mut cnf, &lits, k);
        } else {
            encode_at_least_k(&mut cnf, &lits, k);
        }
        // Enumerate assignments of the original n vars; auxiliary vars are
        // existentially quantified, so count assignments extendable to a
        // model: check with the solver per assignment.
        let mut count = 0;
        for mask in 0u32..(1 << n) {
            let mut solver = Solver::from_cnf(&cnf);
            let assumptions: Vec<Lit> = (0..n)
                .map(|i| vars[i].lit(mask >> i & 1 == 1))
                .collect();
            if solver.solve_with_assumptions(&assumptions) == SolveResult::Sat {
                count += 1;
            }
        }
        count
    }

    fn binom(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        (0..k).fold(1usize, |acc, i| acc * (n - i) / (i + 1))
    }

    #[test]
    fn at_most_k_counts_match_binomials() {
        for n in 1..=5usize {
            for k in 0..=n {
                let expected: usize = (0..=k).map(|j| binom(n, j)).sum();
                assert_eq!(
                    count_models_with_bound(n, k, true),
                    expected,
                    "at-most n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn at_least_k_counts_match_binomials() {
        for n in 1..=5usize {
            for k in 0..=n {
                let expected: usize = (k..=n).map(|j| binom(n, j)).sum();
                assert_eq!(
                    count_models_with_bound(n, k, false),
                    expected,
                    "at-least n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn exact_optimum_on_conflicting_softs() {
        // Softs: x0, ¬x0, x1, ¬x1, (x0 ∨ x1). Best = 3.
        let mut inst = MaxSatInstance::new(2);
        inst.add_soft([Var(0).positive()], 1);
        inst.add_soft([Var(0).negative()], 1);
        inst.add_soft([Var(1).positive()], 1);
        inst.add_soft([Var(1).negative()], 1);
        inst.add_soft([Var(0).positive(), Var(1).positive()], 1);
        let res = solve_exact(&inst).unwrap();
        assert!(res.optimal);
        assert_eq!(res.total_weight, 3);
    }

    #[test]
    fn exact_with_hard_constraints() {
        // Hard: exactly-one-ish chain forcing ¬x0; softs want both true.
        let mut inst = MaxSatInstance::new(2);
        inst.add_hard([Var(0).negative(), Var(1).negative()]);
        inst.add_soft([Var(0).positive()], 1);
        inst.add_soft([Var(1).positive()], 1);
        let res = solve_exact(&inst).unwrap();
        assert_eq!(res.total_weight, 1);
        assert!(res.optimal);
        assert!(inst.hard_satisfied(&res.assignment));
    }

    #[test]
    fn exact_infeasible_returns_none() {
        let mut inst = MaxSatInstance::new(1);
        inst.add_hard([Var(0).positive()]);
        inst.add_hard([Var(0).negative()]);
        assert!(solve_exact(&inst).is_none());
    }

    #[test]
    fn all_softs_satisfiable() {
        let mut inst = MaxSatInstance::new(3);
        for i in 0..3 {
            inst.add_soft([Var(i).positive()], 1);
        }
        let res = solve_exact(&inst).unwrap();
        assert_eq!(res.total_weight, 3);
        assert_eq!(res.satisfied_soft, vec![true; 3]);
    }
}
