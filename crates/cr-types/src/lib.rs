//! Relational substrate for currency/consistency conflict resolution.
//!
//! This crate provides the data model of Section II of the paper:
//! dynamically typed [`Value`]s with the null-lowest comparison semantics the
//! currency model requires, relation [`Schema`]s, [`Tuple`]s, and
//! [`EntityInstance`]s — sets of tuples all pertaining to one real-world
//! entity (the unit the conflict-resolution algorithms operate on).
//!
//! It also hosts the per-attribute [`interner`] used by the SAT encoder and a
//! small dependency-free [`csv`] module for dataset import/export.

pub mod causal;
pub mod codec;
pub mod csv;
pub mod entity;
pub mod error;
pub mod interner;
pub mod schema;
pub mod tuple;
pub mod value;
pub mod wire;

pub use causal::{CausalStamp, Epoch, Hlc, SourceClock, SourceId, VectorClock};
pub use codec::{CodecError, Dec, Enc, FrameScanner};
pub use wire::{Envelope, IdemKey, RequestId, TenantId};
pub use entity::{EntityInstance, TupleId, NO_GLOBAL_VALUE};
pub use error::TypesError;
pub use interner::{
    AttrValueSpace, GlobalValueId, ValueId, ValueInterner, ValueTable, NULL_VALUE_ID,
};
pub use schema::{AttrId, Attribute, Schema};
pub use tuple::Tuple;
pub use value::Value;
