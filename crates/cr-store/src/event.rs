//! Record encodings for the durable session log.
//!
//! Every log frame's payload is `[FORMAT_VERSION][record tag][body]`,
//! encoded with the primitive codec of `cr_types::codec` (no serde — the
//! workspace is offline). Decoders return typed
//! [`CodecError`]s on any malformed byte string and never panic; a record
//! decode failure is treated by recovery exactly like a checksum failure
//! (truncate to the last fully-understood frame). See the crate docs for
//! the version policy.

use cr_core::causal::{CausalRevision, FrontierState};
use cr_core::ingest::{
    AnswerState, CompetingCell, Revision, RevisionError, RevisionTelemetry, SessionState,
};
use cr_core::spec::UserInput;
use cr_types::codec::{
    decode_hlc, decode_source, decode_stamp, decode_value, decode_vclock, encode_hlc,
    encode_source, encode_stamp, encode_value, encode_vclock, CodecError, Dec, Enc,
    FrameScanner,
};
use cr_types::{AttrId, Epoch, TupleId};

/// Current record format version. Bumped on any incompatible encoding
/// change; decoders reject unknown versions with a typed error.
///
/// *v2*: batch-boundary markers ([`LogRecord::BatchMark`]), coalescing
/// telemetry counters, and the competing / quarantine / epoch fields of
/// [`SessionState`].
pub const FORMAT_VERSION: u8 = 2;

const TAG_INPUT: u8 = 0;
const TAG_CAUSAL: u8 = 1;
const TAG_REVISION: u8 = 2;
const TAG_SNAPSHOT: u8 = 3;
const TAG_BATCH: u8 = 4;

/// One durable log record: an input the session absorbed, a batch-commit
/// marker, or a snapshot of its logical state.
#[derive(Clone, Debug, PartialEq)]
pub enum LogRecord {
    /// One round of user answers.
    Input(UserInput),
    /// One causally-stamped upstream correction.
    Causal(CausalRevision),
    /// One plain (unstamped) revision.
    Revision(Revision),
    /// Commits the run of `Causal`/`Revision` records appended since the
    /// previous non-event record as **one atomic revision batch**. The
    /// marker is appended *after* its events are applied, so a crash
    /// mid-batch leaves an unterminated run that recovery drops and
    /// physically truncates — rehydration always lands exactly on a batch
    /// boundary. Fields are diagnostic, not decoding inputs.
    BatchMark {
        /// The session epoch after the batch sealed.
        epoch: u64,
        /// Event records the marker commits.
        events: u64,
    },
    /// A periodic snapshot; rehydration replays only the records after the
    /// last one. Boxed: a snapshot dwarfs the event variants.
    Snapshot(Box<SnapshotRecord>),
}

/// A snapshot record: the session's logical state plus how many event
/// records preceded it (recovery telemetry, not a decoding input).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SnapshotRecord {
    /// Event records logged before this snapshot (inputs + revisions, not
    /// snapshots).
    pub events_covered: u64,
    /// The session's logical state at snapshot time.
    pub state: SessionState,
}

fn put_attr(e: &mut Enc, attr: AttrId) {
    e.put_varint(u64::from(attr.0));
}

fn get_attr(d: &mut Dec<'_>) -> Result<AttrId, CodecError> {
    Ok(AttrId(u16::try_from(d.varint()?).map_err(|_| CodecError::BadVarint)?))
}

fn put_tuple(e: &mut Enc, t: TupleId) {
    e.put_varint(u64::from(t.0));
}

fn get_tuple(d: &mut Dec<'_>) -> Result<TupleId, CodecError> {
    Ok(TupleId(u32::try_from(d.varint()?).map_err(|_| CodecError::BadVarint)?))
}

fn get_usize(d: &mut Dec<'_>) -> Result<usize, CodecError> {
    usize::try_from(d.varint()?).map_err(|_| CodecError::BadVarint)
}

/// Encodes a [`UserInput`] body.
pub fn encode_input(e: &mut Enc, input: &UserInput) {
    e.put_varint(input.values.len() as u64);
    for (attr, value) in &input.values {
        put_attr(e, *attr);
        encode_value(e, value);
    }
}

/// Decodes a [`UserInput`] body.
pub fn decode_input(d: &mut Dec<'_>) -> Result<UserInput, CodecError> {
    let count = get_usize(d)?;
    let mut input = UserInput::empty();
    for _ in 0..count {
        let attr = get_attr(d)?;
        let value = decode_value(d)?;
        input.values.insert(attr, value);
    }
    Ok(input)
}

const REV_RETRACT_CFD: u8 = 0;
const REV_WITHDRAW_ORDER: u8 = 1;
const REV_WITHDRAW_ANSWER: u8 = 2;
const REV_REPLACE_VALUE: u8 = 3;

/// Encodes a [`Revision`] body (tag byte + variant fields).
pub fn encode_revision(e: &mut Enc, rev: &Revision) {
    match rev {
        Revision::RetractCfd { cfd } => {
            e.put_u8(REV_RETRACT_CFD);
            e.put_varint(*cfd as u64);
        }
        Revision::WithdrawOrder { attr, lo, hi } => {
            e.put_u8(REV_WITHDRAW_ORDER);
            put_attr(e, *attr);
            put_tuple(e, *lo);
            put_tuple(e, *hi);
        }
        Revision::WithdrawAnswer { attr, tuple } => {
            e.put_u8(REV_WITHDRAW_ANSWER);
            put_attr(e, *attr);
            put_tuple(e, *tuple);
        }
        Revision::ReplaceValue { tuple, attr, value } => {
            e.put_u8(REV_REPLACE_VALUE);
            put_tuple(e, *tuple);
            put_attr(e, *attr);
            encode_value(e, value);
        }
    }
}

/// Decodes a [`Revision`] body.
pub fn decode_revision(d: &mut Dec<'_>) -> Result<Revision, CodecError> {
    match d.u8()? {
        REV_RETRACT_CFD => Ok(Revision::RetractCfd { cfd: get_usize(d)? }),
        REV_WITHDRAW_ORDER => Ok(Revision::WithdrawOrder {
            attr: get_attr(d)?,
            lo: get_tuple(d)?,
            hi: get_tuple(d)?,
        }),
        REV_WITHDRAW_ANSWER => {
            Ok(Revision::WithdrawAnswer { attr: get_attr(d)?, tuple: get_tuple(d)? })
        }
        REV_REPLACE_VALUE => Ok(Revision::ReplaceValue {
            tuple: get_tuple(d)?,
            attr: get_attr(d)?,
            value: decode_value(d)?,
        }),
        tag => Err(CodecError::BadTag { what: "Revision", tag }),
    }
}

/// Encodes a [`CausalRevision`] body (stamp + revision).
pub fn encode_causal(e: &mut Enc, ev: &CausalRevision) {
    encode_stamp(e, &ev.stamp);
    encode_revision(e, &ev.rev);
}

/// Decodes a [`CausalRevision`] body.
pub fn decode_causal(d: &mut Dec<'_>) -> Result<CausalRevision, CodecError> {
    let stamp = decode_stamp(d)?;
    let rev = decode_revision(d)?;
    Ok(CausalRevision { stamp, rev })
}

fn encode_frontier(e: &mut Enc, f: &FrontierState) {
    e.put_varint(f.delivered.len() as u64);
    for &(s, n) in &f.delivered {
        encode_source(e, s);
        e.put_varint(n);
    }
    e.put_varint(f.buffered.len() as u64);
    for ev in &f.buffered {
        encode_causal(e, ev);
    }
    e.put_varint(f.seen.len() as u64);
    for &(s, hlc) in &f.seen {
        encode_source(e, s);
        encode_hlc(e, &hlc);
    }
    e.put_varint(f.writes.len() as u64);
    for (tuple, attr, log) in &f.writes {
        put_tuple(e, *tuple);
        put_attr(e, *attr);
        e.put_varint(log.len() as u64);
        for (stamp, value) in log {
            encode_stamp(e, stamp);
            encode_value(e, value);
        }
    }
    e.put_varint(f.duplicates);
    e.put_varint(f.buffered_total);
    e.put_varint(f.concurrent_conflicts);
}

fn decode_frontier(d: &mut Dec<'_>) -> Result<FrontierState, CodecError> {
    let mut f = FrontierState::default();
    for _ in 0..get_usize(d)? {
        let s = decode_source(d)?;
        let n = d.varint()?;
        f.delivered.push((s, n));
    }
    for _ in 0..get_usize(d)? {
        f.buffered.push(decode_causal(d)?);
    }
    for _ in 0..get_usize(d)? {
        let s = decode_source(d)?;
        let hlc = decode_hlc(d)?;
        f.seen.push((s, hlc));
    }
    for _ in 0..get_usize(d)? {
        let tuple = get_tuple(d)?;
        let attr = get_attr(d)?;
        let mut log = Vec::new();
        for _ in 0..get_usize(d)? {
            let stamp = decode_stamp(d)?;
            let value = decode_value(d)?;
            log.push((stamp, value));
        }
        f.writes.push((tuple, attr, log));
    }
    f.duplicates = d.varint()?;
    f.buffered_total = d.varint()?;
    f.concurrent_conflicts = d.varint()?;
    Ok(f)
}

fn encode_telemetry(e: &mut Enc, t: &RevisionTelemetry) {
    e.put_varint(t.events as u64);
    e.put_varint(t.retracted_groups as u64);
    e.put_varint(t.invalidated as u64);
    e.put_varint(t.reemitted_clauses as u64);
    e.put_varint(t.duplicates_dropped as u64);
    e.put_varint(t.buffered as u64);
    e.put_varint(t.quarantined as u64);
    e.put_varint(t.reopened as u64);
    e.put_varint(t.quarantine_evicted as u64);
    e.put_varint(t.batches as u64);
    e.put_varint(t.events_coalesced as u64);
    e.put_varint(t.cone_union as u64);
    e.put_varint(t.replays_saved as u64);
}

fn decode_telemetry(d: &mut Dec<'_>) -> Result<RevisionTelemetry, CodecError> {
    Ok(RevisionTelemetry {
        events: get_usize(d)?,
        retracted_groups: get_usize(d)?,
        invalidated: get_usize(d)?,
        reemitted_clauses: get_usize(d)?,
        duplicates_dropped: get_usize(d)?,
        buffered: get_usize(d)?,
        quarantined: get_usize(d)?,
        reopened: get_usize(d)?,
        quarantine_evicted: get_usize(d)?,
        batches: get_usize(d)?,
        events_coalesced: get_usize(d)?,
        cone_union: get_usize(d)?,
        replays_saved: get_usize(d)?,
    })
}

const ERR_UNKNOWN_CFD: u8 = 0;
const ERR_STALE_CFD: u8 = 1;
const ERR_UNKNOWN_ATTR: u8 = 2;
const ERR_UNKNOWN_TUPLE: u8 = 3;
const ERR_UNKNOWN_ORDER: u8 = 4;

/// Encodes a [`RevisionError`] body (tag byte + variant fields).
pub fn encode_revision_error(e: &mut Enc, err: &RevisionError) {
    match err {
        RevisionError::UnknownCfd { cfd, gamma_len } => {
            e.put_u8(ERR_UNKNOWN_CFD);
            e.put_varint(*cfd as u64);
            e.put_varint(*gamma_len as u64);
        }
        RevisionError::StaleCfd { cfd } => {
            e.put_u8(ERR_STALE_CFD);
            e.put_varint(*cfd as u64);
        }
        RevisionError::UnknownAttr { attr, arity } => {
            e.put_u8(ERR_UNKNOWN_ATTR);
            put_attr(e, *attr);
            e.put_varint(*arity as u64);
        }
        RevisionError::UnknownTuple { tuple, len } => {
            e.put_u8(ERR_UNKNOWN_TUPLE);
            put_tuple(e, *tuple);
            e.put_varint(*len as u64);
        }
        RevisionError::UnknownOrder { attr, lo, hi } => {
            e.put_u8(ERR_UNKNOWN_ORDER);
            put_attr(e, *attr);
            put_tuple(e, *lo);
            put_tuple(e, *hi);
        }
    }
}

/// Decodes a [`RevisionError`] body.
pub fn decode_revision_error(d: &mut Dec<'_>) -> Result<RevisionError, CodecError> {
    match d.u8()? {
        ERR_UNKNOWN_CFD => {
            Ok(RevisionError::UnknownCfd { cfd: get_usize(d)?, gamma_len: get_usize(d)? })
        }
        ERR_STALE_CFD => Ok(RevisionError::StaleCfd { cfd: get_usize(d)? }),
        ERR_UNKNOWN_ATTR => {
            Ok(RevisionError::UnknownAttr { attr: get_attr(d)?, arity: get_usize(d)? })
        }
        ERR_UNKNOWN_TUPLE => {
            Ok(RevisionError::UnknownTuple { tuple: get_tuple(d)?, len: get_usize(d)? })
        }
        ERR_UNKNOWN_ORDER => Ok(RevisionError::UnknownOrder {
            attr: get_attr(d)?,
            lo: get_tuple(d)?,
            hi: get_tuple(d)?,
        }),
        tag => Err(CodecError::BadTag { what: "RevisionError", tag }),
    }
}

fn encode_competing(e: &mut Enc, c: &CompetingCell) {
    put_tuple(e, c.tuple);
    put_attr(e, c.attr);
    e.put_u8(u8::from(c.reopened));
    e.put_varint(c.candidates.len() as u64);
    for (source, value) in &c.candidates {
        encode_source(e, *source);
        encode_value(e, value);
    }
}

fn decode_competing(d: &mut Dec<'_>) -> Result<CompetingCell, CodecError> {
    let tuple = get_tuple(d)?;
    let attr = get_attr(d)?;
    let reopened = match d.u8()? {
        0 => false,
        1 => true,
        tag => return Err(CodecError::BadTag { what: "bool", tag }),
    };
    let mut candidates = Vec::new();
    for _ in 0..get_usize(d)? {
        let source = decode_source(d)?;
        let value = decode_value(d)?;
        candidates.push((source, value));
    }
    Ok(CompetingCell { tuple, attr, reopened, candidates })
}

/// Encodes a [`SessionState`] body.
pub fn encode_session_state(e: &mut Enc, s: &SessionState) {
    e.put_varint(s.tuples.len() as u64);
    for row in &s.tuples {
        e.put_varint(row.len() as u64);
        for v in row {
            encode_value(e, v);
        }
    }
    e.put_varint(s.orders.len() as u64);
    for &(attr, lo, hi) in &s.orders {
        put_attr(e, attr);
        put_tuple(e, lo);
        put_tuple(e, hi);
    }
    e.put_varint(s.retired_cfds.len() as u64);
    for &cfd in &s.retired_cfds {
        e.put_varint(cfd as u64);
    }
    e.put_varint(s.answers.len() as u64);
    for a in &s.answers {
        put_attr(e, a.attr);
        put_tuple(e, a.tuple);
        encode_value(e, &a.value);
        encode_vclock(e, &a.deps);
    }
    encode_frontier(e, &s.frontier);
    encode_telemetry(e, &s.telemetry);
    e.put_varint(s.competing.len() as u64);
    for cell in &s.competing {
        encode_competing(e, cell);
    }
    e.put_varint(s.quarantine.len() as u64);
    for (rev, err) in &s.quarantine {
        encode_revision(e, rev);
        encode_revision_error(e, err);
    }
    e.put_varint(s.quarantine_cap as u64);
    e.put_varint(s.epoch.0);
}

/// Decodes a [`SessionState`] body.
pub fn decode_session_state(d: &mut Dec<'_>) -> Result<SessionState, CodecError> {
    let mut s = SessionState::default();
    for _ in 0..get_usize(d)? {
        let mut row = Vec::new();
        for _ in 0..get_usize(d)? {
            row.push(decode_value(d)?);
        }
        s.tuples.push(row);
    }
    for _ in 0..get_usize(d)? {
        let attr = get_attr(d)?;
        let lo = get_tuple(d)?;
        let hi = get_tuple(d)?;
        s.orders.push((attr, lo, hi));
    }
    for _ in 0..get_usize(d)? {
        s.retired_cfds.push(get_usize(d)?);
    }
    for _ in 0..get_usize(d)? {
        let attr = get_attr(d)?;
        let tuple = get_tuple(d)?;
        let value = decode_value(d)?;
        let deps = decode_vclock(d)?;
        s.answers.push(AnswerState { attr, tuple, value, deps });
    }
    s.frontier = decode_frontier(d)?;
    s.telemetry = decode_telemetry(d)?;
    for _ in 0..get_usize(d)? {
        s.competing.push(decode_competing(d)?);
    }
    for _ in 0..get_usize(d)? {
        let rev = decode_revision(d)?;
        let err = decode_revision_error(d)?;
        s.quarantine.push((rev, err));
    }
    s.quarantine_cap = get_usize(d)?;
    s.epoch = Epoch(d.varint()?);
    Ok(s)
}

impl LogRecord {
    /// Encodes the record as a versioned frame payload
    /// (`[version][tag][body]`).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.put_u8(FORMAT_VERSION);
        match self {
            LogRecord::Input(input) => {
                e.put_u8(TAG_INPUT);
                encode_input(&mut e, input);
            }
            LogRecord::Causal(ev) => {
                e.put_u8(TAG_CAUSAL);
                encode_causal(&mut e, ev);
            }
            LogRecord::Revision(rev) => {
                e.put_u8(TAG_REVISION);
                encode_revision(&mut e, rev);
            }
            LogRecord::BatchMark { epoch, events } => {
                e.put_u8(TAG_BATCH);
                e.put_varint(*epoch);
                e.put_varint(*events);
            }
            LogRecord::Snapshot(snap) => {
                e.put_u8(TAG_SNAPSHOT);
                e.put_varint(snap.events_covered);
                encode_session_state(&mut e, &snap.state);
            }
        }
        e.into_bytes()
    }

    /// Decodes one frame payload. Rejects unknown versions and tags, short
    /// payloads, and trailing bytes with typed errors — never panics.
    pub fn decode(payload: &[u8]) -> Result<LogRecord, CodecError> {
        let mut d = Dec::new(payload);
        let version = d.u8()?;
        if version != FORMAT_VERSION {
            return Err(CodecError::UnsupportedVersion { what: "LogRecord", version });
        }
        let rec = match d.u8()? {
            TAG_INPUT => LogRecord::Input(decode_input(&mut d)?),
            TAG_CAUSAL => LogRecord::Causal(decode_causal(&mut d)?),
            TAG_REVISION => LogRecord::Revision(decode_revision(&mut d)?),
            TAG_BATCH => {
                let epoch = d.varint()?;
                let events = d.varint()?;
                LogRecord::BatchMark { epoch, events }
            }
            TAG_SNAPSHOT => {
                let events_covered = d.varint()?;
                let state = decode_session_state(&mut d)?;
                LogRecord::Snapshot(Box::new(SnapshotRecord { events_covered, state }))
            }
            tag => return Err(CodecError::BadTag { what: "LogRecord", tag }),
        };
        d.finish()?;
        Ok(rec)
    }

    /// True iff the record is an event (input/revision) — not a snapshot
    /// and not a batch marker.
    pub fn is_event(&self) -> bool {
        !matches!(self, LogRecord::Snapshot(_) | LogRecord::BatchMark { .. })
    }
}

/// Scans raw log bytes into decoded records. Returns the surviving prefix:
/// `(records, valid_len, error)` where `valid_len` is the byte offset just
/// past the last frame that passed both its checksum *and* record decode —
/// the truncation point recovery restores the log to — and `error` is the
/// corruption that stopped the scan (`None` on a clean log).
pub fn decode_log(bytes: &[u8]) -> (Vec<LogRecord>, usize, Option<CodecError>) {
    let (records, valid_len, error) = decode_log_offsets(bytes);
    (records.into_iter().map(|(rec, _)| rec).collect(), valid_len, error)
}

/// Like [`decode_log`], but each record rides with the byte offset just
/// past its frame — the log length to truncate to in order to keep exactly
/// that prefix. Recovery uses the offsets to cut an unterminated trailing
/// batch run back to its batch boundary.
pub fn decode_log_offsets(bytes: &[u8]) -> (Vec<(LogRecord, usize)>, usize, Option<CodecError>) {
    let mut scanner = FrameScanner::new(bytes);
    let mut records = Vec::new();
    let mut valid_len = 0;
    loop {
        match scanner.next() {
            Ok(Some(payload)) => match LogRecord::decode(payload) {
                Ok(rec) => {
                    valid_len = scanner.valid_len();
                    records.push((rec, valid_len));
                }
                Err(e) => return (records, valid_len, Some(e)),
            },
            Ok(None) => return (records, valid_len, None),
            Err(e) => return (records, valid_len, Some(e)),
        }
    }
}

/// One step of a batch-boundary-respecting replay of recovered records.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplayStep {
    /// One round of user answers.
    Input(UserInput),
    /// A marker-committed run of causal events, replayed as one
    /// [`ingest_causal`](cr_core::ingest::ResolutionSession::ingest_causal)
    /// batch.
    CausalBatch(Vec<CausalRevision>),
    /// A marker-committed run of plain revisions, replayed as one
    /// [`absorb_revision_batch`](cr_core::ingest::ResolutionSession::absorb_revision_batch)
    /// batch.
    RevisionBatch(Vec<Revision>),
    /// A snapshot record (derived state; replay skips it, rehydration may
    /// restore from it).
    Snapshot(Box<SnapshotRecord>),
}

/// A batch-boundary-respecting replay of recovered records: which steps to
/// feed the engine, how many leading records they cover, and how many
/// trailing events were dropped as an uncommitted (marker-less) batch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReplayPlan {
    /// The steps to replay, in log order.
    pub steps: Vec<ReplayStep>,
    /// Records (events, markers and snapshots) fully represented by
    /// `steps` — always a prefix of the input. Recovery truncates the log
    /// to the byte offset of record `used_records - 1`.
    pub used_records: usize,
    /// Trailing event records dropped because no [`LogRecord::BatchMark`]
    /// committed them — a crash landed mid-batch.
    pub dropped_events: usize,
}

/// Groups recovered `records` into whole-batch replay steps. A
/// [`LogRecord::BatchMark`] commits the run of `Causal`/`Revision` records
/// since the previous non-event record as one batch step; an unterminated
/// run at the end of the log is an uncommitted batch and is **dropped**
/// (reported in [`ReplayPlan::dropped_events`]). Defensively, a run that
/// changes event type mid-way (a hand-built or damaged log; the store
/// writer never interleaves) is split per type, and a run implicitly
/// terminated by an `Input`/`Snapshot` record is committed as written.
///
/// Both [`rehydrate`](crate::SessionStore) and
/// [`reference_of`](crate::reference_of) replay through this one planner,
/// so the recovery differential compares like against like.
pub fn plan_replay(records: &[LogRecord]) -> ReplayPlan {
    // Runs flushed by a type split stay *staged* until a committing record
    // (marker, input or snapshot) arrives: everything after the last
    // committing record is one uncommitted suffix, dropped as a unit, so a
    // second recovery of the truncated log reaches the same state.
    fn flush(staged: &mut Vec<ReplayStep>, causal: &mut Vec<CausalRevision>, revs: &mut Vec<Revision>) {
        if !causal.is_empty() {
            staged.push(ReplayStep::CausalBatch(std::mem::take(causal)));
        }
        if !revs.is_empty() {
            staged.push(ReplayStep::RevisionBatch(std::mem::take(revs)));
        }
    }
    let mut plan = ReplayPlan::default();
    let mut staged: Vec<ReplayStep> = Vec::new();
    let mut causal: Vec<CausalRevision> = Vec::new();
    let mut revs: Vec<Revision> = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        match rec {
            LogRecord::Causal(ev) => {
                if !revs.is_empty() {
                    flush(&mut staged, &mut causal, &mut revs);
                }
                causal.push(ev.clone());
            }
            LogRecord::Revision(rev) => {
                if !causal.is_empty() {
                    flush(&mut staged, &mut causal, &mut revs);
                }
                revs.push(rev.clone());
            }
            LogRecord::BatchMark { .. } => {
                flush(&mut staged, &mut causal, &mut revs);
                plan.steps.append(&mut staged);
                plan.used_records = i + 1;
            }
            LogRecord::Input(input) => {
                flush(&mut staged, &mut causal, &mut revs);
                plan.steps.append(&mut staged);
                plan.steps.push(ReplayStep::Input(input.clone()));
                plan.used_records = i + 1;
            }
            LogRecord::Snapshot(snap) => {
                flush(&mut staged, &mut causal, &mut revs);
                plan.steps.append(&mut staged);
                plan.steps.push(ReplayStep::Snapshot(snap.clone()));
                plan.used_records = i + 1;
            }
        }
    }
    flush(&mut staged, &mut causal, &mut revs);
    plan.dropped_events = staged.iter().map(ReplayStep::event_count).sum();
    plan
}

impl ReplayStep {
    /// Event records the step covers (snapshots cover none).
    pub fn event_count(&self) -> usize {
        match self {
            ReplayStep::Input(_) => 1,
            ReplayStep::CausalBatch(batch) => batch.len(),
            ReplayStep::RevisionBatch(batch) => batch.len(),
            ReplayStep::Snapshot(_) => 0,
        }
    }
}
