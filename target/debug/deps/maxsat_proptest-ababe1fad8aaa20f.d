/root/repo/target/debug/deps/maxsat_proptest-ababe1fad8aaa20f.d: crates/cr-maxsat/tests/maxsat_proptest.rs Cargo.toml

/root/repo/target/debug/deps/libmaxsat_proptest-ababe1fad8aaa20f.rmeta: crates/cr-maxsat/tests/maxsat_proptest.rs Cargo.toml

crates/cr-maxsat/tests/maxsat_proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
