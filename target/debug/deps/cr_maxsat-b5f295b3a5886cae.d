/root/repo/target/debug/deps/cr_maxsat-b5f295b3a5886cae.d: crates/cr-maxsat/src/lib.rs crates/cr-maxsat/src/exact.rs crates/cr-maxsat/src/instance.rs crates/cr-maxsat/src/walksat.rs

/root/repo/target/debug/deps/libcr_maxsat-b5f295b3a5886cae.rlib: crates/cr-maxsat/src/lib.rs crates/cr-maxsat/src/exact.rs crates/cr-maxsat/src/instance.rs crates/cr-maxsat/src/walksat.rs

/root/repo/target/debug/deps/libcr_maxsat-b5f295b3a5886cae.rmeta: crates/cr-maxsat/src/lib.rs crates/cr-maxsat/src/exact.rs crates/cr-maxsat/src/instance.rs crates/cr-maxsat/src/walksat.rs

crates/cr-maxsat/src/lib.rs:
crates/cr-maxsat/src/exact.rs:
crates/cr-maxsat/src/instance.rs:
crates/cr-maxsat/src/walksat.rs:
