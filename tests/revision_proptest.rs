//! Property tests for push-based correction ingestion: randomized revision
//! timelines (CFD retractions, order withdrawals, value replacements —
//! shared, fresh and null — and user-answer withdrawals) interleaved with
//! ordinary oracle answers must keep the revision-replayed engine exactly
//! equivalent to a from-scratch re-resolution of the post-revision
//! specification, with sane cone telemetry throughout.

use conflict_resolution::core::framework::{GroundTruthOracle, ResolutionConfig, Resolver};
use conflict_resolution::core::ingest::resolve_with_revisions_checked;
use conflict_resolution::data::gen::{
    revision_timeline, scenario_from_raw, RevisionTimelineConfig, Scenario,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Revision-replay ≡ from-scratch re-resolution on the post-revision
    /// spec, checked after every revision batch, across randomized
    /// scenarios × randomized timelines. Also asserts telemetry sanity:
    /// cones only exist when events were applied, and the guarded engine
    /// never rebuilds.
    #[test]
    fn random_revision_timelines_replay_equals_scratch(
        seed in 0u64..10_000,
        tuples in 2usize..16,
        domain in 2usize..10,
        density in 0u32..100,
        events in 1usize..7,
        new_values_sel in 0u32..2,
        withdraw_sel in 0u32..2,
    ) {
        let Scenario { spec, truth } = scenario_from_raw(seed, tuples, domain, density, new_values_sel == 1);
        let mut source = revision_timeline(&spec, &RevisionTimelineConfig {
            seed: seed.wrapping_mul(97).wrapping_add(13),
            events,
            rounds: 4,
            withdraw_answer_rounds: if withdraw_sel == 1 { vec![1, 3] } else { vec![] },
            ..Default::default()
        });
        let mut oracle = GroundTruthOracle::with_cap(truth.clone(), 1);
        let config = ResolutionConfig::default();
        let checked = resolve_with_revisions_checked(&config, &spec, &mut oracle, &mut source)
            .map_err(|e| TestCaseError::fail(format!("replay diverged from scratch: {e}")))?;

        // Telemetry sanity: cone literals and retracted groups exist only
        // when events were actually absorbed; every check ran.
        prop_assert!(checked.checks >= 1);
        if checked.revisions.events == 0 {
            prop_assert_eq!(checked.revisions.retracted_groups, 0);
            prop_assert_eq!(checked.revisions.invalidated, 0);
            prop_assert_eq!(checked.revisions.reemitted_clauses, 0);
        }
        prop_assert!(checked.revisions.invalidated == 0 || checked.revisions.events > 0);
    }

    /// The unchecked production path (`Resolver::resolve_with_revisions`)
    /// agrees with the checked harness outcome on the same scripted
    /// timeline, never rebuilds, and stamps per-round revision telemetry
    /// consistent with the totals.
    #[test]
    fn production_revision_path_matches_checked_and_never_rebuilds(
        seed in 0u64..10_000,
        tuples in 2usize..14,
        domain in 2usize..10,
        density in 0u32..100,
        events in 1usize..6,
    ) {
        let Scenario { spec, truth } = scenario_from_raw(seed, tuples, domain, density, false);
        let timeline = |salt: u64| revision_timeline(&spec, &RevisionTimelineConfig {
            seed: seed.wrapping_mul(193).wrapping_add(salt),
            events,
            rounds: 3,
            ..Default::default()
        });
        let config = ResolutionConfig::default();

        let mut oracle = GroundTruthOracle::with_cap(truth.clone(), 1);
        let mut source = timeline(5);
        let outcome = Resolver::new(config).resolve_with_revisions(&spec, &mut oracle, &mut source);
        prop_assert_eq!(outcome.rebuilds, 0, "revisions must never rebuild the engine");

        let mut oracle2 = GroundTruthOracle::with_cap(truth.clone(), 1);
        let mut source2 = timeline(5);
        let checked = resolve_with_revisions_checked(&config, &spec, &mut oracle2, &mut source2)
            .map_err(|e| TestCaseError::fail(format!("replay diverged from scratch: {e}")))?;
        prop_assert_eq!(outcome.valid, checked.valid);
        prop_assert_eq!(outcome.complete, checked.complete);
        prop_assert_eq!(outcome.resolved, checked.resolved);
        prop_assert_eq!(outcome.interactions, checked.interactions);
        prop_assert_eq!(outcome.revisions.events, checked.revisions.events);

        // Per-round stamps sum to the totals.
        let round_events: usize = outcome.rounds.iter().map(|r| r.revision_events).sum();
        let round_cones: usize = outcome.rounds.iter().map(|r| r.revision_invalidated).sum();
        prop_assert_eq!(round_events, outcome.revisions.events);
        prop_assert_eq!(round_cones, outcome.revisions.invalidated);
    }
}
