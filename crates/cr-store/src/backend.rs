//! Storage backends: where the per-session event logs live.
//!
//! A backend is a map from [`SessionId`] to one append-only byte log. The
//! log's *content* (checksummed frames, record encodings) is entirely the
//! concern of the layers above — a backend only appends, reads, truncates
//! and syncs opaque bytes. Two implementations ship: [`MemoryBackend`]
//! (tests, soak harnesses) and [`FileBackend`] (append-only segment files
//! on disk). The fault-injection wrapper in [`crate::fault`] composes over
//! any backend.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::store::StoreError;

/// Identifies one durable session within a backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{:016x}", self.0)
    }
}

/// An append-only per-session byte log.
///
/// Semantics every implementation must provide:
///
/// * [`append`](StorageBackend::append) atomically extends the log of `id`
///   (creating it if absent) — but the bytes are only *guaranteed* durable
///   after a subsequent [`sync`](StorageBackend::sync);
/// * [`read_log`](StorageBackend::read_log) returns the full log;
///   a session that was never appended to reads as an empty log;
/// * [`truncate`](StorageBackend::truncate) discards everything past the
///   given byte length (recovery uses it to drop a corrupt tail);
/// * [`remove`](StorageBackend::remove) deletes the session's log entirely
///   and is a no-op for unknown sessions.
pub trait StorageBackend {
    /// Appends `frame` to the end of `id`'s log.
    fn append(&mut self, id: SessionId, frame: &[u8]) -> Result<(), StoreError>;

    /// Reads the entire log of `id` (empty if never written).
    fn read_log(&self, id: SessionId) -> Result<Vec<u8>, StoreError>;

    /// Truncates `id`'s log to exactly `len` bytes. `len` past the current
    /// end is an error.
    fn truncate(&mut self, id: SessionId, len: u64) -> Result<(), StoreError>;

    /// Makes all previously appended bytes of `id` durable.
    fn sync(&mut self, id: SessionId) -> Result<(), StoreError>;

    /// Lists every session with a (possibly empty) log, ascending.
    fn sessions(&self) -> Result<Vec<SessionId>, StoreError>;

    /// Deletes `id`'s log. No-op when absent.
    fn remove(&mut self, id: SessionId) -> Result<(), StoreError>;

    /// Current length of `id`'s log in bytes (0 if never written).
    fn log_len(&self, id: SessionId) -> Result<u64, StoreError> {
        Ok(self.read_log(id)?.len() as u64)
    }
}

/// In-memory backend: one `Vec<u8>` per session. `sync` is a no-op; the
/// fault wrapper supplies the durability semantics tests care about.
#[derive(Clone, Debug, Default)]
pub struct MemoryBackend {
    logs: BTreeMap<u64, Vec<u8>>,
}

impl MemoryBackend {
    /// Creates an empty backend.
    pub fn new() -> Self {
        MemoryBackend::default()
    }
}

impl StorageBackend for MemoryBackend {
    fn append(&mut self, id: SessionId, frame: &[u8]) -> Result<(), StoreError> {
        self.logs.entry(id.0).or_default().extend_from_slice(frame);
        Ok(())
    }

    fn read_log(&self, id: SessionId) -> Result<Vec<u8>, StoreError> {
        Ok(self.logs.get(&id.0).cloned().unwrap_or_default())
    }

    fn truncate(&mut self, id: SessionId, len: u64) -> Result<(), StoreError> {
        let log = self.logs.entry(id.0).or_default();
        let len = usize::try_from(len)
            .map_err(|_| StoreError::Io(format!("truncate length {len} overflows usize")))?;
        if len > log.len() {
            return Err(StoreError::Io(format!(
                "truncate({id}, {len}) past end of log ({} bytes)",
                log.len()
            )));
        }
        log.truncate(len);
        Ok(())
    }

    fn sync(&mut self, _id: SessionId) -> Result<(), StoreError> {
        Ok(())
    }

    fn sessions(&self) -> Result<Vec<SessionId>, StoreError> {
        Ok(self.logs.keys().map(|&k| SessionId(k)).collect())
    }

    fn remove(&mut self, id: SessionId) -> Result<(), StoreError> {
        self.logs.remove(&id.0);
        Ok(())
    }

    fn log_len(&self, id: SessionId) -> Result<u64, StoreError> {
        Ok(self.logs.get(&id.0).map_or(0, |l| l.len() as u64))
    }
}

/// Default segment roll size for [`FileBackend`] (4 MiB).
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;

/// File-system backend: each session is a directory of numbered append-only
/// segment files (`seg-<n>.log`). A segment rolls once it reaches the
/// configured size; an appended frame is never split across segments, so a
/// segment boundary is always a frame boundary. `sync` fsyncs the last
/// segment (earlier segments are sealed and were synced when rolled).
#[derive(Debug)]
pub struct FileBackend {
    root: PathBuf,
    segment_bytes: u64,
}

fn io_err(ctx: &str, path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io(format!("{ctx} {}: {e}", path.display()))
}

impl FileBackend {
    /// Opens (creating if needed) a backend rooted at `root` with the
    /// default segment size.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        FileBackend::with_segment_bytes(root, DEFAULT_SEGMENT_BYTES)
    }

    /// Opens a backend with an explicit segment roll size (min 1 byte; a
    /// segment always accepts at least one frame regardless of its size).
    pub fn with_segment_bytes(
        root: impl Into<PathBuf>,
        segment_bytes: u64,
    ) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| io_err("create backend root", &root, e))?;
        Ok(FileBackend { root, segment_bytes: segment_bytes.max(1) })
    }

    /// The backend's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn session_dir(&self, id: SessionId) -> PathBuf {
        self.root.join(format!("session-{:016x}", id.0))
    }

    fn segment_path(dir: &Path, index: u64) -> PathBuf {
        dir.join(format!("seg-{index:08}.log"))
    }

    /// Sorted `(index, path, len)` of the session's segment files.
    fn segments(&self, id: SessionId) -> Result<Vec<(u64, PathBuf, u64)>, StoreError> {
        let dir = self.session_dir(id);
        let entries = match fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err("read session dir", &dir, e)),
        };
        let mut segs = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read session dir", &dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(index) = name
                .strip_prefix("seg-")
                .and_then(|rest| rest.strip_suffix(".log"))
                .and_then(|digits| digits.parse::<u64>().ok())
            else {
                continue;
            };
            let path = entry.path();
            let len = entry
                .metadata()
                .map_err(|e| io_err("stat segment", &path, e))?
                .len();
            segs.push((index, path, len));
        }
        segs.sort_unstable_by_key(|&(index, _, _)| index);
        Ok(segs)
    }
}

impl StorageBackend for FileBackend {
    fn append(&mut self, id: SessionId, frame: &[u8]) -> Result<(), StoreError> {
        let dir = self.session_dir(id);
        fs::create_dir_all(&dir).map_err(|e| io_err("create session dir", &dir, e))?;
        let segs = self.segments(id)?;
        // Roll to a fresh segment when the last one has reached the limit;
        // never split a frame, so an under-limit segment takes the whole
        // frame even if that overshoots.
        let path = match segs.last() {
            Some(&(index, ref path, len)) if len < self.segment_bytes => {
                let _ = (index, len);
                path.clone()
            }
            Some(&(index, ref last, _)) => {
                // Seal the previous segment before rolling past it.
                File::open(last)
                    .and_then(|f| f.sync_all())
                    .map_err(|e| io_err("seal segment", last, e))?;
                FileBackend::segment_path(&dir, index + 1)
            }
            None => FileBackend::segment_path(&dir, 0),
        };
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open segment", &path, e))?;
        file.write_all(frame).map_err(|e| io_err("append segment", &path, e))?;
        Ok(())
    }

    fn read_log(&self, id: SessionId) -> Result<Vec<u8>, StoreError> {
        let mut log = Vec::new();
        for (_, path, _) in self.segments(id)? {
            let bytes = fs::read(&path).map_err(|e| io_err("read segment", &path, e))?;
            log.extend_from_slice(&bytes);
        }
        Ok(log)
    }

    fn truncate(&mut self, id: SessionId, len: u64) -> Result<(), StoreError> {
        let segs = self.segments(id)?;
        let total: u64 = segs.iter().map(|&(_, _, l)| l).sum();
        if len > total {
            return Err(StoreError::Io(format!(
                "truncate({id}, {len}) past end of log ({total} bytes)"
            )));
        }
        let mut offset = 0u64;
        for (_, path, seg_len) in segs {
            if offset >= len {
                // Entire segment is past the cut.
                fs::remove_file(&path).map_err(|e| io_err("remove segment", &path, e))?;
            } else if offset + seg_len > len {
                let keep = len - offset;
                let file = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| io_err("open segment", &path, e))?;
                file.set_len(keep).map_err(|e| io_err("truncate segment", &path, e))?;
                file.sync_all().map_err(|e| io_err("sync segment", &path, e))?;
            }
            offset += seg_len;
        }
        Ok(())
    }

    fn sync(&mut self, id: SessionId) -> Result<(), StoreError> {
        let segs = self.segments(id)?;
        if let Some((_, path, _)) = segs.last() {
            File::open(path)
                .and_then(|f| f.sync_all())
                .map_err(|e| io_err("sync segment", path, e))?;
        }
        let dir = self.session_dir(id);
        if dir.exists() {
            File::open(&dir)
                .and_then(|f| f.sync_all())
                .map_err(|e| io_err("sync session dir", &dir, e))?;
        }
        Ok(())
    }

    fn sessions(&self) -> Result<Vec<SessionId>, StoreError> {
        let entries =
            fs::read_dir(&self.root).map_err(|e| io_err("read backend root", &self.root, e))?;
        let mut ids = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read backend root", &self.root, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(hex) = name.strip_prefix("session-") {
                if let Ok(id) = u64::from_str_radix(hex, 16) {
                    ids.push(SessionId(id));
                }
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    fn remove(&mut self, id: SessionId) -> Result<(), StoreError> {
        let dir = self.session_dir(id);
        match fs::remove_dir_all(&dir) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove session dir", &dir, e)),
        }
    }

    fn log_len(&self, id: SessionId) -> Result<u64, StoreError> {
        Ok(self.segments(id)?.iter().map(|&(_, _, l)| l).sum())
    }
}
