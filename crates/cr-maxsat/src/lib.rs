//! Partial MaxSAT: maximise the weight of satisfied *soft* clauses subject
//! to all *hard* clauses holding.
//!
//! The paper's `GetSug` procedure (Section V-C) uses a MaxSAT solver \[24\]
//! (WalkSAT) to find a maximum subset of clique-selected derivation rules
//! that has no conflicts with the specification `Se`. This crate supplies:
//!
//! * [`walksat`] — a WalkSAT/SKC-style stochastic local search that treats
//!   hard clauses as infinitely heavy and tracks the best *feasible*
//!   assignment seen, and
//! * [`exact`] — a complete solver for unit-weight instances that wraps the
//!   CDCL solver from `cr-sat` with a sequential-counter cardinality
//!   encoding, searching downward on the number of satisfied soft clauses.
//!
//! [`solve`] picks exact for small instances and local search otherwise.

pub mod exact;
pub mod instance;
pub mod walksat;

pub use instance::{MaxSatInstance, MaxSatResult};

/// Strategy selection for [`solve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaxSatStrategy {
    /// Complete search (unit weights only).
    Exact,
    /// WalkSAT local search with the given flip budget.
    LocalSearch {
        /// Maximum variable flips.
        max_flips: u64,
        /// RNG seed.
        seed: u64,
    },
    /// Exact when `soft count ≤ exact_threshold` and weights are unit,
    /// local search otherwise (default).
    Auto {
        /// Largest soft-clause count still solved exactly.
        exact_threshold: usize,
    },
}

impl Default for MaxSatStrategy {
    fn default() -> Self {
        MaxSatStrategy::Auto { exact_threshold: 96 }
    }
}

/// Solves a partial MaxSAT instance. Returns `None` when the hard clauses
/// alone are unsatisfiable.
pub fn solve(instance: &MaxSatInstance<'_>, strategy: MaxSatStrategy) -> Option<MaxSatResult> {
    match strategy {
        MaxSatStrategy::Exact => exact::solve_exact(instance),
        MaxSatStrategy::LocalSearch { max_flips, seed } => {
            walksat::solve_walksat(instance, max_flips, seed)
        }
        MaxSatStrategy::Auto { exact_threshold } => {
            if instance.soft_len() <= exact_threshold && instance.has_unit_weights() {
                exact::solve_exact(instance)
            } else {
                walksat::solve_walksat(instance, 200_000, 0x5EED)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_sat::Var;

    /// Hard: x0 ⊕ x1 (as CNF); soft: x0, x1, ¬x0. Optimum satisfies 2 of 3.
    fn small_instance() -> MaxSatInstance<'static> {
        let mut inst = MaxSatInstance::new(2);
        inst.add_hard([Var(0).positive(), Var(1).positive()]);
        inst.add_hard([Var(0).negative(), Var(1).negative()]);
        inst.add_soft([Var(0).positive()], 1);
        inst.add_soft([Var(1).positive()], 1);
        inst.add_soft([Var(0).negative()], 1);
        inst
    }

    #[test]
    fn auto_exact_and_walksat_agree_on_optimum() {
        let inst = small_instance();
        for strat in [
            MaxSatStrategy::Exact,
            MaxSatStrategy::LocalSearch { max_flips: 10_000, seed: 1 },
            MaxSatStrategy::default(),
        ] {
            let res = solve(&inst, strat).expect("hard clauses satisfiable");
            assert_eq!(res.total_weight, 2, "{strat:?}");
            assert!(inst.hard_satisfied(&res.assignment));
        }
    }

    #[test]
    fn infeasible_hard_clauses_return_none() {
        let mut inst = MaxSatInstance::new(1);
        inst.add_hard([Var(0).positive()]);
        inst.add_hard([Var(0).negative()]);
        inst.add_soft([Var(0).positive()], 1);
        assert!(solve(&inst, MaxSatStrategy::default()).is_none());
        assert!(solve(&inst, MaxSatStrategy::Exact).is_none());
        assert!(
            solve(&inst, MaxSatStrategy::LocalSearch { max_flips: 1000, seed: 3 }).is_none()
        );
    }

    #[test]
    fn no_soft_clauses_is_plain_sat() {
        let mut inst = MaxSatInstance::new(1);
        inst.add_hard([Var(0).positive()]);
        let res = solve(&inst, MaxSatStrategy::default()).unwrap();
        assert_eq!(res.total_weight, 0);
        assert!(res.assignment[0]);
    }
}
