//! Benchmarks the incremental resolution engine against the from-scratch
//! Fig. 4 loop on the multi-round end-to-end scenario and writes a
//! machine-readable `BENCH_<n>.json` report.
//!
//! The workload reproduces the interactive setting of the paper's Fig. 8:
//! entities at the seed bin sizes, a simulated user answering one attribute
//! per round, and a 0.6 constraint fraction (the paper's |Σ|,|Γ| sweeps) so
//! that entities genuinely need several interaction rounds — the regime the
//! incremental engine targets. A synthetic *wide-domain* workload
//! (`cr_data::gen`, conflict density 1.0) isolates the `O(n³)` transitivity
//! cost that lazy axiom instantiation removes.
//!
//! Every dataset is resolved on four paths — (lazy | eager axioms) ×
//! (incremental | scratch) — and the run **fails loudly** on any outcome
//! divergence, nonzero engine rebuild count, or (lazy paths) zero recorded
//! axiom telemetry where injection was expected. `--smoke` runs exactly
//! those checks in CI. The JSON report additionally records round-0 encode
//! clause counts and wall time per axiom mode plus the injected-axiom
//! counts of the lazy resolutions.
//!
//! Three further invariants are enforced alongside the outcome checks:
//! **compile-once** — every workload's constraint program is compiled at
//! setup (once per dataset, or once per heterogeneous scenario) and the
//! global [`cr_core::compile_count`] must not move during any resolution
//! or encode measurement — **live retraction telemetry** — the new-value
//! workloads must report provenance-scoped retraction replays, with
//! per-round invalidation costs recorded in the report — and **live
//! revision ingestion**: the `ingest` workload streams upstream
//! corrections (CFD retractions, order withdrawals, value revisions) into
//! resolutions mid-flight, its revision replay is proven ≡ a from-scratch
//! re-resolution of the post-revision specification
//! (`cr_core::ingest::resolve_with_revisions_checked`), and its retraction
//! cones must be **non-empty** (`revision invalidated > 0`) — the
//! partial-invalidation path the interactive workloads cannot reach.
//! Revision/retraction telemetry is reported uniformly for *every*
//! workload, so a dead counter is distinguishable from a workload that
//! legitimately has no revision stream.
//!
//! The `ingest-chaos` workload extends this to **causally-stamped**
//! streams: each entity's timeline carries vector-clocked corrections from
//! two remote sources, including a zip correction that is causally
//! concurrent with the user's round-0 zip answer — the run must **re-open**
//! that attribute (`reopened > 0`). Each entity is resolved four ways —
//! canonical interactive, schedule-preserving chaos (reorder + duplicates,
//! must converge interactively), and canonical vs deterministically-swapped
//! delivery drain-first (the successor overtakes its predecessor, forcing
//! frontier buffering, and must converge post-drain) — and the smoke gates
//! require nonzero duplicate-drops and buffering, zero quarantines on the
//! clean streams, zero rebuilds, and exact convergence everywhere.
//!
//! The `ingest-batch` workload proves the **coalesced batch path** live:
//! every entity's revision timeline is applied twice — event-at-a-time and
//! as whole per-round batches (`apply_revision_batch`, one union-cone
//! retraction + one replay per batch) — with the batched session, the
//! sequential twin and a `SpecMirror` scratch reference compared after
//! every batch, fanned out at the requested `--threads` width. The smoke
//! gates fail the run on any batched-vs-sequential divergence, zero
//! coalesced events (the single-replay saving never materialised), or any
//! batch whose union cone undercuts its largest member cone.
//!
//! The `rehydrate` workload covers **durable sessions** (`cr-store`): a
//! causal timeline is logged through a [`SessionStore`], the session is
//! evicted and recovered — once by full log replay, once from the last
//! snapshot plus tail — with each recovery differentially verified against
//! a from-scratch resolve of the decoded log. The smoke gates fail the run
//! if recovery replays zero events or a clean log reports any checksum
//! failure or truncation.
//!
//! The `serve` workload drives the **serving layer** (`cr-server`) with
//! the simulated client fleet (`cr_data::fleet`): one run over a clean
//! wire and one over the fully hostile wire (drop + duplicate + delay +
//! disconnect) with clients folded onto few tenants against a tight
//! admission budget, so shedding and retries genuinely occur. Each run is
//! self-verifying (exactly-once mutations, canonical-replay equivalence);
//! the report records throughput (acknowledged ops per tick and per
//! second) and p50/p95/p99 submit-to-acknowledge latency in ticks for
//! both wires. The smoke gates fail the run if the clean wire needed any
//! retry, or if the faulty-wire run produced **zero** load-shedding or
//! zero client retries — a dead fault path must not pass.
//!
//! The `sched` workload drives the **work-stealing scheduler**
//! (`cr_core::sched`) with a seeded power-law entity population: a
//! serial reference pass, then `resolve_batch` under the adversarial
//! `Placement::Skewed` (every task starts on shard 0, so workers 1..N
//! live entirely off steals) and a `resolve_stream` run through the
//! bounded ingestion queue — each proven outcome-identical to serial.
//! The smoke gates fail the run on zero steals, zero batch tasks, zero
//! split entities (the pinned giant must split), or any backpressure
//! stall on the clean stream (whose queue capacity exceeds the entity
//! count, so a stall there is a false positive). The same workload
//! accounts the **Ω-free memory diet**: a sample of entities is encoded
//! with and without retained Ω and the report records bytes per entity
//! for both (the Ω-free encoding must be strictly smaller, with an
//! identical CNF). Outside smoke, a `--sched-entities`-sized power-law
//! dataset (default 10⁵) is resolved end-to-end twice — serially and
//! through `resolve_stream` at the `--threads` width under the default
//! bounded queue — with an order-insensitive outcome digest proving
//! serial ≡ parallel at scale.
//!
//! Flags: `--entities N` (per generated dataset, default 10), `--seed S`,
//! `--rounds R` (max user rounds, default 10), `--reps K` (timing
//! repetitions, default 3), `--frac F` (constraint fraction, default 0.6),
//! `--threads T` (parallel fan-out width, default = available cores; the
//! smoke mode runs a serial-vs-parallel agreement pass at this width),
//! `--sched-entities N` (scale of the non-smoke scheduler run, default
//! 100000), `--out PATH` (default `BENCH_10.json`), `--smoke` (tiny CI
//! mode: check agreement, compile-once, zero-rebuild, live-cone,
//! parallel-path, scheduler, durability and serving invariants, skip the
//! timing sweep).

use std::time::Instant;

use std::sync::Arc;

use cr_bench::{arg_entities, arg_flag, arg_seed, arg_value, json::BenchReport, quick};
use cr_core::causal::{
    resolve_causal_checked, CausalReplayConfig, CausalRevision, ScriptedCausalRevisions,
};
use cr_core::framework::{GroundTruthOracle, ResolutionConfig, ResolutionOutcome, Resolver};
use cr_core::ingest::{
    check_session_against_scratch, diff_logical_states, resolve_with_revisions_checked,
    ResolutionSession, Revision, RevisionPolicy, ScriptedRevisions, SpecMirror,
};
use cr_core::sched::{resolve_batch, resolve_stream, Placement, SchedTelemetry, SchedulerConfig};
use cr_core::{compile_count, CompiledProgram, EncodeOptions, EncodedSpec, Specification};
use cr_constraints::parser::{parse_cfd_file, parse_currency_file};
use cr_core::spec::UserInput;
use cr_data::chaos::{chaos, ChaosConfig};
use cr_data::fleet::{run_fleet, ChannelFaults, FleetConfig, FleetReport};
use cr_data::gen::{
    causal_timeline, scenario_from_raw, CausalTimelineConfig, PowerLawConfig, PowerLawDataset,
    Scenario, ScenarioConfig,
};
use cr_data::{nba, person, vjday};
use cr_server::admission::AdmissionConfig;
use cr_store::{
    decode_log, reference_of, verify_recovery, MemoryBackend, SessionId, SessionStore,
    StorageBackend, StoreConfig,
};
use cr_types::{AttrId, EntityInstance, Schema, SourceClock, SourceId, Tuple, TupleId, Value};

struct Workload {
    label: &'static str,
    specs: Vec<Specification>,
    truths: Vec<Tuple>,
}

/// A deterministic retraction-heavy workload: every entity forces the
/// oracle to answer an out-of-domain `AC` (and then `city`) value, so each
/// resolution retracts CFD guard groups mid-interaction — the path whose
/// cost the provenance-scoped replay bounds. (The generated workloads only
/// retract occasionally: a *fired* CFD's attributes are already settled
/// and never asked again, so interactive retraction cones are usually
/// empty — exactly the case the replay turns into a near-no-op.)
fn retraction_workload(entities: usize) -> Workload {
    let schema = Schema::new("p", ["status", "AC", "city"]).expect("static schema");
    let sigma = parse_currency_file(
        &schema,
        r#"phi1: t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2"#,
    )
    .expect("static constraints");
    let mut specs = Vec::new();
    let mut truths = Vec::new();
    for e in 0..entities.max(2) as i64 {
        let gamma = parse_cfd_file(
            &schema,
            &format!(
                "psi1: AC = {} -> city = \"LA{e}\"\npsi2: AC = {} -> city = \"NY{e}\"",
                201 + e,
                200 + e
            ),
        )
        .expect("static CFDs");
        let entity = EntityInstance::new(
            schema.clone(),
            vec![
                Tuple::of([Value::str("working"), Value::int(200 + e), Value::str(format!("NY{e}"))]),
                Tuple::of([Value::str("retired"), Value::int(201 + e), Value::str(format!("LA{e}"))]),
                Tuple::of([Value::str("retired"), Value::int(202 + e), Value::str(format!("SF{e}"))]),
            ],
        )
        .expect("static entity");
        specs.push(Specification::without_orders(entity, sigma.clone(), gamma));
        truths.push(Tuple::of([
            Value::str("retired"),
            Value::int(999 + e),
            Value::str(format!("Boston{e}")),
        ]));
    }
    let w = Workload { label: "retract", specs, truths };
    share_workload_program(&w.specs[..1], None);
    // Γ differs per entity (distinct CFD constants): one program each.
    for spec in &w.specs[1..] {
        spec.compiled_program();
    }
    w
}

/// The push-based ingestion workload: every entity resolves under a
/// streaming revision timeline whose events *must* land in live derivation
/// cones — the CFD has fired by the time it is retracted (round 1) and the
/// withdrawn base order carries the `job` derivation — so the
/// provenance-scoped replay runs its partial-invalidation path end-to-end
/// (`revision invalidated > 0`, enforced by `--smoke`). A later value
/// revision rewrites `city` to a brand-new value, exercising domain growth
/// and value retirement mid-resolution. The `zip` attribute stays
/// unconstrained so the oracle is consulted across several rounds — the
/// window the stream pushes into.
struct IngestWorkload {
    specs: Vec<Specification>,
    truths: Vec<Tuple>,
    timelines: Vec<Vec<(usize, Revision)>>,
}

fn ingest_workload(entities: usize) -> IngestWorkload {
    let schema =
        Schema::new("p", ["status", "AC", "city", "job", "zip"]).expect("static schema");
    let sigma = parse_currency_file(
        &schema,
        r#"
        phi1: t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2
        phi2: t1 <[status] t2 -> t1 <[AC] t2
        "#,
    )
    .expect("static constraints");
    let job = schema.attr_id("job").expect("static attr");
    let city = schema.attr_id("city").expect("static attr");
    let mut specs = Vec::new();
    let mut truths = Vec::new();
    let mut timelines = Vec::new();
    for e in 0..entities.max(2) as i64 {
        let gamma = parse_cfd_file(
            &schema,
            &format!("psi1: AC = {} -> city = \"LA{e}\"", 200 + e),
        )
        .expect("static CFDs");
        let entity = EntityInstance::new(
            schema.clone(),
            vec![
                Tuple::of([
                    Value::str("working"),
                    Value::int(100 + e),
                    Value::str(format!("NY{e}")),
                    Value::str("nurse"),
                    Value::str(format!("Z1_{e}")),
                ]),
                Tuple::of([
                    Value::str("retired"),
                    Value::int(200 + e),
                    Value::str(format!("LA{e}")),
                    Value::str("vet"),
                    Value::str(format!("Z2_{e}")),
                ]),
            ],
        )
        .expect("static entity");
        // Base order carrying the job derivation (withdrawn at round 2).
        let mut orders = cr_core::PartialOrders::empty(schema.arity());
        orders.add(job, TupleId(0), TupleId(1));
        specs.push(Specification::new(entity, orders, sigma.clone(), gamma));
        truths.push(Tuple::of([
            Value::str("retired"),
            Value::int(200 + e),
            Value::str(format!("LA{e}")),
            Value::str("vet"),
            Value::str(format!("Z2_{e}")),
        ]));
        timelines.push(vec![
            (1, Revision::RetractCfd { cfd: 0 }),
            (2, Revision::WithdrawOrder { attr: job, lo: TupleId(0), hi: TupleId(1) }),
            (2, Revision::ReplaceValue {
                tuple: TupleId(0),
                attr: city,
                value: Value::str(format!("Boston{e}")),
            }),
        ]);
    }
    // Γ differs per entity (distinct CFD constants): one program each,
    // materialised at setup so nothing compiles during measurement.
    for spec in &specs {
        spec.compiled_program();
    }
    IngestWorkload { specs, truths, timelines }
}

/// Per-workload revision-ingestion telemetry (the `ingest` workload's
/// counterpart of [`RetractionStats`]).
#[derive(Default)]
struct IngestStats {
    events: usize,
    retracted_groups: usize,
    invalidated: usize,
    reemitted_clauses: usize,
    rebuilds: usize,
}

/// Differentially verifies the ingest workload — the revision replay must
/// equal a from-scratch re-resolution of the post-revision specification
/// after every event batch — and collects its telemetry. Aborts the bench
/// on any divergence. (Run during setup: the scratch mirrors compile their
/// own programs.)
fn check_ingest(w: &IngestWorkload, rounds: usize) -> IngestStats {
    let config = ResolutionConfig { max_rounds: rounds, ..Default::default() };
    let mut stats = IngestStats::default();
    for ((spec, truth), timeline) in w.specs.iter().zip(&w.truths).zip(&w.timelines) {
        let mut oracle = GroundTruthOracle::with_cap(truth.clone(), 1);
        let mut source = ScriptedRevisions::new(timeline.clone());
        let checked = resolve_with_revisions_checked(&config, spec, &mut oracle, &mut source)
            .unwrap_or_else(|e| {
                eprintln!("  ingest: REPLAY-VS-SCRATCH DIVERGENCE: {e}");
                std::process::exit(1);
            });
        assert!(checked.valid, "ingest workload stays valid");
        stats.events += checked.revisions.events;
        stats.retracted_groups += checked.revisions.retracted_groups;
        stats.invalidated += checked.revisions.invalidated;
        stats.reemitted_clauses += checked.revisions.reemitted_clauses;
    }
    stats
}

/// Serial wall-clock seconds for one pass of the unchecked production path
/// (`resolve_with_revisions`) over the ingest workload (best of `reps`).
/// Also accumulates the path's rebuild count into `stats`.
fn time_ingest(w: &IngestWorkload, rounds: usize, reps: usize, stats: &mut IngestStats) -> f64 {
    let r = Resolver::new(ResolutionConfig { max_rounds: rounds, ..Default::default() });
    let mut best = f64::INFINITY;
    for rep in 0..reps.max(1) {
        let t = Instant::now();
        for ((spec, truth), timeline) in w.specs.iter().zip(&w.truths).zip(&w.timelines) {
            let mut oracle = GroundTruthOracle::with_cap(truth.clone(), 1);
            let mut source = ScriptedRevisions::new(timeline.clone());
            let outcome =
                std::hint::black_box(r.resolve_with_revisions(spec, &mut oracle, &mut source));
            if rep == 0 {
                stats.rebuilds += outcome.rebuilds;
            }
        }
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Batched-ingestion telemetry summed over the `ingest-batch` differential
/// (explicit zeros: a dead coalescing counter must be distinguishable from
/// a clean run).
#[derive(Clone, Copy, Default)]
struct BatchStats {
    batches: usize,
    events: usize,
    coalesced: usize,
    cone_union: usize,
    max_member_cone: usize,
    replays_saved: usize,
}

/// Groups a scripted timeline into its per-round revision batches, in
/// round order — the poll granularity `resolve_with_revisions` hands to
/// `apply_revision_batch`.
fn round_batches(timeline: &[(usize, Revision)]) -> Vec<Vec<Revision>> {
    let mut rounds: std::collections::BTreeMap<usize, Vec<Revision>> =
        std::collections::BTreeMap::new();
    for (round, rev) in timeline {
        rounds.entry(*round).or_default().push(rev.clone());
    }
    rounds.into_values().collect()
}

/// The batched-vs-sequential differential: every entity's timeline is
/// applied per-round-batch to one session (`apply_revision_batch`: one
/// union-cone retraction + one replay per batch) and event-at-a-time to a
/// twin, with both checked against a [`SpecMirror`] scratch reference and
/// against each other ([`diff_logical_states`]) after **every** batch.
/// Entities are fanned out across `threads` OS threads so the CI width
/// (`--threads 2`) exercises the batch path concurrently. Aborts the bench
/// on any divergence or on a union cone smaller than its largest member
/// cone (structurally impossible unless coalescing is broken).
fn check_ingest_batch(w: &IngestWorkload, threads: usize) -> BatchStats {
    let config = ResolutionConfig::default();
    let jobs: Vec<(usize, &Specification, Vec<Vec<Revision>>)> = w
        .specs
        .iter()
        .zip(&w.timelines)
        .enumerate()
        .map(|(i, (spec, timeline))| (i, spec, round_batches(timeline)))
        .collect();
    let chunk = jobs.len().div_ceil(threads.max(1));
    let stats = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .chunks(chunk.max(1))
            .map(|chunk| {
                let config = &config;
                scope.spawn(move || {
                    let mut stats = BatchStats::default();
                    for (i, spec, batches) in chunk {
                        let mut batched = ResolutionSession::new_revisable(config, spec);
                        let mut twin = ResolutionSession::new_revisable(config, spec);
                        let mut mirror = SpecMirror::new(spec);
                        for batch in batches {
                            let report =
                                batched.apply_revision_batch(batch).unwrap_or_else(|e| {
                                    eprintln!("  ingest-batch: entity {i}: batch rejected: {e}");
                                    std::process::exit(1);
                                });
                            for rev in batch {
                                twin.apply_revision(rev).unwrap_or_else(|e| {
                                    eprintln!(
                                        "  ingest-batch: entity {i}: sequential twin rejected: {e}"
                                    );
                                    std::process::exit(1);
                                });
                                mirror.apply(rev);
                            }
                            if report.union_cone < report.max_member_cone {
                                eprintln!(
                                    "  ingest-batch: entity {i}: union cone {} < largest member cone {}",
                                    report.union_cone, report.max_member_cone
                                );
                                std::process::exit(1);
                            }
                            let check = check_session_against_scratch(&mut batched, &mirror)
                                .and_then(|()| check_session_against_scratch(&mut twin, &mirror))
                                .and_then(|()| {
                                    diff_logical_states(&batched.state(), &twin.state())
                                });
                            if let Err(e) = check {
                                eprintln!(
                                    "  ingest-batch: BATCHED-VS-SEQUENTIAL DIVERGENCE on entity {i}: {e}"
                                );
                                std::process::exit(1);
                            }
                            stats.batches += 1;
                            stats.events += report.applied;
                            if report.applied >= 2 {
                                stats.coalesced += report.applied;
                                stats.replays_saved += report.applied - 1;
                            }
                            stats.cone_union += report.union_cone;
                            stats.max_member_cone += report.max_member_cone;
                        }
                    }
                    stats
                })
            })
            .collect();
        let mut total = BatchStats::default();
        for h in handles {
            let s = h.join().expect("ingest-batch worker panicked");
            total.batches += s.batches;
            total.events += s.events;
            total.coalesced += s.coalesced;
            total.cone_union += s.cone_union;
            total.max_member_cone += s.max_member_cone;
            total.replays_saved += s.replays_saved;
        }
        total
    });
    stats
}

/// Best-of-`reps` wall-clock seconds for one pass over the workload's
/// timelines: event-at-a-time (`apply_revision`) vs whole-round batches
/// (`apply_revision_batch`) — the per-event vs coalesced replay cost the
/// report records.
fn time_ingest_batch(w: &IngestWorkload, reps: usize) -> (f64, f64) {
    let config = ResolutionConfig::default();
    let batched_jobs: Vec<Vec<Vec<Revision>>> =
        w.timelines.iter().map(|t| round_batches(t)).collect();
    let mut per_event = f64::INFINITY;
    let mut batched = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        for (spec, batches) in w.specs.iter().zip(&batched_jobs) {
            let mut session = ResolutionSession::new_revisable(&config, spec);
            for batch in batches {
                for rev in batch {
                    session.apply_revision(rev).expect("valid timeline");
                }
            }
            std::hint::black_box(session.epoch());
        }
        per_event = per_event.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        for (spec, batches) in w.specs.iter().zip(&batched_jobs) {
            let mut session = ResolutionSession::new_revisable(&config, spec);
            for batch in batches {
                session.apply_revision_batch(batch).expect("valid timeline");
            }
            std::hint::black_box(session.epoch());
        }
        batched = batched.min(t.elapsed().as_secs_f64());
    }
    (per_event, batched)
}

/// The causally-stamped chaos workload: the ingest schema/entities with
/// vector-clocked timelines from two remote sources. The `zip` correction
/// is delivered at round 1 — causally concurrent with the user's round-0
/// `zip` answer and contradicting it, so every canonical interactive run
/// must re-open the attribute.
struct ChaosWorkload {
    specs: Vec<Specification>,
    truths: Vec<Tuple>,
    timelines: Vec<Vec<(usize, CausalRevision)>>,
}

fn chaos_workload(entities: usize) -> ChaosWorkload {
    let ingest = ingest_workload(entities);
    let schema = ingest.specs[0].schema().clone();
    let job = schema.attr_id("job").expect("static attr");
    let city = schema.attr_id("city").expect("static attr");
    let zip = schema.attr_id("zip").expect("static attr");
    let timelines = (0..ingest.specs.len() as i64)
        .map(|e| {
            let mut s1 = SourceClock::new(SourceId(1));
            let mut s2 = SourceClock::new(SourceId(2));
            vec![
                (1, CausalRevision { stamp: s1.stamp(1), rev: Revision::RetractCfd { cfd: 0 } }),
                // Concurrent with (and contradicting) the round-0 zip
                // answer `Z2_{e}`: the re-open trigger.
                (1, CausalRevision {
                    stamp: s2.stamp(1),
                    rev: Revision::ReplaceValue {
                        tuple: TupleId(0),
                        attr: zip,
                        value: Value::str(format!("Z9_{e}")),
                    },
                }),
                (2, CausalRevision {
                    stamp: s1.stamp(2),
                    rev: Revision::WithdrawOrder { attr: job, lo: TupleId(0), hi: TupleId(1) },
                }),
                (2, CausalRevision {
                    stamp: s2.stamp(2),
                    rev: Revision::ReplaceValue {
                        tuple: TupleId(0),
                        attr: city,
                        value: Value::str(format!("Boston{e}")),
                    },
                }),
            ]
        })
        .collect();
    ChaosWorkload { specs: ingest.specs, truths: ingest.truths, timelines }
}

/// Causal-stream telemetry summed over the chaos workload's runs (explicit
/// zeros: a dead counter must be distinguishable from a clean run).
#[derive(Default)]
struct ChaosStats {
    applied: usize,
    duplicates_dropped: usize,
    buffered: usize,
    quarantined: usize,
    reopened: usize,
    rebuilds: usize,
    secs: f64,
}

/// Resolves every chaos-workload entity four ways — canonical interactive,
/// schedule-preserving chaos interactive, and canonical vs
/// deterministically-swapped delivery drain-first — asserting exact
/// convergence between each pair (each run is additionally verified ≡
/// scratch after every effective batch by `resolve_causal_checked`
/// itself). Aborts the bench on any divergence. Run during setup: the
/// scratch mirrors compile their own programs.
fn check_chaos(w: &ChaosWorkload, rounds: usize, seed: u64) -> ChaosStats {
    let config = ResolutionConfig { max_rounds: rounds, ..Default::default() };
    let interactive = CausalReplayConfig::default();
    let drain_first = CausalReplayConfig {
        policy: RevisionPolicy::Reject,
        interact_while_streaming: false,
        max_batch: 0,
    };
    let mut stats = ChaosStats::default();
    let t = Instant::now();
    for (i, ((spec, truth), timeline)) in
        w.specs.iter().zip(&w.truths).zip(&w.timelines).enumerate()
    {
        let mut run = |source: ScriptedCausalRevisions, causal: &CausalReplayConfig, what| {
            let mut oracle = GroundTruthOracle::with_cap(truth.clone(), 1);
            let mut source = source;
            let replay = resolve_causal_checked(&config, spec, &mut oracle, &mut source, causal)
                .unwrap_or_else(|e| {
                    eprintln!("  ingest-chaos: {what} run diverged from scratch on entity {i}: {e}");
                    std::process::exit(1);
                });
            stats.quarantined += replay.revisions.quarantined;
            stats.rebuilds += replay.rebuilds;
            replay
        };

        let canonical = run(
            ScriptedCausalRevisions::new(timeline.clone()),
            &interactive,
            "canonical",
        );
        assert!(canonical.valid && canonical.complete, "entity {i}: canonical run must settle");
        stats.applied += canonical.revisions.events;
        stats.reopened += canonical.revisions.reopened;

        // Schedule-preserving chaos (reorder + duplicates) must converge
        // with the full interactive trajectory.
        let chaotic = run(
            chaos(timeline, spec, &ChaosConfig::schedule_preserving(seed ^ (i as u64 + 1))),
            &interactive,
            "schedule-preserving chaos",
        );
        assert_eq!(
            canonical.resolved, chaotic.resolved,
            "entity {i}: chaotic delivery diverged from canonical"
        );
        assert_eq!(canonical.interactions, chaotic.interactions, "entity {i}");
        assert_eq!(canonical.revisions.reopened, chaotic.revisions.reopened, "entity {i}");
        stats.duplicates_dropped += chaotic.revisions.duplicates_dropped;

        // Deterministic out-of-order delivery: source 2's first event moves
        // past its successor, which must buffer at the frontier; drain-first
        // runs of both schedules must converge.
        let mut swapped = timeline.clone();
        for entry in &mut swapped {
            if entry.1.stamp.source == SourceId(2) && entry.1.stamp.seq() == 1 {
                entry.0 = 3;
            }
        }
        let base = run(ScriptedCausalRevisions::new(timeline.clone()), &drain_first, "drain-first");
        let ooo = run(ScriptedCausalRevisions::new(swapped), &drain_first, "out-of-order");
        assert_eq!(
            base.resolved, ooo.resolved,
            "entity {i}: out-of-order drain-first delivery diverged"
        );
        assert!(
            ooo.revisions.buffered > 0,
            "entity {i}: the overtaken predecessor must force buffering"
        );
        stats.buffered += ooo.revisions.buffered;
    }
    stats.secs = t.elapsed().as_secs_f64();
    stats
}

/// One serial-vs-parallel agreement pass at the requested fan-out width
/// (run in smoke so `--threads N` exercises the parallel path in CI).
fn check_parallel(w: &Workload, rounds: usize, threads: usize) {
    let r = resolver(EncodeOptions::lazy(), true, rounds);
    let serial: Vec<_> = w
        .specs
        .iter()
        .zip(&w.truths)
        .map(|(spec, truth)| r.resolve(spec, &mut GroundTruthOracle::with_cap(truth.clone(), 1)))
        .collect();
    let parallel = r.resolve_all_parallel_with_threads(
        &w.specs,
        |i| GroundTruthOracle::with_cap(w.truths[i].clone(), 1),
        threads,
    );
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            s.resolved, p.resolved,
            "{}: parallel fan-out diverged from serial on entity {i}",
            w.label
        );
        assert_eq!(p.rebuilds, 0, "{}: parallel path rebuilt on entity {i}", w.label);
    }
}

fn resolver(encode: EncodeOptions, incremental: bool, max_rounds: usize) -> Resolver {
    Resolver::new(ResolutionConfig { max_rounds, incremental, encode, ..Default::default() })
}

/// Serial wall-clock seconds for one pass over the workload (best of `reps`).
fn time_serial(
    w: &Workload,
    encode: EncodeOptions,
    incremental: bool,
    rounds: usize,
    reps: usize,
) -> f64 {
    let r = resolver(encode, incremental, rounds);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        for (spec, truth) in w.specs.iter().zip(&w.truths) {
            let mut oracle = GroundTruthOracle::with_cap(truth.clone(), 1);
            std::hint::black_box(r.resolve(spec, &mut oracle));
        }
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Parallel fan-out wall-clock seconds on the (lazy) engine default.
fn time_parallel(w: &Workload, rounds: usize, reps: usize, threads: usize) -> f64 {
    let r = resolver(EncodeOptions::lazy(), true, rounds);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(r.resolve_all_parallel_with_threads(
            &w.specs,
            |i| GroundTruthOracle::with_cap(w.truths[i].clone(), 1),
            threads,
        ));
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Stamps one shared compiled program (built against `table` when the
/// dataset has one) onto every spec of a homogeneous workload — the
/// compile-once-per-dataset contract the smoke check enforces. Specs whose
/// programs are already stamped (career via `Dataset::spec`, wide via
/// `cr_data::gen`) are forced to materialise them here instead, so *no*
/// compilation can happen during the measured phase.
fn share_workload_program(specs: &[Specification], table: Option<&cr_types::ValueTable>) {
    let Some(first) = specs.first() else { return };
    let program = Arc::new(CompiledProgram::compile(first.sigma(), first.gamma(), table));
    for spec in specs {
        spec.set_compiled_program(program.clone());
    }
}

/// Retraction-replay telemetry summed over a workload's lazy-incremental
/// resolutions.
#[derive(Default)]
struct RetractionStats {
    replays: usize,
    invalidated: usize,
    full_resets: usize,
    /// Interaction rounds that actually retracted (nonzero invalidation).
    rounds_with_retraction: usize,
}

/// All four paths must produce identical resolution outcomes. Returns the
/// total engine rebuild count (must be 0 with the guard-group engine), the
/// injected-axiom count of the lazy incremental path and its retraction
/// telemetry.
fn check_agreement(w: &Workload, rounds: usize) -> (usize, usize, RetractionStats) {
    let paths = [
        ("lazy/incremental", EncodeOptions::lazy(), true),
        ("eager/incremental", EncodeOptions::eager(), true),
        ("lazy/scratch", EncodeOptions::lazy(), false),
        ("eager/scratch", EncodeOptions::eager(), false),
    ];
    let mut rebuilds = 0;
    let mut injected = 0;
    let mut retraction = RetractionStats::default();
    for (spec, truth) in w.specs.iter().zip(&w.truths) {
        let outcomes: Vec<_> = paths
            .iter()
            .map(|&(_, encode, incremental)| {
                resolver(encode, incremental, rounds)
                    .resolve(spec, &mut GroundTruthOracle::with_cap(truth.clone(), 1))
            })
            .collect();
        let reference = &outcomes[0];
        for ((label, ..), outcome) in paths.iter().zip(&outcomes).skip(1) {
            assert_eq!(
                reference.resolved, outcome.resolved,
                "{}: resolved tuples diverged on {label}",
                w.label
            );
            assert_eq!(
                reference.interactions, outcome.interactions,
                "{}: interaction counts diverged on {label}",
                w.label
            );
            assert_eq!(
                reference.user_values, outcome.user_values,
                "{}: answer counts diverged on {label}",
                w.label
            );
        }
        rebuilds += outcomes[0].rebuilds + outcomes[1].rebuilds;
        injected += outcomes[0].injected_axioms;
        retraction.replays += outcomes[0].retraction_replays;
        retraction.invalidated += outcomes[0].retraction_invalidated;
        retraction.full_resets += outcomes[0].retraction_full_resets;
        retraction.rounds_with_retraction += outcomes[0]
            .rounds
            .iter()
            .filter(|r| r.retraction_invalidated > 0)
            .count();
    }
    (rebuilds, injected, retraction)
}

/// Round-0 encode comparison: clause counts and encode wall time per axiom
/// mode, summed over the workload's specs.
struct EncodeStats {
    eager_clauses: usize,
    lazy_clauses: usize,
    eager_secs: f64,
    lazy_secs: f64,
}

/// Best of `reps` timed passes over the workload per axiom mode (the same
/// best-of policy as the end-to-end timings — single-core containers are
/// noisy and a single cold pass can read 20–30% high).
fn encode_stats(w: &Workload, reps: usize) -> EncodeStats {
    let mut stats =
        EncodeStats { eager_clauses: 0, lazy_clauses: 0, eager_secs: f64::INFINITY, lazy_secs: f64::INFINITY };
    for rep in 0..reps.max(1) {
        // One mode per pass: interleaving would measure every lazy encode
        // against caches just evicted by a multi-million-clause eager one.
        let t = Instant::now();
        for spec in &w.specs {
            let lazy = EncodedSpec::encode_with(spec, EncodeOptions::lazy());
            if rep == 0 {
                stats.lazy_clauses += lazy.cnf().num_clauses();
            }
            std::hint::black_box(lazy);
        }
        stats.lazy_secs = stats.lazy_secs.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        for spec in &w.specs {
            let eager = EncodedSpec::encode_with(spec, EncodeOptions::eager());
            if rep == 0 {
                stats.eager_clauses += eager.cnf().num_clauses();
            }
            std::hint::black_box(eager);
        }
        stats.eager_secs = stats.eager_secs.min(t.elapsed().as_secs_f64());
    }
    stats
}

struct RehydrateStats {
    events_logged: u64,
    log_bytes: u64,
    events_replayed: u64,
    snapshots_used: u64,
    checksum_failures: u64,
    corrupt_truncations: u64,
    full_replay_secs: f64,
    snapshot_tail_secs: f64,
}

/// Durable-session rehydration workload: a causal timeline (with one user
/// answer interleaved) is logged through a [`SessionStore`], the session is
/// evicted, and recovery is timed — once replaying the whole log from
/// scratch (`snapshot_every: 0`) and once restoring the last snapshot and
/// replaying only the tail. Each rehydrated session is differentially
/// verified against a from-scratch resolve of the decoded log
/// ([`verify_recovery`]), and the run aborts on divergence. Run at setup:
/// the scratch references compile/encode their own programs, which must
/// not count against the compile-once invariant of the measured phase.
fn check_rehydrate(seed: u64, events: usize, reps: usize) -> RehydrateStats {
    let id = SessionId(1);
    let config = ResolutionConfig::default();
    let Scenario { spec, truth } = scenario_from_raw(seed.wrapping_add(23), 6, 4, 60, false);
    let timeline = causal_timeline(
        &spec,
        &CausalTimelineConfig {
            seed: seed.wrapping_mul(131).wrapping_add(7),
            sources: 2,
            events,
            rounds: 3,
            ..Default::default()
        },
    );
    let mut input = UserInput::empty();
    input.values.insert(AttrId(1), truth.get(AttrId(1)).clone());

    let mut stats = RehydrateStats {
        events_logged: 0,
        log_bytes: 0,
        events_replayed: 0,
        snapshots_used: 0,
        checksum_failures: 0,
        corrupt_truncations: 0,
        full_replay_secs: 0.0,
        snapshot_tail_secs: 0.0,
    };
    for snapshot_every in [0usize, 4] {
        let mut store = SessionStore::new(
            MemoryBackend::new(),
            StoreConfig { snapshot_every, ..StoreConfig::default() },
        )
        .expect("store config");
        store.open(id, &spec);
        for (i, (_, ev)) in timeline.iter().enumerate() {
            if i == timeline.len() / 3 {
                store.apply_input(id, &input).expect("log user input");
            }
            store.ingest_causal(id, vec![ev.clone()]).expect("log causal event");
        }

        // Timed evict + rehydrate cycles. The drive above already paid the
        // first-touch rehydration of the empty log, so measure as a delta.
        let t0 = store.recovery();
        let started = Instant::now();
        for _ in 0..reps.max(1) {
            assert!(store.evict(id).expect("evict"), "session must be live before eviction");
            store.session(id).expect("rehydrate");
        }
        let secs = started.elapsed().as_secs_f64() / reps.max(1) as f64;
        let t = store.recovery();

        // The rehydrated session ≡ a from-scratch resolve of the log.
        let bytes = store.backend().read_log(id).expect("read log");
        let (records, _, scan_error) = decode_log(&bytes);
        assert!(scan_error.is_none(), "clean log must scan clean: {scan_error:?}");
        let mut reference = reference_of(&config, RevisionPolicy::Quarantine, &spec, &records);
        verify_recovery(store.session(id).expect("session"), &mut reference)
            .expect("rehydrated session diverged from a scratch replay of its own log");

        stats.events_logged = records.iter().filter(|r| r.is_event()).count() as u64;
        stats.log_bytes = stats.log_bytes.max(bytes.len() as u64);
        stats.events_replayed += t.events_replayed - t0.events_replayed;
        stats.snapshots_used += t.snapshots_used - t0.snapshots_used;
        stats.checksum_failures += t.checksum_failures;
        stats.corrupt_truncations += t.corrupt_truncations;
        if snapshot_every == 0 {
            stats.full_replay_secs = secs;
        } else {
            stats.snapshot_tail_secs = secs;
        }
    }
    stats
}

/// Work-stealing scheduler telemetry plus the Ω-free memory-diet
/// accounting (explicit zeros: the smoke gates below distinguish a dead
/// steal/batch/split counter from a clean run).
struct SchedStats {
    liveness_entities: usize,
    /// Telemetry of the skewed-placement `resolve_batch` liveness run.
    batch: SchedTelemetry,
    /// Telemetry of the clean (never-saturated) `resolve_stream` run.
    stream: SchedTelemetry,
    /// Telemetry of the non-smoke at-scale stream run, when one ran.
    scale: Option<SchedTelemetry>,
    scale_entities: usize,
    scale_serial_secs: f64,
    scale_stream_secs: f64,
    /// Entities behind the bytes-per-entity sample.
    sample: usize,
    /// Summed `approx_bytes` of the sample, Ω-free (engine default).
    lean_bytes: usize,
    /// Summed `approx_bytes` of the sample with Ω retained.
    fat_bytes: usize,
    /// The retained instance constraints alone (`omega_bytes`).
    fat_omega_bytes: usize,
}

/// Order-insensitive digest of one entity's outcome — summed with
/// wrapping addition so out-of-order stream sinks can be compared
/// against an in-order serial pass.
fn outcome_digest(i: usize, o: &ResolutionOutcome) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    i.hash(&mut h);
    o.valid.hash(&mut h);
    o.complete.hash(&mut h);
    o.interactions.hash(&mut h);
    format!("{:?}", o.resolved).hash(&mut h);
    h.finish()
}

/// Drives the work-stealing scheduler over seeded power-law populations
/// and proves every parallel path outcome-identical to a serial pass.
/// Aborts the bench on any divergence; the liveness gates on the returned
/// telemetry run in `main`. Run at setup: each dataset compiles its one
/// shared program at construction.
fn check_sched(seed: u64, smoke: bool, threads: usize, scale_entities: usize) -> SchedStats {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    let workers = threads.clamp(2, 8);
    let resolver = Resolver::new(ResolutionConfig::default());

    // Liveness population: heavy-tailed with one giant pinned to
    // `max_tuples`, large enough that skewed placement forces real steals
    // even when the workers share a single core.
    let liveness = PowerLawDataset::new(&PowerLawConfig {
        seed: seed ^ 0x5EED,
        entities: 160,
        max_tuples: 48,
        giants: 1,
        ..Default::default()
    });
    let specs = liveness.specs();
    let serial: Vec<ResolutionOutcome> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| resolver.resolve(s, &mut GroundTruthOracle::with_cap(liveness.truth(i), 1)))
        .collect();

    // Adversarial placement: every task starts on shard 0, so workers
    // 1..N live entirely off steals — nonzero `steals` proves the steal
    // path is alive, not just reachable. The giant (48 tuples) clears
    // `split_tuple_threshold`, so its Ω instantiation must split.
    let skewed = SchedulerConfig {
        placement: Placement::Skewed,
        large_tuple_threshold: 24,
        split_tuple_threshold: 40,
        ..SchedulerConfig::with_workers(workers)
    };
    let (outcomes, batch) = resolve_batch(
        &resolver,
        &specs,
        &|i| GroundTruthOracle::with_cap(liveness.truth(i), 1),
        &skewed,
    );
    for (i, (s, p)) in serial.iter().zip(&outcomes).enumerate() {
        assert_eq!(s.valid, p.valid, "sched: validity diverged on entity {i}");
        assert_eq!(s.resolved, p.resolved, "sched: skewed batch diverged from serial on entity {i}");
        assert_eq!(s.interactions, p.interactions, "sched: interactions diverged on entity {i}");
    }

    // Clean stream: queue capacity above the entity count, so the
    // producer can never block — a backpressure stall recorded here is a
    // false positive (gated in `main`). Outcomes arrive out of order;
    // the wrapping digest proves the set ≡ serial.
    let clean =
        SchedulerConfig { queue_cap: specs.len() + 1, ..SchedulerConfig::with_workers(workers) };
    let serial_digest = serial
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, o)| acc.wrapping_add(outcome_digest(i, o)));
    let digest = AtomicU64::new(0);
    let drained = AtomicUsize::new(0);
    let stream = resolve_stream(
        &resolver,
        liveness.stream(),
        &|i| GroundTruthOracle::with_cap(liveness.truth(i), 1),
        &clean,
        &|i, o| {
            digest.fetch_add(outcome_digest(i, &o), Ordering::Relaxed);
            drained.fetch_add(1, Ordering::Relaxed);
        },
    );
    assert_eq!(drained.into_inner(), specs.len(), "sched: stream dropped entities");
    assert_eq!(
        digest.into_inner(),
        serial_digest,
        "sched: stream outcomes diverged from serial"
    );

    // Ω-free memory diet: the engine encoding must carry no retained
    // instance constraints and be strictly smaller than the retained-Ω
    // twin, with a byte-identical CNF (suggestion rules are scanned from
    // the clause arena instead — `cr-core/tests/omega_free_rules.rs`).
    let sample = specs.len().min(12);
    let (mut lean_bytes, mut fat_bytes, mut fat_omega_bytes) = (0usize, 0usize, 0usize);
    for spec in specs.iter().take(sample) {
        let lean = EncodedSpec::encode_with(spec, EncodeOptions::lazy());
        let fat = EncodedSpec::encode_with(spec, EncodeOptions::lazy().with_retained_omega());
        assert_eq!(lean.omega_bytes(), 0, "engine encoding must drop Ω");
        assert_eq!(
            lean.cnf().num_clauses(),
            fat.cnf().num_clauses(),
            "Ω retention must not change the CNF"
        );
        lean_bytes += lean.approx_bytes();
        fat_bytes += fat.approx_bytes();
        fat_omega_bytes += fat.omega_bytes();
    }
    assert!(lean_bytes < fat_bytes, "Ω-free encodings must be smaller than retained-Ω ones");

    // At-scale run (non-smoke): a `--sched-entities` power-law population
    // resolved serially and through the default bounded queue, compared
    // by digest. The default `queue_cap` keeps the in-flight window (and
    // so producer memory) bounded regardless of the population size.
    let mut scale = None;
    let (mut scale_serial_secs, mut scale_stream_secs) = (0.0, 0.0);
    if !smoke && scale_entities > 0 {
        let ds = PowerLawDataset::new(&PowerLawConfig {
            seed: seed ^ 0xCA1E,
            entities: scale_entities,
            max_tuples: 64,
            giants: 2,
            ..Default::default()
        });
        let t = Instant::now();
        let mut serial_digest = 0u64;
        for i in 0..ds.len() {
            let o = resolver
                .resolve(&ds.spec(i), &mut GroundTruthOracle::with_cap(ds.truth(i), 1));
            serial_digest = serial_digest.wrapping_add(outcome_digest(i, &o));
        }
        scale_serial_secs = t.elapsed().as_secs_f64();
        let digest = AtomicU64::new(0);
        let drained = AtomicUsize::new(0);
        let config = SchedulerConfig::with_workers(workers);
        let t = Instant::now();
        let telemetry = resolve_stream(
            &resolver,
            ds.stream(),
            &|i| GroundTruthOracle::with_cap(ds.truth(i), 1),
            &config,
            &|i, o| {
                digest.fetch_add(outcome_digest(i, &o), Ordering::Relaxed);
                drained.fetch_add(1, Ordering::Relaxed);
            },
        );
        scale_stream_secs = t.elapsed().as_secs_f64();
        assert_eq!(drained.into_inner(), ds.len(), "sched: at-scale stream dropped entities");
        assert_eq!(
            digest.into_inner(),
            serial_digest,
            "sched: at-scale stream outcomes diverged from serial"
        );
        scale = Some(telemetry);
    }

    SchedStats {
        liveness_entities: specs.len(),
        batch,
        stream,
        scale,
        scale_entities: if smoke { 0 } else { scale_entities },
        scale_serial_secs,
        scale_stream_secs,
        sample,
        lean_bytes,
        fat_bytes,
        fat_omega_bytes,
    }
}

/// The `p`-th percentile of an ascending latency sample (nearest-rank).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// One serving-layer fleet run plus its wall time.
struct ServeRun {
    report: FleetReport,
    secs: f64,
}

/// Drives the serving layer with the simulated client fleet twice — over a
/// clean wire, then over the fully hostile wire with clients folded onto
/// two tenants against a tight admission budget (so load-shedding
/// genuinely occurs). Both runs self-verify the exactly-once and
/// canonical-replay differentials (`run_fleet` aborts the bench on any
/// violation). Run at setup: the fleet's scenario compiles its own
/// program, which must not count against the compile-once invariant of
/// the measured phase.
fn check_serve(seed: u64, smoke: bool) -> (ServeRun, ServeRun) {
    let run = |label: &str, cfg: &FleetConfig| {
        let t = Instant::now();
        let report = run_fleet(cfg).unwrap_or_else(|e| {
            eprintln!("  serve: {label} fleet violated the serving contract: {e}");
            std::process::exit(1);
        });
        ServeRun { report, secs: t.elapsed().as_secs_f64() }
    };
    let clean_cfg = FleetConfig {
        seed,
        clients: if smoke { 4 } else { 6 },
        causal_events: if smoke { 10 } else { 24 },
        inputs_per_client: if smoke { 3 } else { 5 },
        reads_per_client: if smoke { 4 } else { 8 },
        ..FleetConfig::default()
    };
    let clean = run("clean-wire", &clean_cfg);
    let faulty_cfg = FleetConfig {
        clients: if smoke { 6 } else { 8 },
        tenants: 2,
        faults: ChannelFaults::faulty(),
        max_attempts: 40,
        max_ticks: 30_000,
        admission: AdmissionConfig {
            refill_per_tick: 1,
            burst: 3,
            queue_cap: 3,
            max_in_flight: 4,
            ..AdmissionConfig::default()
        },
        ..clean_cfg
    };
    let faulty = run("faulty-wire", &faulty_cfg);
    (clean, faulty)
}

fn main() {
    let entities = arg_entities(10);
    let seed = arg_seed(7);
    let rounds: usize = arg_value("rounds").and_then(|v| v.parse().ok()).unwrap_or(10);
    let reps: usize = arg_value("reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let frac: f64 = arg_value("frac").and_then(|v| v.parse().ok()).unwrap_or(0.6);
    let threads: usize = arg_value("threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .max(1);
    let sched_entities: usize = arg_value("sched-entities")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let smoke = arg_flag("smoke");
    let out = arg_value("out").unwrap_or_else(|| "BENCH_10.json".to_string());

    // Entity sizes follow the seed's Fig. 8(a) bins: NBA up to 135 tuples,
    // Person at 1/10 paper scale up to 200.
    let nba_sizes: Vec<usize> = (0..entities).map(|i| 27 + (i * 108) / entities.max(1)).collect();
    let person_sizes: Vec<usize> =
        (0..entities).map(|i| 100 + (i * 150) / entities.max(1)).collect();

    let subsample =
        |spec: &Specification| spec.with_constraint_fraction(frac, frac, seed.wrapping_add(11));
    let workloads = [
        {
            // Both vjday entities share Fig. 3's Σ/Γ: one program.
            let w = Workload {
                label: "vjday",
                specs: vec![vjday::edith_spec(), vjday::george_spec()],
                truths: vec![vjday::edith_truth(), vjday::george_truth()],
            };
            share_workload_program(&w.specs, None);
            w
        },
        {
            // Subsampling clears the dataset-stamped program (Σ/Γ change),
            // so the identical subsets get one shared recompile against the
            // dataset's value table.
            let ds = nba::generate_with_sizes(&nba_sizes, seed);
            let w = Workload {
                label: "nba",
                truths: (0..ds.len()).map(|i| ds.truth(i).clone()).collect(),
                specs: (0..ds.len()).map(|i| subsample(&ds.spec(i))).collect(),
            };
            share_workload_program(&w.specs, ds.value_table().map(|t| t.as_ref()));
            w
        },
        {
            let ds = person::generate_with_sizes(&person_sizes, seed);
            let w = Workload {
                label: "person",
                truths: (0..ds.len()).map(|i| ds.truth(i).clone()).collect(),
                specs: (0..ds.len()).map(|i| subsample(&ds.spec(i))).collect(),
            };
            share_workload_program(&w.specs, ds.value_table().map(|t| t.as_ref()));
            w
        },
        {
            let ds = quick::career(entities.min(65), seed);
            Workload {
                label: "career",
                truths: (0..ds.len()).map(|i| ds.truth(i).clone()).collect(),
                specs: (0..ds.len()).map(|i| ds.spec(i)).collect(),
            }
        },
        // Wide realised value spaces: the regime where transitivity clause
        // generation dominated round-0 encode (ROADMAP "Remaining perf
        // ideas", PR 2 profiling).
        {
            let n = if smoke { 2 } else { entities.clamp(2, 6) };
            let scenarios: Vec<_> = (0..n)
                .map(|i| {
                    cr_data::gen::scenario(&ScenarioConfig {
                        seed: seed.wrapping_add(i as u64),
                        attrs: 5,
                        tuples: if smoke { 24 } else { 60 },
                        domain: if smoke { 20 } else { 48 },
                        conflict_density: 1.0,
                        null_density: 0.02,
                        sigma: 8,
                        gamma: 3,
                        order_density: 0.1,
                        new_value_answers: i % 2 == 1,
                    })
                })
                .collect();
            Workload {
                label: "wide",
                truths: scenarios.iter().map(|s| s.truth.clone()).collect(),
                specs: scenarios.into_iter().map(|s| s.spec).collect(),
            }
        },
        retraction_workload(entities.clamp(2, 8)),
    ];

    // Push-based ingestion workload: built AND differentially verified at
    // setup (the replay-vs-scratch checker encodes post-revision mirror
    // specifications from scratch, which compiles their programs — that
    // must not count against the compile-once invariant of the measured
    // phase below).
    let ingest = ingest_workload(entities.clamp(2, 8));
    let mut ingest_stats = check_ingest(&ingest, rounds);

    // Batched-vs-sequential differential at the requested thread width:
    // run at setup for the same compile-once reason (the scratch mirrors
    // compile their own programs).
    let batch_stats = check_ingest_batch(&ingest, threads);

    // Causally-stamped chaos workload: all four delivery regimes are
    // resolved AND cross-checked here at setup, for the same reason —
    // `resolve_causal_checked`'s scratch mirrors compile their own
    // programs, which must not count against the measured phase.
    let chaos_w = chaos_workload(entities.clamp(2, 6));
    let chaos_stats = check_chaos(&chaos_w, rounds, seed);

    // Durable-session rehydration workload: verified AND timed at setup
    // (the scratch references compile their own programs — see
    // `check_rehydrate`).
    let rehydrate =
        check_rehydrate(seed, if smoke { 8 } else { 40 }, if smoke { 1 } else { reps });

    // Serving-layer fleet workload: self-verified AND timed at setup (the
    // fleet's scenario compiles its own program — see `check_serve`).
    let (serve_clean, serve_faulty) = check_serve(seed, smoke);

    // Work-stealing scheduler + Ω-free memory diet: agreement proven AND
    // timed at setup (each power-law dataset compiles its one shared
    // program at construction — see `check_sched`).
    let sched_stats = check_sched(seed, smoke, threads, sched_entities);

    // Career specs were stamped by `Dataset::spec`, wide scenarios by
    // `cr_data::gen` — every workload's program now exists. From here on,
    // nothing may compile: resolutions and encode measurements only
    // *project* entities through the per-dataset programs.
    let compiles_at_setup = compile_count();

    let mut report = BenchReport::new("compiled-program-engine");
    report.context("entities_per_dataset", entities);
    report.context("seed", seed);
    report.context("max_rounds", rounds);
    report.context("reps", reps);
    report.context("threads", threads);
    report.context("programs_compiled_at_setup", compiles_at_setup);

    let mut total_scratch = 0.0;
    let mut total_lazy = 0.0;
    let mut total_eager = 0.0;
    let mut total_rebuilds = 0;
    let mut lazy_injection_seen = false;
    let mut retraction_replays_seen = 0;
    for w in &workloads {
        let (rebuilds, injected, retraction) = check_agreement(w, rounds);
        total_rebuilds += rebuilds;
        lazy_injection_seen |= injected > 0;
        retraction_replays_seen += retraction.replays;
        report.context(format!("rebuilds/{}", w.label), rebuilds);
        report.context(format!("injected_axioms/{}", w.label), injected);
        report.context(format!("retraction/{}/replays", w.label), retraction.replays);
        report.context(format!("retraction/{}/invalidated", w.label), retraction.invalidated);
        report.context(format!("retraction/{}/full_resets", w.label), retraction.full_resets);
        let per_round = if retraction.rounds_with_retraction > 0 {
            retraction.invalidated as f64 / retraction.rounds_with_retraction as f64
        } else {
            0.0
        };
        report.context(
            format!("retraction/{}/invalidated_per_round", w.label),
            format!("{per_round:.2}"),
        );
        if rebuilds != 0 {
            eprintln!("{:>8}: ZERO-REBUILD VIOLATION: {rebuilds} engine rebuilds", w.label);
        } else {
            println!(
                "{:>8}: rebuilds 0, injected axioms {injected}, retraction replays {}                  ({} literals invalidated, {:.2}/round, {} full resets)",
                w.label, retraction.replays, retraction.invalidated, per_round,
                retraction.full_resets,
            );
        }
        // Uniform revision telemetry: interactive workloads have no
        // revision stream, so the explicit zero distinguishes "nothing
        // scheduled" from a dead counter on the ingest workload below.
        report.context(format!("revisions/{}/events", w.label), 0);
        report.context(format!("revisions/{}/invalidated", w.label), 0);
        println!(
            "{:>8}: revisions 0 events, 0 cone literals (no revision stream scheduled)",
            w.label
        );

        let enc = encode_stats(w, if smoke { 1 } else { reps });
        report.context(format!("encode_clauses/{}/eager", w.label), enc.eager_clauses);
        report.context(format!("encode_clauses/{}/lazy", w.label), enc.lazy_clauses);
        report.measure(format!("encode_round0/{}/eager", w.label), enc.eager_secs);
        report.measure(format!("encode_round0/{}/lazy", w.label), enc.lazy_secs);
        println!(
            "{:>8}: round-0 clauses eager {} -> lazy {} ({:.1}x fewer), encode {:.4}s -> {:.4}s",
            w.label,
            enc.eager_clauses,
            enc.lazy_clauses,
            enc.eager_clauses as f64 / enc.lazy_clauses.max(1) as f64,
            enc.eager_secs,
            enc.lazy_secs,
        );
        if smoke {
            // Exercise the parallel fan-out at the requested width so the
            // multi-thread path cannot rot silently in CI.
            check_parallel(w, rounds, threads);
            continue;
        }

        let scratch = time_serial(w, EncodeOptions::eager(), false, rounds, reps);
        let eager = time_serial(w, EncodeOptions::eager(), true, rounds, reps);
        let lazy = time_serial(w, EncodeOptions::lazy(), true, rounds, reps);
        let parallel = time_parallel(w, rounds, reps, threads);
        total_scratch += scratch;
        total_eager += eager;
        total_lazy += lazy;
        report.measure(format!("end_to_end/{}/scratch", w.label), scratch);
        report.measure(format!("end_to_end/{}/incremental_eager", w.label), eager);
        report.measure(format!("end_to_end/{}/incremental", w.label), lazy);
        report.measure(format!("end_to_end/{}/incremental_parallel", w.label), parallel);
        println!(
            "{:>8}: scratch {:>8.4}s  eager-inc {:>8.4}s  lazy-inc {:>8.4}s  ({:.2}x vs scratch, {:.2}x vs eager)  parallel {:>8.4}s",
            w.label,
            scratch,
            eager,
            lazy,
            scratch / lazy,
            eager / lazy,
            parallel,
        );
    }
    // Push-based ingestion: replay-vs-scratch was verified at setup
    // (`check_ingest` aborts on divergence); report its telemetry and time
    // the unchecked production path (`resolve_with_revisions`).
    let ingest_secs = time_ingest(&ingest, rounds, if smoke { 1 } else { reps }, &mut ingest_stats);
    total_rebuilds += ingest_stats.rebuilds;
    report.context("rebuilds/ingest", ingest_stats.rebuilds);
    report.context("revisions/ingest/events", ingest_stats.events);
    report.context("revisions/ingest/retracted_groups", ingest_stats.retracted_groups);
    report.context("revisions/ingest/invalidated", ingest_stats.invalidated);
    report.context("revisions/ingest/reemitted_clauses", ingest_stats.reemitted_clauses);
    println!(
        "{:>8}: revisions {} events, {} groups retracted, {} cone literals, {} clauses re-emitted (replay ≡ scratch verified)",
        "ingest",
        ingest_stats.events,
        ingest_stats.retracted_groups,
        ingest_stats.invalidated,
        ingest_stats.reemitted_clauses,
    );
    if !smoke {
        report.measure("end_to_end/ingest/incremental_revisions", ingest_secs);
        println!(
            "{:>8}: revision-streamed end-to-end {ingest_secs:.4}s (lazy incremental, {} rebuilds)",
            "ingest", ingest_stats.rebuilds,
        );
    }

    // Batched ingestion: divergence and cone gates already enforced inside
    // `check_ingest_batch` (it aborts); report the coalescing telemetry and
    // the per-event vs batched cost.
    report.context("revisions/ingest-batch/batches", batch_stats.batches);
    report.context("revisions/ingest-batch/events", batch_stats.events);
    report.context("revisions/ingest-batch/events_coalesced", batch_stats.coalesced);
    report.context("revisions/ingest-batch/cone_union", batch_stats.cone_union);
    report.context("revisions/ingest-batch/max_member_cone", batch_stats.max_member_cone);
    report.context("revisions/ingest-batch/replays_saved", batch_stats.replays_saved);
    println!(
        "{:>8}: {} batches / {} events, {} coalesced, union cones {} (members max {}), {} replays saved (batched ≡ sequential ≡ scratch verified, {} threads)",
        "in-batch",
        batch_stats.batches,
        batch_stats.events,
        batch_stats.coalesced,
        batch_stats.cone_union,
        batch_stats.max_member_cone,
        batch_stats.replays_saved,
        threads,
    );
    if !smoke {
        let (per_event_secs, batched_secs) = time_ingest_batch(&ingest, reps);
        report.measure("end_to_end/ingest-batch/per_event", per_event_secs);
        report.measure("end_to_end/ingest-batch/batched", batched_secs);
        println!(
            "{:>8}: per-event {per_event_secs:.4}s -> batched {batched_secs:.4}s ({:.2}x)",
            "in-batch",
            per_event_secs / batched_secs.max(1e-9),
        );
    }

    // Causal chaos workload: telemetry with explicit zeros, convergence
    // already enforced by `check_chaos` (it aborts on divergence).
    total_rebuilds += chaos_stats.rebuilds;
    report.context("rebuilds/ingest-chaos", chaos_stats.rebuilds);
    report.context("revisions/ingest-chaos/applied", chaos_stats.applied);
    report.context(
        "revisions/ingest-chaos/duplicates_dropped",
        chaos_stats.duplicates_dropped,
    );
    report.context("revisions/ingest-chaos/buffered", chaos_stats.buffered);
    report.context("revisions/ingest-chaos/quarantined", chaos_stats.quarantined);
    report.context("revisions/ingest-chaos/reopened", chaos_stats.reopened);
    println!(
        "{:>8}: {} applied, {} duplicates dropped, {} buffered, {} quarantined, {} re-opened (4-way convergence verified)",
        "in-chaos",
        chaos_stats.applied,
        chaos_stats.duplicates_dropped,
        chaos_stats.buffered,
        chaos_stats.quarantined,
        chaos_stats.reopened,
    );
    if !smoke {
        report.measure("end_to_end/ingest-chaos/causal_checked", chaos_stats.secs);
    }

    // Durable-session rehydration: telemetry always, timings outside smoke.
    report.context("rehydrate/events_logged", rehydrate.events_logged);
    report.context("rehydrate/log_bytes", rehydrate.log_bytes);
    report.context("rehydrate/events_replayed", rehydrate.events_replayed);
    report.context("rehydrate/snapshots_used", rehydrate.snapshots_used);
    report.context("rehydrate/checksum_failures", rehydrate.checksum_failures);
    report.context("rehydrate/corrupt_truncations", rehydrate.corrupt_truncations);
    println!(
        "{:>8}: {} events logged ({} bytes), {} replayed across recoveries, {} snapshot restores (rehydrate ≡ scratch verified)",
        "rehydr8",
        rehydrate.events_logged,
        rehydrate.log_bytes,
        rehydrate.events_replayed,
        rehydrate.snapshots_used,
    );
    if !smoke {
        report.measure("rehydrate/full_replay", rehydrate.full_replay_secs);
        report.measure("rehydrate/snapshot_tail", rehydrate.snapshot_tail_secs);
        println!(
            "{:>8}: full replay {:.4}s -> snapshot+tail {:.4}s per recovery ({:.2}x)",
            "rehydr8",
            rehydrate.full_replay_secs,
            rehydrate.snapshot_tail_secs,
            rehydrate.full_replay_secs / rehydrate.snapshot_tail_secs.max(1e-9),
        );
    }

    // Serving layer: throughput and latency percentiles per wire, plus the
    // admission/retry telemetry the gates below inspect. The differentials
    // (exactly-once, canonical replay) already ran inside `check_serve`.
    for (wire, run) in [("clean", &serve_clean), ("faulty", &serve_faulty)] {
        let r = &run.report;
        let mut lat = r.latencies.clone();
        lat.sort_unstable();
        let (p50, p95, p99) =
            (percentile(&lat, 50.0), percentile(&lat, 95.0), percentile(&lat, 99.0));
        report.context(format!("serve/{wire}/ops"), r.ops);
        report.context(format!("serve/{wire}/ticks"), r.ticks);
        report.context(format!("serve/{wire}/retries"), r.retries);
        report.context(format!("serve/{wire}/shed"), r.serve.shed_rate + r.serve.shed_queue);
        report.context(format!("serve/{wire}/idem_replays"), r.serve.idem_hits);
        report.context(format!("serve/{wire}/disconnects"), r.disconnects);
        report.context(format!("serve/{wire}/latency_ticks_p50"), p50);
        report.context(format!("serve/{wire}/latency_ticks_p95"), p95);
        report.context(format!("serve/{wire}/latency_ticks_p99"), p99);
        if !smoke {
            report.measure(format!("serve/{wire}/wall"), run.secs);
            report.context(
                format!("serve/{wire}/ops_per_sec"),
                format!("{:.0}", r.ops as f64 / run.secs.max(1e-9)),
            );
        }
        println!(
            "{:>8}: {wire} wire {} ops / {} ticks ({:.3} ops/tick), latency p50/p95/p99 \
             {p50}/{p95}/{p99} ticks, {} retries, {} shed, {} idempotent replays",
            "serve",
            r.ops,
            r.ticks,
            r.ops as f64 / r.ticks.max(1) as f64,
            r.retries,
            r.serve.shed_rate + r.serve.shed_queue,
            r.serve.idem_hits,
        );
    }

    // Work-stealing scheduler: serial ≡ parallel was asserted inside
    // `check_sched` (it aborts on divergence); report the telemetry and
    // the Ω-free memory diet, then gate on liveness below.
    let sb = &sched_stats.batch;
    report.context("sched/entities", sched_stats.liveness_entities);
    report.context("sched/workers", sb.workers);
    report.context("sched/tasks", sb.tasks);
    report.context("sched/steals", sb.steals);
    report.context("sched/batch_tasks", sb.batch_tasks);
    report.context("sched/batched_entities", sb.batched_entities);
    report.context("sched/max_batch", sb.max_batch);
    report.context("sched/split_entities", sb.split_entities);
    report.context("sched/split_subtasks", sb.split_subtasks);
    report.context("sched/scratch_reuses", sb.scratch_reuses);
    report.context("sched/stream/queue_high_water", sched_stats.stream.queue_high_water);
    report.context("sched/stream/backpressure_stalls", sched_stats.stream.backpressure_stalls);
    println!(
        "{:>8}: {} entities / {} workers: {} tasks ({} steals), {} batches fusing {} entities (max {}), {} split into {} subtasks, {} scratch reuses (skewed batch ≡ serial verified)",
        "sched",
        sched_stats.liveness_entities,
        sb.workers,
        sb.tasks,
        sb.steals,
        sb.batch_tasks,
        sb.batched_entities,
        sb.max_batch,
        sb.split_entities,
        sb.split_subtasks,
        sb.scratch_reuses,
    );
    println!(
        "{:>8}: clean stream high-water {} / cap {}, {} backpressure stalls (stream ≡ serial verified)",
        "sched",
        sched_stats.stream.queue_high_water,
        sched_stats.liveness_entities + 1,
        sched_stats.stream.backpressure_stalls,
    );
    let per_entity = |bytes: usize| bytes / sched_stats.sample.max(1);
    report.context("sched/bytes_per_entity/omega_free", per_entity(sched_stats.lean_bytes));
    report.context("sched/bytes_per_entity/retained_omega", per_entity(sched_stats.fat_bytes));
    report.context("sched/bytes_per_entity/omega_only", per_entity(sched_stats.fat_omega_bytes));
    println!(
        "{:>8}: memory diet over {} sampled entities: {} B/entity Ω-free vs {} B/entity retained ({} B/entity of Ω dropped, CNF identical)",
        "sched",
        sched_stats.sample,
        per_entity(sched_stats.lean_bytes),
        per_entity(sched_stats.fat_bytes),
        per_entity(sched_stats.fat_omega_bytes),
    );
    if let Some(st) = &sched_stats.scale {
        report.context("sched/scale/entities", sched_stats.scale_entities);
        report.context("sched/scale/tasks", st.tasks);
        report.context("sched/scale/steals", st.steals);
        report.context("sched/scale/queue_high_water", st.queue_high_water);
        report.context("sched/scale/backpressure_stalls", st.backpressure_stalls);
        report.measure("end_to_end/sched/serial", sched_stats.scale_serial_secs);
        report.measure("end_to_end/sched/stream", sched_stats.scale_stream_secs);
        println!(
            "{:>8}: {} entities at scale: serial {:.2}s, streamed {:.2}s ({} tasks, {} steals, queue high-water {}, {} stalls; digest ≡ serial)",
            "sched",
            sched_stats.scale_entities,
            sched_stats.scale_serial_secs,
            sched_stats.scale_stream_secs,
            st.tasks,
            st.steals,
            st.queue_high_water,
            st.backpressure_stalls,
        );
    }

    report.context("rebuilds_total", total_rebuilds);
    if !smoke {
        let speedup = total_scratch / total_lazy;
        report.measure("end_to_end/total/scratch", total_scratch);
        report.measure("end_to_end/total/incremental_eager", total_eager);
        report.measure("end_to_end/total/incremental", total_lazy);
        report.context("speedup_lazy_vs_scratch", format!("{speedup:.2}"));
        report.context(
            "speedup_lazy_vs_eager_incremental",
            format!("{:.2}", total_eager / total_lazy),
        );
        println!(
            "overall: lazy incremental {speedup:.2}x vs scratch, {:.2}x vs eager incremental",
            total_eager / total_lazy
        );
        report.write(&out).expect("write bench report");
        println!("wrote {out}");
    }
    if total_rebuilds != 0 {
        eprintln!("FAIL: incremental engine rebuilt {total_rebuilds} times (expected 0)");
        std::process::exit(1);
    }
    if !lazy_injection_seen {
        eprintln!("FAIL: lazy path recorded no injected axioms on any workload (telemetry dead?)");
        std::process::exit(1);
    }
    // Compile-once invariant: every program was compiled during workload
    // setup; resolving entities (any path, any round count) and measuring
    // encodes must never trigger another compilation.
    let late_compiles = compile_count() - compiles_at_setup;
    if late_compiles != 0 {
        eprintln!(
            "FAIL: {late_compiles} constraint program(s) compiled during              resolution (expected 0 — compile-once-per-dataset violated)"
        );
        std::process::exit(1);
    }
    // The wide workload's new-value answers retract CFD groups: the
    // provenance replay telemetry must be alive.
    if retraction_replays_seen == 0 {
        eprintln!("FAIL: no retraction replays recorded on any workload (telemetry dead?)");
        std::process::exit(1);
    }
    // The ingest workload's corrections withdraw *fired* CFDs and
    // load-bearing orders: its retraction cones must be non-empty — the
    // end-to-end proof that provenance-scoped partial invalidation runs on
    // a live path, not just at the cr-sat unit level.
    if ingest_stats.invalidated == 0 {
        eprintln!(
            "FAIL: ingest workload invalidated no literals (revision cones empty — telemetry dead or events missed their derivations)"
        );
        std::process::exit(1);
    }
    if ingest_stats.events == 0 {
        eprintln!("FAIL: ingest workload applied no revision events");
        std::process::exit(1);
    }
    // Coalescing gates: the batched path must actually merge multi-event
    // rounds into single replays (its divergence and per-batch cone gates
    // already ran inside `check_ingest_batch`).
    if batch_stats.coalesced == 0 {
        eprintln!(
            "FAIL: ingest-batch coalesced no events (batched ingestion never merged a multi-event round)"
        );
        std::process::exit(1);
    }
    if batch_stats.cone_union < batch_stats.max_member_cone {
        eprintln!(
            "FAIL: ingest-batch union cones {} smaller than member cones {}",
            batch_stats.cone_union, batch_stats.max_member_cone
        );
        std::process::exit(1);
    }
    // Causal-stream gates: the chaos workload must actually exercise the
    // re-open, dedup and buffering paths, and its clean streams must never
    // quarantine anything.
    if chaos_stats.reopened == 0 {
        eprintln!("FAIL: ingest-chaos re-opened no attributes (concurrent-correction path dead)");
        std::process::exit(1);
    }
    if chaos_stats.duplicates_dropped == 0 {
        eprintln!("FAIL: ingest-chaos dropped no duplicates (frontier dedup path dead)");
        std::process::exit(1);
    }
    if chaos_stats.buffered == 0 {
        eprintln!("FAIL: ingest-chaos buffered no events (causal gating path dead)");
        std::process::exit(1);
    }
    if chaos_stats.quarantined != 0 {
        eprintln!(
            "FAIL: ingest-chaos quarantined {} events on clean streams (expected 0)",
            chaos_stats.quarantined
        );
        std::process::exit(1);
    }
    // Serving gates: the clean-wire fleet must converge without a single
    // retry, and the hostile-wire fleet must actually exercise admission
    // control and the retry loop — zero shed or zero retries means the
    // fault injection (or its telemetry) is dead.
    if serve_clean.report.retries != 0 {
        eprintln!(
            "FAIL: clean-wire serve workload retried {} times (expected 0)",
            serve_clean.report.retries
        );
        std::process::exit(1);
    }
    if serve_faulty.report.serve.shed_rate + serve_faulty.report.serve.shed_queue == 0 {
        eprintln!("FAIL: faulty serve workload shed nothing (admission control dead?)");
        std::process::exit(1);
    }
    if serve_faulty.report.retries == 0 {
        eprintln!("FAIL: faulty serve workload needed no retries (fault injection dead?)");
        std::process::exit(1);
    }
    // Scheduler gates: under skewed placement the non-owner workers live
    // entirely off steals, small entities must fuse into batch tasks, the
    // pinned giant must split, and the clean stream (queue capacity above
    // the entity count) must never record a backpressure stall.
    if sched_stats.batch.steals == 0 {
        eprintln!("FAIL: sched recorded no steals under skewed placement (steal path dead)");
        std::process::exit(1);
    }
    if sched_stats.batch.batch_tasks == 0 {
        eprintln!("FAIL: sched fused no small-entity batches (batching path dead)");
        std::process::exit(1);
    }
    if sched_stats.batch.split_entities == 0 {
        eprintln!("FAIL: sched split no giant entities (Ω-split path dead)");
        std::process::exit(1);
    }
    if sched_stats.stream.backpressure_stalls != 0 {
        eprintln!(
            "FAIL: clean stream recorded {} backpressure stalls (expected 0 — the queue was never full)",
            sched_stats.stream.backpressure_stalls
        );
        std::process::exit(1);
    }
    // Durability gates: recovery must actually replay the log, and a clean
    // log must never report corruption.
    if rehydrate.events_replayed == 0 {
        eprintln!("FAIL: rehydrate workload replayed no events (recovery path dead)");
        std::process::exit(1);
    }
    if rehydrate.checksum_failures != 0 || rehydrate.corrupt_truncations != 0 {
        eprintln!(
            "FAIL: rehydrate workload reported corruption on a clean log ({} checksum failures, {} truncations)",
            rehydrate.checksum_failures, rehydrate.corrupt_truncations
        );
        std::process::exit(1);
    }
    println!(
        "compile-once OK ({compiles_at_setup} programs at setup, 0 during resolution);          retraction replays {retraction_replays_seen}, revision cone literals {}",
        ingest_stats.invalidated
    );
}
