/root/repo/target/debug/deps/fig8_interactions-57b60e61219a86a6.d: crates/cr-bench/src/bin/fig8_interactions.rs

/root/repo/target/debug/deps/fig8_interactions-57b60e61219a86a6: crates/cr-bench/src/bin/fig8_interactions.rs

crates/cr-bench/src/bin/fig8_interactions.rs:
