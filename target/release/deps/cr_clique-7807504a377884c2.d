/root/repo/target/release/deps/cr_clique-7807504a377884c2.d: crates/cr-clique/src/lib.rs crates/cr-clique/src/exact.rs crates/cr-clique/src/graph.rs crates/cr-clique/src/greedy.rs

/root/repo/target/release/deps/libcr_clique-7807504a377884c2.rlib: crates/cr-clique/src/lib.rs crates/cr-clique/src/exact.rs crates/cr-clique/src/graph.rs crates/cr-clique/src/greedy.rs

/root/repo/target/release/deps/libcr_clique-7807504a377884c2.rmeta: crates/cr-clique/src/lib.rs crates/cr-clique/src/exact.rs crates/cr-clique/src/graph.rs crates/cr-clique/src/greedy.rs

crates/cr-clique/src/lib.rs:
crates/cr-clique/src/exact.rs:
crates/cr-clique/src/graph.rs:
crates/cr-clique/src/greedy.rs:
