//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The paper's `IsValid` algorithm (Section V-A) reduces specification
//! validity to SAT and hands the CNF `Φ(Se)` to MiniSat. This crate is a
//! from-scratch MiniSat-class solver providing everything the conflict
//! resolution stack needs:
//!
//! * two-watched-literal unit propagation,
//! * first-UIP clause learning with recursive minimisation,
//! * VSIDS variable activities with phase saving,
//! * Luby restarts and activity-based learnt-clause database reduction,
//! * incremental solving under assumptions (used by `NaiveDeduce` and the
//!   exact true-value queries),
//! * *retractable clause groups* for the zero-rebuild interaction loop:
//!   the solver activates guard literals as persistent assumptions
//!   ([`Solver::set_persistent_assumptions`]) so a group can be withdrawn
//!   by a single root unit, and the unit propagator tags clauses with group
//!   ids and re-derives its fixpoint on [`UnitPropagator::retract_group`],
//! * *lazy axiom instantiation* ([`LazyAxiomSource`], [`lazy`]): large
//!   axiom schemes stay unmaterialised; the solver's CEGAR-style
//!   [`Solver::solve_lazy_with_assumptions`] and the propagator's
//!   [`UnitPropagator::propagate_to_fixpoint_lazy`] pull violated/unit
//!   instances on demand,
//! * a caller-driven learnt-database sweep ([`Solver::compact_learnts`])
//!   keyed to interaction-round boundaries, and
//! * a standalone root-level unit-propagation engine mirroring the
//!   clause-reduction loop of `DeduceOrder` (Fig. 5 of the paper).
//!
//! # Example
//! ```
//! use cr_sat::{Cnf, Solver, SolveResult};
//!
//! let mut cnf = Cnf::new();
//! let a = cnf.new_var();
//! let b = cnf.new_var();
//! cnf.add_clause([a.positive(), b.positive()]);
//! cnf.add_clause([a.negative()]);
//! let mut solver = Solver::from_cnf(&cnf);
//! match solver.solve() {
//!     SolveResult::Sat => assert_eq!(solver.model_value(b), Some(true)),
//!     SolveResult::Unsat => unreachable!(),
//! }
//! ```

pub mod cnf;
pub mod dimacs;
pub mod lazy;
pub mod lit;
pub mod solver;
pub mod stats;
pub mod unit_propagation;

pub use cnf::Cnf;
pub use lazy::LazyAxiomSource;
pub use lit::{Lit, Var};
pub use solver::{SolveResult, Solver, SolverScratch};
pub use stats::SolverStats;
pub use unit_propagation::{UnitPropagator, UpOutcome, NO_GROUP};
