/root/repo/target/debug/deps/framework_end_to_end-37f50b389a35f529.d: tests/framework_end_to_end.rs

/root/repo/target/debug/deps/framework_end_to_end-37f50b389a35f529: tests/framework_end_to_end.rs

tests/framework_end_to_end.rs:
