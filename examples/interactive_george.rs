//! Interactive resolution: the sailor from the photograph (Examples 3, 6,
//! 9–13 of the paper).
//!
//! George's records leave most attributes ambiguous: automatic deduction
//! finds only `name` and `kids` (Example 3). The framework then computes a
//! *suggestion* — a minimum set of attributes whose validation unlocks the
//! rest. For George that is exactly `{status}` with candidates
//! `{retired, unemployed}` (Example 12); once the user answers
//! `status = retired`, every other attribute cascades (Example 9).
//!
//! Run: `cargo run --example interactive_george`

use conflict_resolution::core::framework::render_resolved;
use conflict_resolution::core::{
    deduce_order, suggest, true_values_from_orders, EncodedSpec, Specification, UserInput,
};
use conflict_resolution::data::vjday;
use conflict_resolution::types::Value;

fn show_deduction(spec: &Specification) -> (EncodedSpec, bool) {
    let enc = EncodedSpec::encode(spec);
    let od = deduce_order(&enc).expect("valid specification");
    let known = true_values_from_orders(&enc, &od);
    println!("  deduced so far: {}", render_resolved(spec.schema(), &known));
    (enc, known.complete())
}

fn main() {
    let spec = vjday::george_spec();
    println!("Entity instance E2 (Fig. 2):");
    for (id, tuple) in spec.entity().iter() {
        println!("  r{}: {}", id.0 + 4, tuple.display(spec.schema()));
    }

    // Step 1-2 of the framework: validity + automatic deduction.
    println!("\nRound 0 — automatic deduction only:");
    let enc = EncodedSpec::encode(&spec);
    let od = deduce_order(&enc).expect("valid specification");
    let known = true_values_from_orders(&enc, &od);
    println!("  deduced: {}", render_resolved(spec.schema(), &known));
    assert_eq!(known.known_count(), 2, "Example 3: only name and kids");

    // Step 4: suggestion generation (Example 12).
    let sug = suggest(&spec, &enc, &od, &known);
    println!("\nSuggestion (ask the user about these attributes):");
    for (attr, candidates) in &sug.ask {
        let cands: Vec<String> = candidates.iter().map(|v| v.to_string()).collect();
        println!(
            "  {} — candidates: {{{}}}",
            spec.schema().attr_name(*attr),
            cands.join(", ")
        );
    }
    println!("Derivable once answered: {:?}",
        sug.derived.iter().map(|a| spec.schema().attr_name(*a)).collect::<Vec<_>>());
    println!("Selected derivation rules:");
    for rule in &sug.rules {
        println!("  {}", rule.display(&enc, spec.schema()));
    }

    // The user validates status = retired (Example 9).
    println!("\nUser answers: status = retired");
    let status = spec.schema().attr_id("status").expect("attr");
    let input = UserInput::single(status, Value::str("retired"));
    let (extended, _, ot_size) = spec.apply_user_input(&input);
    println!("  |Ot| added: {ot_size}");

    println!("\nRound 1 — after the answer:");
    let (_, complete) = show_deduction(&extended);
    assert!(complete, "Example 9: everything cascades from status");

    println!("\nmatches the paper's Example 9 exactly:");
    println!("  (George, retired, veteran, 2, NY, 212, 12404, Accord)");
}
