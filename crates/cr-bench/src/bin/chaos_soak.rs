//! Time-boxed chaos soak for causally-stamped correction ingestion.
//!
//! Loops over randomized scenarios × causal timelines for `--seconds`
//! wall-clock seconds (default 60), and for each scenario runs four
//! delivery regimes through [`resolve_causal_checked`] — which itself
//! verifies the replayed engine ≡ from-scratch re-resolution after every
//! effective batch:
//!
//! 1. **canonical interactive** — the causally-clean baseline;
//! 2. **schedule-preserving chaos** (within-round reorder + duplicates),
//!    interactive — must converge to the exact canonical outcome;
//! 3. **canonical vs adversarial chaos** (cross-round delays splitting and
//!    merging batches), both drain-first — must converge post-drain;
//! 4. **corrupt injection** under the quarantine policy — exactly the
//!    injected events must land in the quarantine log, and the clean
//!    remainder must still converge;
//! 5. **per-event vs batched ingestion** — the canonical timeline is
//!    re-run with `max_batch = 1` (every event its own batch) and must
//!    reproduce the seeded-split baseline's exact outcome and trajectory.
//!
//! Each iteration seeds a batch split (`CausalReplayConfig::max_batch` ∈
//! {0 = whole poll, 1 = per event, 2, 3}) applied to every regime, so the
//! soak interleaves coalesced and event-at-a-time ingestion across seeds
//! — delivered state must never depend on the partition.
//!
//! Exits nonzero on any convergence divergence, any quarantine in a clean
//! run, a wrong quarantine count in the corrupt run, or any panic
//! (propagated). Designed for CI: `--seconds 45` keeps the step well under
//! its 90-second budget.
//!
//! Flags: `--seconds S` (default 60), `--seed S` (base seed, default 1).

use std::time::Instant;

use cr_bench::{arg_seed, arg_value};
use cr_core::causal::{
    resolve_causal_checked, CausalCheckedReplay, CausalReplayConfig, ScriptedCausalRevisions,
};
use cr_core::framework::{GroundTruthOracle, ResolutionConfig};
use cr_core::ingest::RevisionPolicy;
use cr_data::chaos::{chaos, ChaosConfig};
use cr_data::gen::{causal_timeline, scenario_from_raw, CausalTimelineConfig, Scenario};

struct Totals {
    scenarios: usize,
    events: usize,
    coalesced: usize,
    duplicates: usize,
    buffered: usize,
    reopened: usize,
    quarantined: usize,
    checks: usize,
}

fn main() {
    let budget: f64 = arg_value("seconds").and_then(|v| v.parse().ok()).unwrap_or(60.0);
    let base_seed = arg_seed(1);
    let config = ResolutionConfig::default();

    let mut totals = Totals {
        scenarios: 0,
        events: 0,
        coalesced: 0,
        duplicates: 0,
        buffered: 0,
        reopened: 0,
        quarantined: 0,
        checks: 0,
    };
    let start = Instant::now();
    let mut iter = 0u64;
    while start.elapsed().as_secs_f64() < budget {
        // Reproduce any failure with `--seed <base_seed>` and the printed
        // iteration: the failing seed is derived, not sequential.
        let iteration = iter;
        let seed = base_seed.wrapping_add(iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        iter += 1;
        // Scenario shapes cycle through small sizes so one iteration stays
        // in the tens of milliseconds and the soak covers many seeds.
        let tuples = 2 + (seed % 12) as usize;
        let domain = 2 + (seed / 12 % 8) as usize;
        let density = (seed / 96 % 100) as u32;
        let events = 2 + (seed / 7 % 6) as usize;
        let sources = 1 + (seed / 5 % 3) as usize;
        // Seeded batch split, applied to every regime this iteration: 0
        // ingests each poll as one coalesced batch, 1 degenerates to
        // event-at-a-time, 2/3 chunk polls mid-stream. Delivered state
        // must never depend on the partition.
        let max_batch = (seed / 11 % 4) as usize;
        let interactive = CausalReplayConfig { max_batch, ..CausalReplayConfig::default() };
        let per_event = CausalReplayConfig { max_batch: 1, ..CausalReplayConfig::default() };
        let drain_first = CausalReplayConfig {
            policy: RevisionPolicy::Reject,
            interact_while_streaming: false,
            max_batch,
        };
        let quarantine = CausalReplayConfig {
            policy: RevisionPolicy::Quarantine,
            interact_while_streaming: false,
            max_batch,
        };
        let Scenario { spec, truth } =
            scenario_from_raw(seed, tuples, domain, density, iter.is_multiple_of(2));
        let timeline = causal_timeline(
            &spec,
            &CausalTimelineConfig {
                seed: seed.wrapping_mul(131).wrapping_add(7),
                sources,
                events,
                rounds: 3,
                // Burst polls: generated rounds carry multi-event batches,
                // so coalescing has real work across seeds.
                burst: 1 + (seed / 17 % 3) as usize,
                ..Default::default()
            },
        );

        let run = |source: ScriptedCausalRevisions,
                   causal: &CausalReplayConfig,
                   what: &str|
         -> CausalCheckedReplay {
            let mut oracle = GroundTruthOracle::with_cap(truth.clone(), 1);
            let mut source = source;
            resolve_causal_checked(&config, &spec, &mut oracle, &mut source, causal)
                .unwrap_or_else(|e| {
                    eprintln!(
                        "FAIL: seed {seed} iteration {iteration}: {what} run diverged from scratch: {e}"
                    );
                    std::process::exit(1);
                })
        };
        let diverged = |what: &str, a: &CausalCheckedReplay, b: &CausalCheckedReplay| {
            if a.resolved != b.resolved || a.valid != b.valid || a.complete != b.complete {
                eprintln!(
                    "FAIL: seed {seed} iteration {iteration}: {what} diverged from its baseline"
                );
                std::process::exit(1);
            }
        };

        // 1+2: canonical vs schedule-preserving chaos, fully interactive.
        let base = run(ScriptedCausalRevisions::new(timeline.clone()), &interactive, "canonical");
        let sp = run(
            chaos(&timeline, &spec, &ChaosConfig::schedule_preserving(seed ^ 0xA5)),
            &interactive,
            "schedule-preserving",
        );
        diverged("schedule-preserving chaos", &sp, &base);
        if sp.interactions != base.interactions || sp.revisions.reopened != base.revisions.reopened
        {
            eprintln!(
                "FAIL: seed {seed} iteration {iteration}: schedule-preserving trajectory diverged"
            );
            std::process::exit(1);
        }
        if base.revisions.quarantined + sp.revisions.quarantined != 0 {
            eprintln!(
                "FAIL: seed {seed} iteration {iteration}: clean interactive runs quarantined events"
            );
            std::process::exit(1);
        }

        // 5: per-event vs batched ingestion of the same canonical stream —
        // the partition must not leak into outcome or trajectory.
        let pe = run(
            ScriptedCausalRevisions::new(timeline.clone()),
            &per_event,
            "per-event",
        );
        diverged("per-event vs batched ingestion", &pe, &base);
        if pe.interactions != base.interactions || pe.revisions.reopened != base.revisions.reopened
        {
            eprintln!(
                "FAIL: seed {seed} iteration {iteration}: per-event trajectory diverged from batched (max_batch {max_batch})"
            );
            std::process::exit(1);
        }

        // 3: adversarial delays, drain-first both sides.
        let base_df =
            run(ScriptedCausalRevisions::new(timeline.clone()), &drain_first, "drain-first");
        let adv = run(
            chaos(&timeline, &spec, &ChaosConfig::adversarial(seed ^ 0x5A)),
            &drain_first,
            "adversarial",
        );
        diverged("adversarial chaos", &adv, &base_df);
        if base_df.revisions.quarantined + adv.revisions.quarantined != 0 {
            eprintln!(
                "FAIL: seed {seed} iteration {iteration}: clean drain-first runs quarantined events"
            );
            std::process::exit(1);
        }

        // 4: corrupt injection — all of it quarantined, nothing else, and
        // the clean remainder still converges.
        let corrupt = 1 + (seed % 3) as usize;
        let cor = run(
            chaos(
                &timeline,
                &spec,
                &ChaosConfig { corrupt, ..ChaosConfig::adversarial(seed ^ 0xC0) },
            ),
            &quarantine,
            "corrupt",
        );
        if cor.revisions.quarantined != corrupt || cor.quarantined.len() != corrupt {
            eprintln!(
                "FAIL: seed {seed} iteration {iteration}: {} of {corrupt} corrupt events quarantined",
                cor.revisions.quarantined
            );
            std::process::exit(1);
        }
        diverged("corrupt-stream remainder", &cor, &base_df);

        totals.scenarios += 1;
        totals.events += base.revisions.events;
        totals.coalesced += base.revisions.events_coalesced;
        totals.duplicates += sp.revisions.duplicates_dropped + adv.revisions.duplicates_dropped;
        totals.buffered += adv.revisions.buffered + cor.revisions.buffered;
        totals.reopened += base.revisions.reopened;
        totals.quarantined += cor.revisions.quarantined;
        totals.checks +=
            base.checks + sp.checks + pe.checks + base_df.checks + adv.checks + cor.checks;
    }

    println!(
        "chaos soak OK: {} scenarios in {:.1}s — {} events applied ({} coalesced), {} duplicates dropped, {} buffered, {} re-opened, {} corrupt quarantined, {} scratch-equivalence checks",
        totals.scenarios,
        start.elapsed().as_secs_f64(),
        totals.events,
        totals.coalesced,
        totals.duplicates,
        totals.buffered,
        totals.reopened,
        totals.quarantined,
        totals.checks,
    );
    if totals.scenarios == 0 {
        eprintln!("FAIL: soak budget too small to run a single scenario");
        std::process::exit(1);
    }
}
