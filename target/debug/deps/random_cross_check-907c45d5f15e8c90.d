/root/repo/target/debug/deps/random_cross_check-907c45d5f15e8c90.d: crates/cr-sat/tests/random_cross_check.rs

/root/repo/target/debug/deps/random_cross_check-907c45d5f15e8c90: crates/cr-sat/tests/random_cross_check.rs

crates/cr-sat/tests/random_cross_check.rs:
