/root/repo/target/release/deps/probe2-72305b28c548e979.d: crates/cr-bench/src/bin/probe2.rs

/root/repo/target/release/deps/probe2-72305b28c548e979: crates/cr-bench/src/bin/probe2.rs

crates/cr-bench/src/bin/probe2.rs:
