/root/repo/target/release/deps/fig8_interactions-b9166c2d99d64ff8.d: crates/cr-bench/src/bin/fig8_interactions.rs

/root/repo/target/release/deps/fig8_interactions-b9166c2d99d64ff8: crates/cr-bench/src/bin/fig8_interactions.rs

crates/cr-bench/src/bin/fig8_interactions.rs:
