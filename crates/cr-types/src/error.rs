//! Error type for the relational substrate.

use std::fmt;

/// Errors raised while constructing schemas, tuples or entity instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypesError {
    /// A schema declared the same attribute name twice.
    DuplicateAttribute(String),
    /// A schema with no attributes was requested.
    EmptySchema,
    /// A schema exceeded the `u16` attribute-id space.
    TooManyAttributes(usize),
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// A tuple was built with the wrong number of values.
    ArityMismatch {
        /// Attributes declared by the schema.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// Tuples from different schemas were mixed in one entity instance.
    SchemaMismatch,
    /// Malformed CSV input.
    Csv(String),
}

impl fmt::Display for TypesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypesError::DuplicateAttribute(a) => write!(f, "duplicate attribute `{a}` in schema"),
            TypesError::EmptySchema => write!(f, "schema must have at least one attribute"),
            TypesError::TooManyAttributes(n) => write!(f, "schema has {n} attributes (max 65535)"),
            TypesError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            TypesError::ArityMismatch { expected, got } => {
                write!(f, "tuple arity mismatch: schema has {expected} attributes, got {got}")
            }
            TypesError::SchemaMismatch => write!(f, "tuples belong to different schemas"),
            TypesError::Csv(msg) => write!(f, "csv error: {msg}"),
        }
    }
}

impl std::error::Error for TypesError {}
