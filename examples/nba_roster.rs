//! Resolving a season of simulated NBA player records (Section VI, Exp-3).
//!
//! Generates the NBA-shaped dataset, resolves a handful of players with the
//! unified currency+consistency method, and compares against the
//! traditional `Pick` baseline.
//!
//! Run: `cargo run --release --example nba_roster`

use conflict_resolution::core::framework::{GroundTruthOracle, ResolutionConfig, Resolver};
use conflict_resolution::core::framework::render_resolved;
use conflict_resolution::core::{pick_baseline, Accuracy};
use conflict_resolution::data::nba::{self, NbaConfig};

fn main() {
    let ds = nba::generate(NbaConfig { entities: 25, seed: 42, ..Default::default() });
    println!("dataset: {}", ds.stats());

    let resolver = Resolver::new(ResolutionConfig { max_rounds: 2, ..Default::default() });
    let mut unified = Accuracy::new();
    let mut pick = Accuracy::new();

    for i in 0..ds.len() {
        let spec = ds.spec(i);
        let truth = ds.truth(i);
        let mut oracle = GroundTruthOracle::with_cap(truth.clone(), 1);
        let outcome = resolver.resolve(&spec, &mut oracle);
        unified.add_entity(&ds.entities[i].0, truth, &outcome.resolved);
        pick.add_entity(&ds.entities[i].0, truth, &pick_baseline(&spec, 42 + i as u64));

        if i < 3 {
            println!(
                "\nplayer_{i}: {} tuples, {} interaction round(s)",
                ds.entities[i].0.len(),
                outcome.interactions
            );
            println!("  resolved: {}", render_resolved(&ds.schema, &outcome.resolved));
            println!("  truth:    {}", truth.display(&ds.schema));
        }
    }

    let fu = unified.f_measure();
    let fp = pick.f_measure();
    println!("\n== accuracy over {} players (≤2 interaction rounds) ==", ds.len());
    println!(
        "unified currency+consistency: P={:.3} R={:.3} F={:.3}",
        fu.precision, fu.recall, fu.f_measure
    );
    println!(
        "Pick baseline:                P={:.3} R={:.3} F={:.3}",
        fp.precision, fp.recall, fp.f_measure
    );
    println!(
        "improvement: {:+.0}% (the paper reports +201% averaged over its datasets)",
        (fu.f_measure / fp.f_measure - 1.0) * 100.0
    );
}
