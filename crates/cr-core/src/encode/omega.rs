//! `Instantiation(Se)`: from a specification to instance constraints Ω(Se).
//!
//! The hot loops — active-domain construction, base-order instantiation and
//! the per-constraint projection grouping and pair instantiation — run on
//! the entity's **instance-local dense value ids**
//! (`EntityInstance::dense_id`, contiguous `u32` rows): equality and null
//! tests are single integer compares, and dense → space-local id
//! translation is one load from a flat `attr × id` table sized by the
//! entity's own distinct-value count. Full [`Value`]s are only touched
//! where semantics require them (ordered comparison predicates, canonical
//! sorting of each value space).
//!
//! All per-constraint structure — referenced-attribute projection keys,
//! premise decomposition, CFD pattern constants in dense-id form — comes
//! from the dataset-level [`CompiledProgram`]: [`instantiate`] *projects*
//! an entity through the compiled program instead of re-deriving the
//! structure per entity. Unary (constant) comparison conjuncts are
//! evaluated once per distinct projection, never once per ordered pair,
//! and projection grouping sorts packed `u64` keys instead of hashing
//! per-tuple key vectors. The pre-compilation per-entity derivation is
//! kept as [`instantiate_reference`] — the differential-testing and
//! benchmarking baseline the compiled path is proven against.

use std::collections::HashMap;

use cr_constraints::Predicate;
use cr_types::{AttrValueSpace, TupleId, Value, ValueId, NULL_VALUE_ID};

use super::program::{CompiledCfd, CompiledProgram};
use crate::spec::Specification;

/// A strict value-order atom `lo ≺v_attr hi` (distinct interned values of
/// one attribute).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OrderAtom {
    /// Attribute whose order is referenced.
    pub attr: cr_types::AttrId,
    /// Less-current value.
    pub lo: ValueId,
    /// More-current value.
    pub hi: ValueId,
}

/// Right-hand side of an instance constraint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Conclusion {
    /// The premise implies this order atom.
    Atom(OrderAtom),
    /// The premise is contradictory (e.g. a CFD forcing a value outside the
    /// active domain): at least one premise atom must be false.
    False,
}

/// Where an instance constraint came from — used by `TrueDer` to derive
/// rules only from currency orders and constraints (plus CFDs, handled
/// separately).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Origin {
    /// A pair of the base partial currency order of `It`.
    BaseOrder,
    /// Null-bottom axiom (`null ≺v a`).
    NullBottom,
    /// Instantiated from `sigma[i]` on a tuple-projection pair.
    Currency(usize),
    /// Instantiated from `gamma[i]`.
    Cfd(usize),
}

/// The premise conjunction of an [`InstanceConstraint`]: an inline
/// small-vector of up to two [`OrderAtom`]s that spills to the heap beyond
/// that. Σ instances overwhelmingly carry zero-, one- or two-atom premises
/// (order/comparison conjuncts of two-tuple constraints), and `Ω(Se)` holds
/// tens of thousands of them per entity — the per-premise heap allocation
/// of a plain `Vec` was a measurable slice of round-0 encode. CFD ωX
/// premises (one atom per dominated value) use the spill path.
///
/// Dereferences to `[OrderAtom]`; equality/hashing are content-based.
#[derive(Clone, Debug)]
pub struct Premise(PremiseRepr);

#[derive(Clone, Debug)]
enum PremiseRepr {
    /// Up to two atoms stored inline (the unread slots are `ZERO_ATOM`).
    Inline { len: u8, atoms: [OrderAtom; 2] },
    /// Three or more atoms on the heap.
    Spill(Vec<OrderAtom>),
}

/// Inline slots before spilling (the zero atom is never read beyond `len`).
const PREMISE_INLINE: usize = 2;
const ZERO_ATOM: OrderAtom =
    OrderAtom { attr: cr_types::AttrId(0), lo: ValueId(0), hi: ValueId(0) };

impl Premise {
    /// An empty premise (`true →`).
    pub fn new() -> Self {
        Premise(PremiseRepr::Inline { len: 0, atoms: [ZERO_ATOM; PREMISE_INLINE] })
    }

    /// An empty premise with room for `n` atoms (pre-sizes the spill vector
    /// when `n` exceeds the inline capacity — CFD ωX emission).
    pub fn with_capacity(n: usize) -> Self {
        if n > PREMISE_INLINE {
            Premise(PremiseRepr::Spill(Vec::with_capacity(n)))
        } else {
            Premise::new()
        }
    }

    /// Appends an atom, spilling to the heap on the third.
    pub fn push(&mut self, atom: OrderAtom) {
        match &mut self.0 {
            PremiseRepr::Inline { len, atoms } => {
                let l = *len as usize;
                if l < PREMISE_INLINE {
                    atoms[l] = atom;
                    *len += 1;
                } else {
                    let mut spill = Vec::with_capacity(PREMISE_INLINE + 2);
                    spill.extend_from_slice(atoms);
                    spill.push(atom);
                    self.0 = PremiseRepr::Spill(spill);
                }
            }
            PremiseRepr::Spill(spill) => spill.push(atom),
        }
    }

    /// The atoms as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[OrderAtom] {
        match &self.0 {
            PremiseRepr::Inline { len, atoms } => &atoms[..*len as usize],
            PremiseRepr::Spill(spill) => spill,
        }
    }

    /// Heap bytes behind the premise — 0 for inline premises, the spill
    /// vector's capacity otherwise. Feeds the retained-Ω byte accounting
    /// of `EncodedSpec::omega_bytes`.
    pub fn heap_bytes(&self) -> usize {
        match &self.0 {
            PremiseRepr::Inline { .. } => 0,
            PremiseRepr::Spill(spill) => spill.capacity() * std::mem::size_of::<OrderAtom>(),
        }
    }

    /// Sorts by `(attr, lo, hi)` and deduplicates — the canonical premise
    /// form (`build_instance` contract).
    pub fn canonicalize(&mut self) {
        match &mut self.0 {
            PremiseRepr::Inline { len, atoms } => {
                if *len == 2 {
                    let key = |a: &OrderAtom| (a.attr, a.lo, a.hi);
                    if key(&atoms[0]) > key(&atoms[1]) {
                        atoms.swap(0, 1);
                    }
                    if atoms[0] == atoms[1] {
                        *len = 1;
                    }
                }
            }
            PremiseRepr::Spill(spill) => {
                spill.sort_unstable_by_key(|a| (a.attr, a.lo, a.hi));
                spill.dedup();
            }
        }
    }
}

impl Default for Premise {
    fn default() -> Self {
        Premise::new()
    }
}

impl std::ops::Deref for Premise {
    type Target = [OrderAtom];
    fn deref(&self) -> &[OrderAtom] {
        self.as_slice()
    }
}

impl PartialEq for Premise {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Premise {}

impl std::hash::Hash for Premise {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// One instance constraint `premise → conclusion` of Ω(Se). An empty premise
/// denotes `true →` (a unit).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct InstanceConstraint {
    /// Conjunction of value-order atoms.
    pub premise: Premise,
    /// Implied atom or `False`.
    pub conclusion: Conclusion,
    /// Provenance.
    pub origin: Origin,
}

/// Output of instantiation: the interned value spaces plus Ω(Se). The
/// encoder streams instances instead (see [`emit_sigma_gamma`]); this
/// collected form serves the standalone entry points and tests.
pub(crate) struct Instantiated {
    #[cfg_attr(not(test), allow(dead_code))]
    pub space: AttrValueSpace,
    pub omega: Vec<InstanceConstraint>,
}

/// Receiver of streamed Ω(Se) instances ([`emit_base`],
/// [`emit_sigma_gamma`]): either a plain collector ([`Vec`]) or the
/// encoder, which converts each instance to its clause on the spot.
pub(crate) trait OmegaSink {
    /// Upcoming-instance upper bound (per constraint) — reserve storage.
    fn hint(&mut self, _additional: usize) {}
    /// One streamed instance.
    fn emit(&mut self, c: InstanceConstraint);
}

impl OmegaSink for Vec<InstanceConstraint> {
    fn hint(&mut self, additional: usize) {
        self.reserve(additional);
    }
    fn emit(&mut self, c: InstanceConstraint) {
        self.push(c);
    }
}

/// Core of `ins(ω, s1, s2)` (Section V-A), shared by the Value-based and
/// dense-id pair instantiators so the vacuity/canonicalisation rules can
/// never diverge between the scratch and incremental paths:
///
/// * `pair(attr)` yields the `(lo, hi)` space-local ids of the two tuples'
///   values on `attr`, or `None` when the atom is **vacuous** — the values
///   are equal (they satisfy only ⪯) or either side is null. A premise
///   instantiated on *missing* data is vacuous: were "null ≺ a" premises
///   counted true, the user-input tuple `to` (null everywhere but the
///   answered attributes) would fire rules like ϕ8 and claim the user's
///   answers are stale; a null conclusion carries no strict obligation
///   (`to` must not force "value ≺ null"). See DESIGN.md §4.
/// * `cmp(p)` evaluates a comparison predicate on the pair.
///
/// Returns `None` when a comparison fails or any atom is vacuous; the
/// premise is canonicalised (sorted, deduplicated).
fn build_instance(
    constraint: &cr_constraints::CurrencyConstraint,
    ci: usize,
    mut pair: impl FnMut(cr_types::AttrId) -> Option<(ValueId, ValueId)>,
    mut cmp: impl FnMut(&Predicate) -> bool,
) -> Option<InstanceConstraint> {
    // Data half of ins(ω, s1, s2): comparison conjuncts.
    let mut premise = Premise::new();
    for p in constraint.premises() {
        match p {
            Predicate::Order { attr } => {
                let (lo, hi) = pair(*attr)?;
                premise.push(OrderAtom { attr: *attr, lo, hi });
            }
            other => {
                if !cmp(other) {
                    return None;
                }
            }
        }
    }
    // Conclusion t1 ≺_Ar t2 on values.
    let ar = constraint.conclusion_attr();
    let (lo, hi) = pair(ar)?;
    premise.canonicalize();
    Some(InstanceConstraint {
        premise,
        conclusion: Conclusion::Atom(OrderAtom { attr: ar, lo, hi }),
        origin: Origin::Currency(ci),
    })
}

/// Instantiates currency constraint `sigma[ci]` on the ordered tuple pair
/// `(t1, t2)` — [`build_instance`] over the tuples' actual values. Used by
/// [`EncodedSpec::extend_with_input`](super::EncodedSpec::extend_with_input)
/// for the pairs involving a freshly appended user-input tuple (which has
/// no dense row in the entity).
pub(crate) fn instantiate_pair(
    space: &AttrValueSpace,
    constraint: &cr_constraints::CurrencyConstraint,
    ci: usize,
    t1: &cr_types::Tuple,
    t2: &cr_types::Tuple,
) -> Option<InstanceConstraint> {
    build_instance(
        constraint,
        ci,
        |attr| {
            let v1 = t1.get(attr);
            let v2 = t2.get(attr);
            if v1 == v2 || v1.is_null() || v2.is_null() {
                return None;
            }
            Some((
                space.get(attr, v1).expect("interned"),
                space.get(attr, v2).expect("interned"),
            ))
        },
        |p| p.eval_comparison(t1, t2).expect("comparison predicate"),
    )
}

/// Sentinel in the global → local translation table: value not in this
/// attribute's space.
const G2L_UNSEEN: u32 = u32::MAX;
/// Transient marker between the distinct-scan and canonical interning.
const G2L_SEEN: u32 = u32::MAX - 1;

/// Flat global → local value-id translation, one row per attribute. Local
/// lookup of an already-validated global id is a single indexed load.
pub(crate) struct GlobalToLocal {
    table: Vec<u32>,
    bound: usize,
}

impl GlobalToLocal {
    #[inline]
    fn slot(&mut self, attr: cr_types::AttrId, gid: u32) -> &mut u32 {
        &mut self.table[attr.index() * self.bound + gid as usize]
    }

    /// Local id of a global id known to be in `attr`'s space.
    #[inline]
    pub(crate) fn local(&self, attr: cr_types::AttrId, gid: u32) -> ValueId {
        let raw = self.table[attr.index() * self.bound + gid as usize];
        debug_assert!(raw < G2L_SEEN, "gid not interned for this attribute");
        ValueId(raw)
    }

    /// Local id of a global id, or `None` when the value does not occur in
    /// `attr`'s space (it may occur in another attribute's).
    #[inline]
    fn get(&self, attr: cr_types::AttrId, gid: u32) -> Option<ValueId> {
        let raw = self.table[attr.index() * self.bound + gid as usize];
        (raw < G2L_SEEN).then_some(ValueId(raw))
    }

    /// The translation row of one attribute (indexed by entity-local id).
    #[inline]
    fn row(&self, attr: cr_types::AttrId) -> &[u32] {
        &self.table[attr.index() * self.bound..(attr.index() + 1) * self.bound]
    }
}

/// Step 1 of `Instantiation(Se)`: the per-attribute value spaces (active
/// domain in canonical order plus null when present) and the entity-local
/// dense-id → space-local translation table.
pub(crate) fn build_spaces(spec: &Specification) -> (AttrValueSpace, GlobalToLocal) {
    let schema = spec.schema();
    let entity = spec.entity();
    let arity = schema.arity();
    let mut space = AttrValueSpace::new(arity);

    // 1. Value spaces: active domain (canonical order) plus null if present.
    // One contiguous pass over the dense id matrix per attribute marks the
    // distinct values; only the distinct ones are materialised and sorted.
    // Dense ids are instance-local, so the translation table is sized by
    // the entity's own distinct-value count, never by the dataset.
    let id_bound = entity.dense_id_bound();
    let mut g2l = GlobalToLocal {
        table: vec![G2L_UNSEEN; arity * id_bound],
        bound: id_bound,
    };
    for attr in schema.attr_ids() {
        let mut distinct: Vec<u32> = Vec::new();
        let mut has_null = false;
        for tid in entity.tuple_ids() {
            let gid = entity.dense_id(tid, attr);
            if gid == NULL_VALUE_ID {
                has_null = true;
                continue;
            }
            let slot = g2l.slot(attr, gid);
            if *slot == G2L_UNSEEN {
                *slot = G2L_SEEN;
                distinct.push(gid);
            }
        }
        distinct.sort_unstable_by(|&a, &b| entity.dense_value(a).cmp(entity.dense_value(b)));
        for gid in distinct {
            let local = space.intern(attr, entity.dense_value(gid));
            *g2l.slot(attr, gid) = local.0;
        }
        if has_null {
            let local = space.intern(attr, &Value::Null);
            *g2l.slot(attr, NULL_VALUE_ID) = local.0;
        }
    }

    (space, g2l)
}

/// Steps 2–3 of `Instantiation(Se)` — null-bottom axioms and base currency
/// orders, streamed into `sink`. Shared verbatim by the compiled and
/// reference walks; the *revisable* encoder streams step 2 only and emits
/// each base order into its own retractable clause group instead (see
/// [`super::EncodedSpec::encode_with`]).
pub(crate) fn emit_base(
    spec: &Specification,
    space: &AttrValueSpace,
    g2l: &GlobalToLocal,
    sink: &mut impl OmegaSink,
) {
    emit_null_bottoms(spec, space, sink);
    emit_base_orders(spec, g2l, sink);
}

/// Step 2 of `Instantiation(Se)`: null-bottom axioms `null ≺v a` for every
/// non-null `a`.
pub(crate) fn emit_null_bottoms(
    spec: &Specification,
    space: &AttrValueSpace,
    sink: &mut impl OmegaSink,
) {
    for attr in spec.schema().attr_ids() {
        if let Some(null_id) = space.get(attr, &Value::Null) {
            for (vid, v) in space.attr(attr).iter() {
                if !v.is_null() {
                    sink.emit(InstanceConstraint {
                        premise: Premise::new(),
                        conclusion: Conclusion::Atom(OrderAtom { attr, lo: null_id, hi: vid }),
                        origin: Origin::NullBottom,
                    });
                }
            }
        }
    }
}

/// Step 3 of `Instantiation(Se)`: base currency orders
/// (true → t1[Ai] ≺v t2[Ai]) for t1 ≺_Ai t2 with differing values.
pub(crate) fn emit_base_orders(
    spec: &Specification,
    g2l: &GlobalToLocal,
    sink: &mut impl OmegaSink,
) {
    let entity = spec.entity();
    for attr in spec.schema().attr_ids() {
        for (t1, t2) in spec.orders().pairs(attr) {
            let g1 = entity.dense_id(t1, attr);
            let g2 = entity.dense_id(t2, attr);
            if g1 == g2 || g1 == NULL_VALUE_ID || g2 == NULL_VALUE_ID {
                // Equal values are the reflexive part of ⪯; null-side pairs
                // carry no strict information (missing is ranked lowest).
                continue;
            }
            sink.emit(InstanceConstraint {
                premise: Premise::new(),
                conclusion: Conclusion::Atom(OrderAtom {
                    attr,
                    lo: g2l.local(attr, g1),
                    hi: g2l.local(attr, g2),
                }),
                origin: Origin::BaseOrder,
            });
        }
    }
}

/// The instance constraint of one tuple-level base order pair, resolved
/// through the value space (`None` when the pair is vacuous: equal or
/// null-sided values). Value-based twin of the dense walk in
/// [`emit_base_orders`], used by the revisable encoder, which must be able
/// to re-derive a single pair's unit after a value revision.
pub(crate) fn base_order_instance(
    space: &AttrValueSpace,
    attr: cr_types::AttrId,
    v1: &Value,
    v2: &Value,
) -> Option<InstanceConstraint> {
    if v1 == v2 || v1.is_null() || v2.is_null() {
        return None;
    }
    Some(InstanceConstraint {
        premise: Premise::new(),
        conclusion: Conclusion::Atom(OrderAtom {
            attr,
            lo: space.get(attr, v1).expect("interned"),
            hi: space.get(attr, v2).expect("interned"),
        }),
        origin: Origin::BaseOrder,
    })
}

/// All instances of one currency constraint over the entity's current
/// tuples — the per-constraint *re-emission* path of the revisable encoder
/// (a value revision retracts the constraint's clause group and re-derives
/// it from the updated entity). Projection-grouped exactly like the
/// reference instantiation, so the re-derived set equals what a from-scratch
/// encode of the revised specification would produce for this constraint.
pub(crate) fn sigma_constraint_instances(
    spec: &Specification,
    ci: usize,
    referenced_attrs: &[cr_types::AttrId],
    space: &AttrValueSpace,
) -> Vec<InstanceConstraint> {
    let entity = spec.entity();
    let constraint = &spec.sigma()[ci];
    let reps = group_projections(entity, referenced_attrs);
    let mut out = Vec::new();
    for &r1 in &reps {
        for &r2 in &reps {
            if r1 == r2 {
                continue;
            }
            if let Some(c) =
                instantiate_pair(space, constraint, ci, entity.tuple(r1), entity.tuple(r2))
            {
                out.push(c);
            }
        }
    }
    out
}

/// Distinct projections of the entity's tuples on `attrs`, each with its
/// first-occurring representative, sorted by tuple id (Ω(Se) must be
/// deterministic — rule derivation is order sensitive).
///
/// Keys are the instance-local dense ids packed into one `u64` whenever
/// `dense_id_bound ^ |attrs|` fits, so grouping is a sort over plain
/// integers; the per-tuple key-vector hashing survives only as the
/// overflow fallback (very wide projections on very wide entities).
fn group_projections(entity: &cr_types::EntityInstance, attrs: &[cr_types::AttrId]) -> Vec<TupleId> {
    let radix = (entity.dense_id_bound() as u64).max(1);
    let packable = {
        let mut cap: u64 = 1;
        attrs.iter().all(|_| match cap.checked_mul(radix) {
            Some(c) => {
                cap = c;
                true
            }
            None => false,
        })
    };
    let mut reps: Vec<TupleId> = if packable {
        let mut keyed: Vec<(u64, u32)> = entity
            .tuple_ids()
            .map(|tid| {
                let mut key = 0u64;
                for &a in attrs {
                    key = key * radix + u64::from(entity.dense_id(tid, a));
                }
                (key, tid.0)
            })
            .collect();
        // Sorting by (key, tid) keeps the smallest — i.e. first-occurring —
        // tuple id of each projection, matching the reference grouping.
        keyed.sort_unstable();
        keyed.dedup_by_key(|&mut (key, _)| key);
        keyed.into_iter().map(|(_, tid)| TupleId(tid)).collect()
    } else {
        let mut map: HashMap<Vec<u32>, TupleId> = HashMap::new();
        for tid in entity.tuple_ids() {
            let key: Vec<u32> = attrs.iter().map(|&a| entity.dense_id(tid, a)).collect();
            map.entry(key).or_insert(tid);
        }
        map.into_values().collect()
    };
    reps.sort_unstable();
    reps
}

/// Runs `Instantiation(Se)` (Section V-A) by projecting the entity through
/// the specification's [`CompiledProgram`] — the production path. Proven
/// equivalent to [`instantiate_reference`] by `tests/lazy_differential.rs`.
pub(crate) fn instantiate(spec: &Specification) -> Instantiated {
    let program = spec.compiled_program().clone();
    instantiate_with(spec, &program)
}

/// [`instantiate`] against an explicit compiled program.
pub(crate) fn instantiate_with(spec: &Specification, program: &CompiledProgram) -> Instantiated {
    let (space, g2l) = build_spaces(spec);
    let mut omega: Vec<InstanceConstraint> = Vec::new();
    emit_base(spec, &space, &g2l, &mut omega);
    emit_sigma_gamma(spec, program, &space, &g2l, &mut omega);
    Instantiated { space, omega }
}

/// Steps 4–5 of `Instantiation(Se)` over the compiled program, streamed
/// into `sink`. [`EncodedSpec::encode_with`] streams straight into clause
/// emission (no intermediate instance buffer);
/// [`instantiate_with`] collects into `Ω(Se)` for standalone consumers.
pub(crate) fn emit_sigma_gamma(
    spec: &Specification,
    program: &CompiledProgram,
    space: &AttrValueSpace,
    g2l: &GlobalToLocal,
    sink: &mut impl OmegaSink,
) {
    let total = program.sigma.len() + program.gamma.len();
    emit_sigma_gamma_range(spec, program, space, g2l, 0..total, sink);
}

/// [`emit_sigma_gamma`] restricted to a contiguous slice of the combined
/// constraint index space `[0, |Σ| + |Γ|)`: indices below `|Σ|` are
/// currency constraints, the rest are CFDs (offset by `|Σ|`). Constraints
/// are mutually independent, so covering `[0, total)` with adjacent ranges
/// in order reproduces the full emission stream byte-for-byte — this is
/// what lets the scheduler split one oversized entity's instantiation
/// across stealable subtasks (see `crate::sched`) without perturbing the
/// encoding.
pub(crate) fn emit_sigma_gamma_range(
    spec: &Specification,
    program: &CompiledProgram,
    space: &AttrValueSpace,
    g2l: &GlobalToLocal,
    range: std::ops::Range<usize>,
    sink: &mut impl OmegaSink,
) {
    let entity = spec.entity();
    if let (Some(pt), Some(et)) = (program.table_token(), entity.table_token()) {
        debug_assert_eq!(
            pt, et,
            "CompiledProgram built from one ValueTable used with an entity \
             interned against another"
        );
    }
    // Dense global-id shortcuts are sound only when the program's constants
    // and the entity's cells reference the same id universe.
    let use_gids = program.table_token().is_some()
        && program.table_token() == entity.table_token();

    // 4. Currency constraints, instantiated over distinct *projections*.
    //
    // Every predicate of ω references only the values of t1/t2 on the
    // constraint's attributes, so tuples sharing a projection on those
    // attributes produce identical instance constraints. Grouping tuples by
    // projection turns the paper's O(|Σ||It|²) instantiation into
    // O(Σ_ϕ #proj²) — the worst case is unchanged, but real entity
    // instances have few distinct projections (many near-duplicate tuples).
    let mut t1_ok: Vec<bool> = Vec::new();
    let mut t2_ok: Vec<bool> = Vec::new();
    let sigma_range = range.start.min(program.sigma.len())..range.end.min(program.sigma.len());
    for (ci, cc) in program.sigma[sigma_range.clone()].iter().enumerate() {
        let ci = ci + sigma_range.start;
        let reps = group_projections(entity, &cc.referenced_attrs);
        sink.hint(reps.len() * reps.len().saturating_sub(1));

        // Fast path for the dominant Σ shape — a pure propagation
        // constraint `t1 ≺[p] t2 → t1 ≺[c] t2` with distinct attributes:
        // pre-translate both columns to space-local ids once, then the
        // pair loop is integer compares and emission only.
        if cc.tuple_cmps.is_empty()
            && cc.t1_consts.is_empty()
            && cc.t2_consts.is_empty()
            && cc.order_premises.len() == 1
            && cc.order_premises[0] != cc.conclusion_attr
        {
            const VACUOUS: u32 = u32::MAX;
            let (ap, ac) = (cc.order_premises[0], cc.conclusion_attr);
            let (g2l_p, g2l_c) = (g2l.row(ap), g2l.row(ac));
            let translate = |attr: cr_types::AttrId, row: &[u32]| -> Vec<u32> {
                reps.iter()
                    .map(|&r| {
                        let g = entity.dense_id(r, attr);
                        if g == NULL_VALUE_ID {
                            VACUOUS
                        } else {
                            row[g as usize]
                        }
                    })
                    .collect()
            };
            let col_p = translate(ap, g2l_p);
            let col_c = translate(ac, g2l_c);
            for i in 0..reps.len() {
                let (p1, c1) = (col_p[i], col_c[i]);
                if p1 == VACUOUS || c1 == VACUOUS {
                    continue;
                }
                for j in 0..reps.len() {
                    let (p2, c2) = (col_p[j], col_c[j]);
                    if i == j || p2 == p1 || p2 == VACUOUS || c2 == c1 || c2 == VACUOUS {
                        continue;
                    }
                    let mut premise = Premise::new();
                    premise.push(OrderAtom { attr: ap, lo: ValueId(p1), hi: ValueId(p2) });
                    sink.emit(InstanceConstraint {
                        premise,
                        conclusion: Conclusion::Atom(OrderAtom {
                            attr: ac,
                            lo: ValueId(c1),
                            hi: ValueId(c2),
                        }),
                        origin: Origin::Currency(ci),
                    });
                }
            }
            continue;
        }

        // Unary conjuncts hold or fail per *projection*, not per pair:
        // evaluate each side once per representative.
        t1_ok.clear();
        t1_ok.extend(
            reps.iter()
                .map(|&r| cc.t1_consts.iter().all(|c| c.eval_gated(entity, r, use_gids))),
        );
        t2_ok.clear();
        t2_ok.extend(
            reps.iter()
                .map(|&r| cc.t2_consts.iter().all(|c| c.eval_gated(entity, r, use_gids))),
        );

        for (i, &r1) in reps.iter().enumerate() {
            if !t1_ok[i] {
                continue;
            }
            let row1 = entity.dense_row(r1);
            'pair: for (j, &r2) in reps.iter().enumerate() {
                if i == j || !t2_ok[j] {
                    continue;
                }
                let row2 = entity.dense_row(r2);
                // Binary comparison conjuncts: null operands fail
                // (eval_comparison semantics). Equal dense ids mean equal
                // values, but distinct ids are *not* conclusive — the
                // semantic ordering equates e.g. `Int(3)` and `Float(3.0)`
                // — so only id equality short-circuits.
                for &(attr, op) in &cc.tuple_cmps {
                    let g1 = row1[attr.index()];
                    let g2 = row2[attr.index()];
                    if g1 == NULL_VALUE_ID || g2 == NULL_VALUE_ID {
                        continue 'pair;
                    }
                    let holds = if g1 == g2 {
                        op.eval_ordering(std::cmp::Ordering::Equal)
                    } else {
                        op.eval(entity.dense_value(g1), entity.dense_value(g2))
                    };
                    if !holds {
                        continue 'pair;
                    }
                }
                // Order premises and conclusion on dense ids; equal or null
                // sides make the atom vacuous and drop the instance
                // (build_instance semantics).
                let pair = |attr: cr_types::AttrId| -> Option<(ValueId, ValueId)> {
                    let g1 = row1[attr.index()];
                    let g2 = row2[attr.index()];
                    if g1 == g2 || g1 == NULL_VALUE_ID || g2 == NULL_VALUE_ID {
                        return None;
                    }
                    Some((g2l.local(attr, g1), g2l.local(attr, g2)))
                };
                let mut premise = Premise::with_capacity(cc.order_premises.len());
                for &attr in &cc.order_premises {
                    match pair(attr) {
                        Some((lo, hi)) => premise.push(OrderAtom { attr, lo, hi }),
                        None => continue 'pair,
                    }
                }
                let Some((lo, hi)) = pair(cc.conclusion_attr) else {
                    continue;
                };
                premise.canonicalize();
                sink.emit(InstanceConstraint {
                    premise,
                    conclusion: Conclusion::Atom(OrderAtom { attr: cc.conclusion_attr, lo, hi }),
                    origin: Origin::Currency(ci),
                });
            }
        }
    }

    // 5. Constant CFDs, patterns resolved through dense global ids.
    let gamma_range = range.start.saturating_sub(program.sigma.len())
        ..range.end.saturating_sub(program.sigma.len());
    for (gi, cfd) in program.gamma[gamma_range.clone()].iter().enumerate() {
        let gi = gi + gamma_range.start;
        for c in compiled_cfd_instances(space, g2l, entity, gi, cfd, use_gids) {
            sink.emit(c);
        }
    }
}

/// Pre-built context for splitting one entity's Σ/Γ instantiation across
/// subtasks: the value spaces and translation table (deterministic
/// functions of the specification, so every subtask and the final chunked
/// encode agree on value ids) plus the combined constraint count.
pub(crate) struct SplitPlan {
    space: AttrValueSpace,
    g2l: GlobalToLocal,
    total: usize,
}

impl SplitPlan {
    pub(crate) fn new(spec: &Specification) -> Self {
        let program = spec.compiled_program();
        let (space, g2l) = build_spaces(spec);
        let total = program.sigma.len() + program.gamma.len();
        SplitPlan { space, g2l, total }
    }

    /// Number of combined Σ/Γ constraint indices (the splittable space).
    pub(crate) fn total_constraints(&self) -> usize {
        self.total
    }

    /// Instantiates the constraints of one index range into a buffer — the
    /// body of a stealable split subtask. Covering `[0, total)` with
    /// adjacent ranges in order and feeding the chunks to
    /// `EncodedSpec::encode_with_omega_chunks` reproduces the serial
    /// encoding exactly.
    pub(crate) fn instantiate_range(
        &self,
        spec: &Specification,
        range: std::ops::Range<usize>,
    ) -> Vec<InstanceConstraint> {
        let program = spec.compiled_program().clone();
        let mut out: Vec<InstanceConstraint> = Vec::new();
        emit_sigma_gamma_range(spec, &program, &self.space, &self.g2l, range, &mut out);
        out
    }
}

/// The pre-compilation `Instantiation(Se)`: re-derives every constraint's
/// referenced attributes and pattern lookups per entity and evaluates all
/// comparison conjuncts per ordered pair. Kept as the differential-testing
/// and benchmarking baseline for [`instantiate`].
pub(crate) fn instantiate_reference(spec: &Specification) -> Instantiated {
    let entity = spec.entity();
    let (space, g2l) = build_spaces(spec);
    let mut omega: Vec<InstanceConstraint> = Vec::new();
    emit_base(spec, &space, &g2l, &mut omega);

    // 4. Currency constraints over distinct projections (per-entity
    // derivation of the projection key, per-pair comparison evaluation).
    for (ci, constraint) in spec.sigma().iter().enumerate() {
        let attrs = constraint.referenced_attrs();
        let mut reps: Vec<TupleId> = {
            let mut map: HashMap<Vec<u32>, TupleId> = HashMap::new();
            for tid in entity.tuple_ids() {
                let key: Vec<u32> = attrs.iter().map(|&a| entity.dense_id(tid, a)).collect();
                map.entry(key).or_insert(tid);
            }
            map.into_values().collect()
        };
        reps.sort_unstable();

        for &r1 in &reps {
            for &r2 in &reps {
                if r1 == r2 {
                    continue;
                }
                if let Some(c) = instantiate_pair_dense(&g2l, constraint, ci, entity, r1, r2) {
                    omega.push(c);
                }
            }
        }
    }

    // 5. Constant CFDs via per-entity `Value` lookups.
    for (gi, cfd) in spec.gamma().iter().enumerate() {
        omega.extend(cfd_instances(&space, gi, cfd));
    }

    Instantiated { space, omega }
}

/// [`instantiate_pair`] on a tuple pair *inside* the entity —
/// [`build_instance`] over the dense id rows: equality/null checks are
/// integer compares and space-local ids come from the flat translation
/// table. Comparison predicates still evaluate on the actual values.
fn instantiate_pair_dense(
    g2l: &GlobalToLocal,
    constraint: &cr_constraints::CurrencyConstraint,
    ci: usize,
    entity: &cr_types::EntityInstance,
    t1: TupleId,
    t2: TupleId,
) -> Option<InstanceConstraint> {
    build_instance(
        constraint,
        ci,
        |attr| {
            let g1 = entity.dense_id(t1, attr);
            let g2 = entity.dense_id(t2, attr);
            if g1 == g2 || g1 == NULL_VALUE_ID || g2 == NULL_VALUE_ID {
                return None;
            }
            Some((g2l.local(attr, g1), g2l.local(attr, g2)))
        },
        |p| {
            p.eval_comparison(entity.tuple(t1), entity.tuple(t2))
                .expect("comparison predicate")
        },
    )
}

/// The instance constraints of one constant CFD over the given value
/// spaces — the ωX-premise/domination emission of `Instantiation(Se)` step
/// 5, factored out so [`EncodedSpec::extend_with_input`] can *re-emit* a
/// CFD under a fresh guard group after a new value grows a referenced
/// attribute's space. Pattern constants are resolved by `Value` lookup;
/// the encode-time path resolves through dense global ids instead
/// ([`compiled_cfd_instances`]).
///
/// Returns an empty vector when an LHS pattern constant is outside the
/// active domain (the CFD can never fire); a missing RHS constant yields
/// the single `Conclusion::False` instance.
pub(crate) fn cfd_instances(
    space: &AttrValueSpace,
    gi: usize,
    cfd: &cr_constraints::ConstantCfd,
) -> Vec<InstanceConstraint> {
    // A retired value (revisable encodings) is out of the active domain
    // even though its id stays allocated.
    let live_id = |attr: cr_types::AttrId, v: &Value| {
        space.get(attr, v).filter(|&id| space.is_live(attr, id))
    };
    let mut lhs_ids = Vec::with_capacity(cfd.lhs().len());
    for (attr, c) in cfd.lhs() {
        let Some(cid) = live_id(*attr, c) else {
            return Vec::new();
        };
        lhs_ids.push((*attr, cid));
    }
    let (battr, bval) = cfd.rhs();
    cfd_instances_ids(space, gi, &lhs_ids, *battr, live_id(*battr, bval))
}

/// [`cfd_instances`] after pattern resolution through the compiled
/// program's dense global ids: an integer lookup per constant instead of a
/// `Value` hash (falling back to `Value` lookup when the program was
/// compiled without a table or the id universes differ).
fn compiled_cfd_instances(
    space: &AttrValueSpace,
    g2l: &GlobalToLocal,
    entity: &cr_types::EntityInstance,
    gi: usize,
    cfd: &CompiledCfd,
    use_gids: bool,
) -> Vec<InstanceConstraint> {
    let resolve = |attr: cr_types::AttrId, v: &Value, gid: Option<u32>| -> Option<ValueId> {
        match gid {
            // Global-id fast path: a table-resolved constant that occurs in
            // the entity leads to the attribute's space slot by integer
            // lookups. A miss is NOT conclusive — a value equal to the
            // constant may have entered the entity *outside* the table
            // (user input pushes rows without table interning), so fall
            // back to the `Value` lookup before declaring absence.
            Some(g) if use_gids => entity
                .local_of_global(g)
                .and_then(|local| g2l.get(attr, local))
                .or_else(|| space.get(attr, v)),
            _ => space.get(attr, v),
        }
        // Retired values (revisable encodings) are out of the active domain.
        .filter(|&id| space.is_live(attr, id))
    };
    let mut lhs_ids = Vec::with_capacity(cfd.lhs.len());
    for (attr, v, gid) in &cfd.lhs {
        let Some(cid) = resolve(*attr, v, *gid) else {
            return Vec::new();
        };
        lhs_ids.push((*attr, cid));
    }
    let (battr, bval, bgid) = &cfd.rhs;
    cfd_instances_ids(space, gi, &lhs_ids, *battr, resolve(*battr, bval, *bgid))
}

/// Shared emission core: ωX premise plus domination conclusions, from
/// already-resolved pattern ids. `rhs_id == None` means the pattern's
/// B-value is outside the active domain (the premise must fail).
///
/// Quantification ranges over the **live** values of each attribute's
/// space: on ordinary encodings every interned value is live, so this is
/// the paper's "every other value of the active domain"; on revisable
/// encodings, values retired by upstream corrections keep their (allocated)
/// order variables but drop out of ωX and the domination set — exactly as
/// if the CFD had been instantiated on the revised specification from
/// scratch.
fn cfd_instances_ids(
    space: &AttrValueSpace,
    gi: usize,
    lhs_ids: &[(cr_types::AttrId, ValueId)],
    battr: cr_types::AttrId,
    rhs_id: Option<ValueId>,
) -> Vec<InstanceConstraint> {
    // ωX: every other value of each LHS attribute sits below the pattern
    // constant.
    let mut premise = Premise::new();
    for &(attr, cid) in lhs_ids {
        for (vid, v) in space.attr(attr).iter_live() {
            if vid != cid && !v.is_null() {
                premise.push(OrderAtom { attr, lo: vid, hi: cid });
            }
        }
    }
    let mut out = Vec::new();
    match rhs_id {
        Some(bid) => {
            for (vid, v) in space.attr(battr).iter_live() {
                if vid != bid && !v.is_null() {
                    out.push(InstanceConstraint {
                        premise: premise.clone(),
                        conclusion: Conclusion::Atom(OrderAtom {
                            attr: battr,
                            lo: vid,
                            hi: bid,
                        }),
                        origin: Origin::Cfd(gi),
                    });
                }
            }
        }
        None => {
            // The pattern's B-value cannot be the current one: premise
            // must fail. (With an empty premise the spec is invalid.)
            out.push(InstanceConstraint {
                premise,
                conclusion: Conclusion::False,
                origin: Origin::Cfd(gi),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orders::PartialOrders;
    use cr_constraints::parser::{parse_cfds, parse_currency_constraint};
    use cr_types::{EntityInstance, Schema, Tuple, TupleId};

    fn edith_like() -> Specification {
        let s = Schema::new("p", ["status", "job", "kids"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("working"), Value::str("nurse"), Value::int(0)]),
                Tuple::of([Value::str("retired"), Value::str("n/a"), Value::int(3)]),
                Tuple::of([Value::str("deceased"), Value::str("n/a"), Value::Null]),
            ],
        )
        .unwrap();
        let sigma = vec![
            parse_currency_constraint(
                &s,
                r#"t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2"#,
            )
            .unwrap(),
            parse_currency_constraint(&s, "t1 <[status] t2 -> t1 <[job] t2").unwrap(),
            parse_currency_constraint(&s, "t1[kids] < t2[kids] -> t1 <[kids] t2").unwrap(),
        ];
        Specification::without_orders(e, sigma, vec![])
    }

    #[test]
    fn null_becomes_strict_bottom() {
        let spec = edith_like();
        let inst = instantiate(&spec);
        let kids = spec.schema().attr_id("kids").unwrap();
        let nulls: Vec<_> = inst
            .omega
            .iter()
            .filter(|c| c.origin == Origin::NullBottom)
            .collect();
        // kids has null + {0, 3}: two bottom units.
        assert_eq!(nulls.len(), 2);
        assert!(nulls.iter().all(|c| c.premise.is_empty()));
        assert!(nulls.iter().all(|c| match c.conclusion {
            Conclusion::Atom(a) => a.attr == kids,
            Conclusion::False => false,
        }));
    }

    #[test]
    fn comparison_premises_prefilter_pairs() {
        let spec = edith_like();
        let inst = instantiate(&spec);
        // phi1 applies only to the (working, retired) ordered pair: exactly
        // one instance with empty premise concluding working ≺ retired.
        let status = spec.schema().attr_id("status").unwrap();
        let phi1: Vec<_> = inst
            .omega
            .iter()
            .filter(|c| c.origin == Origin::Currency(0))
            .collect();
        assert_eq!(phi1.len(), 1);
        assert!(phi1[0].premise.is_empty());
        match phi1[0].conclusion {
            Conclusion::Atom(a) => {
                assert_eq!(a.attr, status);
                assert_eq!(inst.space.value(status, a.lo), &Value::str("working"));
                assert_eq!(inst.space.value(status, a.hi), &Value::str("retired"));
            }
            Conclusion::False => panic!(),
        }
    }

    #[test]
    fn equal_value_conclusions_are_skipped() {
        let spec = edith_like();
        let inst = instantiate(&spec);
        // phi5 = order premise on status, conclusion job. The pair
        // (retired, deceased) has equal jobs (n/a) → skipped; pairs touching
        // "working" (job nurse) survive.
        let phi5: Vec<_> = inst
            .omega
            .iter()
            .filter(|c| c.origin == Origin::Currency(1))
            .collect();
        // Projections on (status, job): 3 distinct; ordered pairs 6; the two
        // (r2, r3)-style pairs with equal jobs are dropped → 4.
        assert_eq!(phi5.len(), 4);
        assert!(phi5.iter().all(|c| c.premise.len() == 1));
    }

    #[test]
    fn null_comparison_fires_phi4() {
        let spec = edith_like();
        let inst = instantiate(&spec);
        let kids = spec.schema().attr_id("kids").unwrap();
        // phi4 with null < k semantics: the pairs (null,0) and (null,3) fire
        // but their conclusions `null ≺ k` are already the null-bottom
        // axioms (skipped); only (0,3) yields an instance constraint.
        let phi4: Vec<_> = inst
            .omega
            .iter()
            .filter(|c| c.origin == Origin::Currency(2))
            .collect();
        assert_eq!(phi4.len(), 1);
        match phi4[0].conclusion {
            Conclusion::Atom(a) => {
                assert_eq!(a.attr, kids);
                assert_eq!(inst.space.value(kids, a.lo), &Value::int(0));
                assert_eq!(inst.space.value(kids, a.hi), &Value::int(3));
            }
            Conclusion::False => panic!(),
        }
        // The null-bottom axioms cover the null pairs.
        let bottoms = inst
            .omega
            .iter()
            .filter(|c| c.origin == Origin::NullBottom)
            .filter(|c| matches!(c.conclusion, Conclusion::Atom(a) if a.attr == kids))
            .count();
        assert_eq!(bottoms, 2);
    }

    #[test]
    fn base_orders_become_units() {
        let s = Schema::new("p", ["a"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![Tuple::of([Value::int(1)]), Tuple::of([Value::int(2)])],
        )
        .unwrap();
        let mut orders = PartialOrders::empty(1);
        orders.add(cr_types::AttrId(0), TupleId(0), TupleId(1));
        let spec = Specification::new(e, orders, vec![], vec![]);
        let inst = instantiate(&spec);
        let base: Vec<_> = inst
            .omega
            .iter()
            .filter(|c| c.origin == Origin::BaseOrder)
            .collect();
        assert_eq!(base.len(), 1);
        assert!(base[0].premise.is_empty());
    }

    /// Regression (review finding): a CFD constant present in the shared
    /// table but entering the entity only through a *push* (user input
    /// bypasses table interning, so the local id has no global id) must
    /// still resolve — the compiled path falls back to the `Value` lookup
    /// instead of declaring the constant out of domain.
    #[test]
    fn compiled_cfd_resolves_values_pushed_outside_the_table() {
        let s = Schema::new("p", ["AC", "city"]).unwrap();
        let rows = vec![
            Tuple::of([Value::int(212), Value::str("NY")]),
            Tuple::of([Value::int(213), Value::str("SF")]),
        ];
        let mut table = cr_types::ValueTable::new();
        table.intern_tuples(rows.iter());
        table.intern(&Value::str("LA")); // in the table, not in this entity
        let mut e = EntityInstance::with_table(s.clone(), rows, &table).unwrap();
        // User-input style push: "LA" gets a local id with NO global id.
        e.push(Tuple::of([Value::Null, Value::str("LA")])).unwrap();
        let gamma = parse_cfds(&s, "AC = 213 -> city = \"LA\"").unwrap();
        let spec = Specification::without_orders(e, vec![], gamma);
        spec.set_compiled_program(std::sync::Arc::new(
            super::super::program::CompiledProgram::compile(
                spec.sigma(),
                spec.gamma(),
                Some(&table),
            ),
        ));
        let reference = instantiate_reference(&spec).omega;
        let compiled = instantiate(&spec).omega;
        assert_eq!(reference, compiled);
        // The CFD must emit real domination conclusions, not a False stub.
        assert!(compiled
            .iter()
            .any(|c| c.origin == Origin::Cfd(0)
                && matches!(c.conclusion, Conclusion::Atom(_))));
    }

    /// Regression (review finding): `Int(3)` and `Float(3.0)` intern to
    /// distinct dense ids but compare semantically equal — dense-id
    /// inequality must not decide Eq/Neq comparisons on either the binary
    /// (tuple) or unary (constant, table-compiled) fast paths.
    #[test]
    fn compiled_eq_comparisons_honour_semantic_numeric_equality() {
        let s = Schema::new("p", ["kids", "status"]).unwrap();
        let rows = vec![
            Tuple::of([Value::int(3), Value::str("working")]),
            Tuple::of([Value::float(3.0), Value::str("retired")]),
        ];
        let mut table = cr_types::ValueTable::new();
        table.intern_tuples(rows.iter());
        table.intern(&Value::int(3));
        let e = EntityInstance::with_table(s.clone(), rows, &table).unwrap();
        let sigma = vec![
            // Binary: t1[kids] = t2[kids] holds across Int(3)/Float(3.0).
            parse_currency_constraint(&s, "t1[kids] = t2[kids] -> t1 <[status] t2").unwrap(),
            // Unary with a table-resolved constant: Float(3.0) = 3 holds
            // even though the global ids differ.
            parse_currency_constraint(&s, "t1[kids] = 3 -> t1 <[status] t2").unwrap(),
        ];
        let spec = Specification::without_orders(e, sigma, vec![]);
        spec.set_compiled_program(std::sync::Arc::new(
            super::super::program::CompiledProgram::compile(
                spec.sigma(),
                spec.gamma(),
                Some(&table),
            ),
        ));
        let reference = instantiate_reference(&spec).omega;
        let compiled = instantiate(&spec).omega;
        assert_eq!(reference, compiled);
        for ci in 0..2 {
            assert!(
                compiled.iter().any(|c| c.origin == Origin::Currency(ci)),
                "constraint {ci} must instantiate despite distinct dense ids"
            );
        }
    }

    #[test]
    fn cfd_with_missing_lhs_constant_is_vacuous() {
        let s = Schema::new("p", ["AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![Tuple::of([Value::int(212), Value::str("NY")])],
        )
        .unwrap();
        let gamma = parse_cfds(&s, "AC = 999 -> city = \"LA\"").unwrap();
        let spec = Specification::without_orders(e, vec![], gamma);
        let inst = instantiate(&spec);
        assert!(inst.omega.iter().all(|c| c.origin != Origin::Cfd(0)));
    }

    #[test]
    fn cfd_with_missing_rhs_constant_forces_negated_premise() {
        let s = Schema::new("p", ["AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::int(212), Value::str("NY")]),
                Tuple::of([Value::int(213), Value::str("NY")]),
            ],
        )
        .unwrap();
        let gamma = parse_cfds(&s, "AC = 213 -> city = \"LA\"").unwrap();
        let spec = Specification::without_orders(e, vec![], gamma);
        let inst = instantiate(&spec);
        let cfd: Vec<_> = inst
            .omega
            .iter()
            .filter(|c| c.origin == Origin::Cfd(0))
            .collect();
        assert_eq!(cfd.len(), 1);
        assert_eq!(cfd[0].conclusion, Conclusion::False);
        assert_eq!(cfd[0].premise.len(), 1); // 212 ≺ 213
    }

    #[test]
    fn cfd_in_domain_emits_domination_clauses() {
        let s = Schema::new("p", ["AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::int(212), Value::str("NY")]),
                Tuple::of([Value::int(213), Value::str("LA")]),
                Tuple::of([Value::int(415), Value::str("SFC")]),
            ],
        )
        .unwrap();
        let gamma = parse_cfds(&s, "AC = 213 -> city = \"LA\"").unwrap();
        let spec = Specification::without_orders(e, vec![], gamma);
        let inst = instantiate(&spec);
        let cfd: Vec<_> = inst
            .omega
            .iter()
            .filter(|c| c.origin == Origin::Cfd(0))
            .collect();
        // Two non-LA cities, each must sit below LA when AC=213 tops.
        assert_eq!(cfd.len(), 2);
        assert!(cfd.iter().all(|c| c.premise.len() == 2)); // 212≺213, 415≺213
    }
}
