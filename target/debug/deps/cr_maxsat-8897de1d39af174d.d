/root/repo/target/debug/deps/cr_maxsat-8897de1d39af174d.d: crates/cr-maxsat/src/lib.rs crates/cr-maxsat/src/exact.rs crates/cr-maxsat/src/instance.rs crates/cr-maxsat/src/walksat.rs

/root/repo/target/debug/deps/libcr_maxsat-8897de1d39af174d.rmeta: crates/cr-maxsat/src/lib.rs crates/cr-maxsat/src/exact.rs crates/cr-maxsat/src/instance.rs crates/cr-maxsat/src/walksat.rs

crates/cr-maxsat/src/lib.rs:
crates/cr-maxsat/src/exact.rs:
crates/cr-maxsat/src/instance.rs:
crates/cr-maxsat/src/walksat.rs:
