/root/repo/target/debug/deps/incremental_differential-6f79a9540bc50403.d: crates/cr-core/tests/incremental_differential.rs

/root/repo/target/debug/deps/incremental_differential-6f79a9540bc50403: crates/cr-core/tests/incremental_differential.rs

crates/cr-core/tests/incremental_differential.rs:
