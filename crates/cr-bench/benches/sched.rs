//! Criterion bench for the work-stealing scheduler (`cr_core::sched`):
//! batch resolution of a seeded power-law dataset across worker widths,
//! plus the streaming path through the bounded ingestion queue. On the
//! single-core CI container the widths measure scheduling *overhead*
//! (identical work, different task plumbing), not speedup — the perf
//! gate tracks that overhead for regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cr_core::framework::{GroundTruthOracle, ResolutionConfig, Resolver};
use cr_core::sched::{resolve_batch, resolve_stream, SchedulerConfig};
use cr_data::gen::{PowerLawConfig, PowerLawDataset};

fn bench_sched(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched");
    group.sample_size(10);

    let ds = PowerLawDataset::new(&PowerLawConfig {
        seed: 42,
        entities: 120,
        max_tuples: 64,
        giants: 1,
        ..Default::default()
    });
    let specs = ds.specs();
    let resolver = Resolver::new(ResolutionConfig::default());

    for workers in [1usize, 2, 4] {
        let config = SchedulerConfig::with_workers(workers);
        group.bench_with_input(
            BenchmarkId::new("batch", workers),
            &config,
            |b, config| {
                b.iter(|| {
                    black_box(resolve_batch(
                        &resolver,
                        black_box(&specs),
                        &|i| GroundTruthOracle::with_cap(ds.truth(i).clone(), 1),
                        config,
                    ))
                })
            },
        );
    }

    let config = SchedulerConfig::with_workers(2);
    group.bench_function("stream/2", |b| {
        b.iter(|| {
            let drained = std::sync::atomic::AtomicUsize::new(0);
            let telemetry = resolve_stream(
                &resolver,
                ds.stream(),
                &|i| GroundTruthOracle::with_cap(ds.truth(i).clone(), 1),
                &config,
                &|_, outcome| {
                    black_box(&outcome);
                    drained.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                },
            );
            assert_eq!(drained.into_inner(), ds.len());
            black_box(telemetry)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
