//! Eviction/rehydration state-loss regressions: per-field differentials.
//!
//! A session evicted mid-flight must rehydrate to **exactly** the state of
//! a never-evicted twin — including the fields that only exist between
//! polls: frontier-buffered out-of-order events, undrained
//! [`take_competing`](cr_core::ResolutionSession::take_competing) cells, a
//! non-empty quarantine log (and its cap), the session epoch, and the
//! re-opened-answer bookkeeping. Each test pins one field: a regression in
//! `SessionState`/`restore` coverage fails the named test for the dropped
//! field, not just a blanket diff.

use cr_core::causal::CausalRevision;
use cr_core::ingest::{diff_logical_states, Revision};
use cr_core::spec::UserInput;
use cr_core::Specification;
use cr_store::{FaultyBackend, MemoryBackend, SessionId, SessionStore, StoreConfig};
use cr_types::{EntityInstance, Schema, SourceClock, SourceId, Tuple, TupleId, Value};

const ID: SessionId = SessionId(3);

/// A minimal unconstrained spec for manual causal driving.
fn two_city_spec() -> Specification {
    let s = Schema::new("p", ["name", "city"]).unwrap();
    let e = EntityInstance::new(
        s.clone(),
        vec![
            Tuple::of([Value::str("X"), Value::str("NY")]),
            Tuple::of([Value::str("X"), Value::str("LA")]),
        ],
    )
    .unwrap();
    Specification::without_orders(e, vec![], vec![])
}

/// A store/twin pair over the same spec: the subject gets evicted, the
/// twin never does.
fn pair(
    spec: &Specification,
    snapshot_every: usize,
) -> (SessionStore<FaultyBackend<MemoryBackend>>, SessionStore<FaultyBackend<MemoryBackend>>) {
    let cfg = StoreConfig { snapshot_every, ..StoreConfig::default() };
    let mut subject =
        SessionStore::new(FaultyBackend::new(MemoryBackend::new()).unwrap(), cfg).unwrap();
    let mut twin =
        SessionStore::new(FaultyBackend::new(MemoryBackend::new()).unwrap(), cfg).unwrap();
    subject.open(ID, spec);
    twin.open(ID, spec);
    (subject, twin)
}

fn replace(tuple: TupleId, attr: cr_types::AttrId, value: &str) -> Revision {
    Revision::ReplaceValue { tuple, attr, value: Value::str(value) }
}

/// Field (a): frontier-buffered out-of-order events. Evicting a session
/// whose frontier holds an undeliverable successor must not lose the
/// buffered event — after rehydration the late predecessor still cascades
/// the full causal chain.
#[test]
fn eviction_preserves_frontier_buffered_events() {
    let spec = two_city_spec();
    let city = spec.schema().attr_id("city").unwrap();
    let mut s1 = SourceClock::new(SourceId(1));
    let e1 = CausalRevision { stamp: s1.stamp(1), rev: replace(TupleId(0), city, "SF") };
    let e2 = CausalRevision { stamp: s1.stamp(2), rev: replace(TupleId(0), city, "Chicago") };

    for snapshot_every in [0usize, 1] {
        let (mut subject, mut twin) = pair(&spec, snapshot_every);
        // The successor arrives first and buffers at the frontier.
        assert!(subject.ingest_causal(ID, vec![e2.clone()]).unwrap().is_empty());
        assert!(twin.ingest_causal(ID, vec![e2.clone()]).unwrap().is_empty());

        assert!(subject.evict(ID).unwrap());
        let restored = subject.session(ID).unwrap();
        assert_eq!(
            restored.frontier().pending(),
            1,
            "snapshot_every {snapshot_every}: the buffered event must survive eviction"
        );
        assert_eq!(restored.revision_telemetry().buffered, 1);
        let restored_state = restored.state();
        diff_logical_states(&restored_state, &twin.session(ID).unwrap().state())
            .expect("rehydrated state ≡ never-evicted twin (buffered frontier)");

        // The late predecessor must still release the buffered successor.
        let got = subject.ingest_causal(ID, vec![e1.clone()]).unwrap();
        let want = twin.ingest_causal(ID, vec![e1.clone()]).unwrap();
        assert_eq!(got, want, "the rehydrated frontier cascades like the twin's");
        assert_eq!(got.len(), 2, "predecessor plus the released successor");
        assert_eq!(
            subject.session(ID).unwrap().current().entity().tuple(TupleId(0)).get(city),
            &Value::str("Chicago")
        );
    }
}

/// Field (b): undrained competing cells. Concurrent writes leave a
/// [`cr_core::ingest::CompetingCell`] waiting for `take_competing`;
/// evicting before the drain must not swallow it.
#[test]
fn eviction_preserves_undrained_competing_cells() {
    let spec = two_city_spec();
    let city = spec.schema().attr_id("city").unwrap();
    let mut s1 = SourceClock::new(SourceId(1));
    let mut s2 = SourceClock::new(SourceId(2));
    let a = CausalRevision { stamp: s1.stamp(1), rev: replace(TupleId(0), city, "SF") };
    let b = CausalRevision { stamp: s2.stamp(2), rev: replace(TupleId(0), city, "Boston") };

    let (mut subject, mut twin) = pair(&spec, 0);
    subject.ingest_causal(ID, vec![a.clone(), b.clone()]).unwrap();
    twin.ingest_causal(ID, vec![a, b]).unwrap();

    assert!(subject.evict(ID).unwrap());
    let restored_state = subject.session(ID).unwrap().state();
    let twin_state = twin.session(ID).unwrap().state();
    assert_eq!(
        restored_state.competing, twin_state.competing,
        "the undrained competing-cell buffer must survive eviction"
    );
    assert!(!restored_state.competing.is_empty(), "the scenario really competes");
    diff_logical_states(&restored_state, &twin_state).expect("full logical state matches");

    // Draining after rehydration yields exactly what the twin yields.
    let drained = subject.session(ID).unwrap().take_competing();
    let twin_drained = twin.session(ID).unwrap().take_competing();
    assert_eq!(drained, twin_drained);
    assert_eq!(drained.len(), 1);
    assert_eq!((drained[0].tuple, drained[0].attr), (TupleId(0), city));
    assert!(drained[0].candidates.contains(&(SourceId(1), Value::str("SF"))));
    assert!(drained[0].candidates.contains(&(SourceId(2), Value::str("Boston"))));
    assert!(subject.session(ID).unwrap().take_competing().is_empty(), "drained once");
}

/// Field (c): the quarantine log. Quarantined `(revision, error)` pairs —
/// and the cap that bounds them — must survive eviction, so an operator
/// can still inspect rejected corrections after the session went cold.
#[test]
fn eviction_preserves_quarantine_log_and_cap() {
    let spec = two_city_spec();
    let mut s1 = SourceClock::new(SourceId(1));
    // No CFDs in this spec: every retraction quarantines (UnknownCfd).
    let bad1 = CausalRevision { stamp: s1.stamp(1), rev: Revision::RetractCfd { cfd: 7 } };
    let bad2 = CausalRevision { stamp: s1.stamp(2), rev: Revision::RetractCfd { cfd: 9 } };

    let (mut subject, mut twin) = pair(&spec, 0);
    subject.ingest_causal(ID, vec![bad1.clone(), bad2.clone()]).unwrap();
    twin.ingest_causal(ID, vec![bad1, bad2]).unwrap();

    assert!(subject.evict(ID).unwrap());
    let restored_state = subject.session(ID).unwrap().state();
    let twin_state = twin.session(ID).unwrap().state();
    assert_eq!(
        restored_state.quarantine, twin_state.quarantine,
        "the quarantine log must survive eviction"
    );
    assert_eq!(restored_state.quarantine.len(), 2, "both rejects are retained");
    assert_eq!(
        restored_state.quarantine_cap, twin_state.quarantine_cap,
        "the quarantine cap must survive eviction"
    );
    assert_eq!(restored_state.telemetry.quarantined, 2);
    diff_logical_states(&restored_state, &twin_state).expect("full logical state matches");
}

/// Fields (d)+(e): the session epoch and the re-opened-answer bookkeeping,
/// across eviction — plus the duplicate-redelivery regression on the
/// rehydrated session: redelivering the correction that re-opened an
/// accepted answer must not re-open it again after a rehydration either.
#[test]
fn eviction_preserves_epoch_and_reopen_dedup() {
    let spec = two_city_spec();
    let city = spec.schema().attr_id("city").unwrap();
    let mut s1 = SourceClock::new(SourceId(1));
    let correction =
        CausalRevision { stamp: s1.stamp(1), rev: replace(TupleId(0), city, "Boston") };
    let mut input = UserInput::empty();
    input.values.insert(city, Value::str("Paris"));

    for snapshot_every in [0usize, 2] {
        let (mut subject, mut twin) = pair(&spec, snapshot_every);
        // Accept a local answer, then deliver a causally-concurrent
        // contradicting correction: the answer re-opens.
        subject.apply_input(ID, &input).unwrap();
        twin.apply_input(ID, &input).unwrap();
        subject.ingest_causal(ID, vec![correction.clone()]).unwrap();
        twin.ingest_causal(ID, vec![correction.clone()]).unwrap();
        let twin_reopened = twin.session(ID).unwrap().revision_telemetry().reopened;
        assert_eq!(twin_reopened, 1, "snapshot_every {snapshot_every}: the scenario re-opens");

        assert!(subject.evict(ID).unwrap());
        let restored_state = subject.session(ID).unwrap().state();
        let twin_state = twin.session(ID).unwrap().state();
        assert_eq!(
            restored_state.epoch, twin_state.epoch,
            "snapshot_every {snapshot_every}: the epoch must survive eviction"
        );
        assert_eq!(restored_state.telemetry.reopened, 1);
        diff_logical_states(&restored_state, &twin_state).expect("full logical state matches");

        // Redelivering the re-opening correction after rehydration: the
        // `(source, hlc)` dedup state also survived, so nothing re-opens
        // or double-counts on either side.
        assert!(subject.ingest_causal(ID, vec![correction.clone()]).unwrap().is_empty());
        assert!(twin.ingest_causal(ID, vec![correction.clone()]).unwrap().is_empty());
        let subject_t = subject.session(ID).unwrap().revision_telemetry();
        let twin_t = twin.session(ID).unwrap().revision_telemetry();
        assert_eq!(subject_t.reopened, 1, "redelivery must not re-open again");
        assert_eq!(subject_t.duplicates_dropped, 1, "the redelivery is dropped");
        assert_eq!(subject_t.reopened, twin_t.reopened);
        assert_eq!(subject_t.duplicates_dropped, twin_t.duplicates_dropped);
        diff_logical_states(
            &subject.session(ID).unwrap().state(),
            &twin.session(ID).unwrap().state(),
        )
        .expect("states still match after the duplicate redelivery");
    }
}
