//! Error type for constraint construction and parsing.

use std::fmt;

/// Errors raised while building or parsing constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintError {
    /// An attribute id does not exist in the schema.
    AttrOutOfRange(u16),
    /// An attribute name does not exist in the schema.
    UnknownAttribute(String),
    /// A CFD's RHS attribute also appears in its LHS.
    CfdRhsInLhs(String),
    /// A CFD LHS mentions the same attribute twice.
    DuplicateCfdLhsAttr(String),
    /// CFD pattern constants must be non-null.
    NullPatternConstant,
    /// Parse error with a human-readable message and byte offset.
    Parse {
        /// What went wrong.
        message: String,
        /// Byte offset in the input.
        offset: usize,
    },
}

impl ConstraintError {
    /// Builds a parse error.
    pub fn parse(message: impl Into<String>, offset: usize) -> Self {
        ConstraintError::Parse { message: message.into(), offset }
    }
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::AttrOutOfRange(a) => write!(f, "attribute id {a} out of range"),
            ConstraintError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            ConstraintError::CfdRhsInLhs(a) => {
                write!(f, "CFD right-hand side attribute `{a}` also appears on the left")
            }
            ConstraintError::DuplicateCfdLhsAttr(a) => {
                write!(f, "CFD left-hand side repeats attribute `{a}`")
            }
            ConstraintError::NullPatternConstant => {
                write!(f, "CFD pattern constants must be non-null")
            }
            ConstraintError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for ConstraintError {}
