//! Minimal offline stand-in for the `proptest` crate (see `shims/README.md`).
//!
//! Implements the strategy combinators and the `proptest!` macro surface this
//! workspace uses. Each test runs the configured number of random cases with
//! a deterministic per-test seed; failures report the generated inputs via
//! `Debug`. Counterexamples are **not** shrunk.

pub mod test_runner {
    //! Test execution support: config, RNG, case-level errors.

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — skipped, not failed.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 RNG used to drive generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG seeded from a test identifier (stable across runs).
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the fully qualified test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform value in `[lo, hi]` over i128 to cover all int widths.
        pub fn in_range(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi);
            let span = (hi - lo + 1) as u128;
            lo + (self.next_u64() as u128 % span) as i128
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values. Object safe; combinators require
    /// `Sized`.
    pub trait Strategy: 'static {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T + 'static,
        {
            Map { source: self, map: f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S + 'static,
        {
            FlatMap { source: self, flat_map: f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).gen_value(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + 'static>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T + 'static,
        T: 'static,
    {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.map)(self.source.gen_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        flat_map: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> S2 + 'static,
        S2: Strategy,
    {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.flat_map)(self.source.gen_value(rng)).gen_value(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T: 'static> Union<T> {
        /// A union of the given arms (at least one).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].gen_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.in_range(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.in_range(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident: $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// `&'static str` literals act as string strategies over a regex-like
    /// subset: literal characters, `\x` escapes, `[a-z0-9_]` classes and
    /// `{m}` / `{m,n}` repetition of the preceding unit.
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            let units = parse_pattern(self);
            let mut out = String::new();
            for (chars, lo, hi) in &units {
                let n = rng.in_range(*lo as i128, *hi as i128) as usize;
                for _ in 0..n {
                    out.push(chars[rng.below(chars.len() as u64) as usize]);
                }
            }
            out
        }
    }

    /// Parses the supported regex subset into `(alternatives, min, max)`
    /// repetition units.
    fn parse_pattern(pattern: &str) -> Vec<(Vec<char>, u32, u32)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut units: Vec<(Vec<char>, u32, u32)> = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set: Vec<char> = match chars[i] {
                '\\' => {
                    i += 1;
                    vec![*chars.get(i).expect("dangling escape in pattern")]
                }
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if chars[i] == '\\' {
                            i += 1;
                            set.push(chars[i]);
                        } else if i + 2 < chars.len()
                            && chars[i + 1] == '-'
                            && chars[i + 2] != ']'
                        {
                            let (a, b) = (chars[i], chars[i + 2]);
                            set.extend((a..=b).collect::<Vec<char>>());
                            i += 2;
                        } else {
                            set.push(chars[i]);
                        }
                        i += 1;
                    }
                    assert!(i < chars.len(), "unterminated class in `{pattern}`");
                    set
                }
                c => vec![c],
            };
            i += 1;
            // Optional quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("bad quantifier"),
                        b.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n: u32 = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(!set.is_empty(), "empty alternative set in `{pattern}`");
            units.push((set, lo, hi));
        }
        units
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Size specifications accepted by [`vec()`] and [`btree_set`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Generates `Vec`s of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.in_range(self.size.lo as i128, self.size.hi as i128) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Generates `BTreeSet`s of `element`; sizes are best-effort (duplicate
    /// draws shrink the set, as in real proptest's min-size-0 behaviour).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`btree_set`].
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = rng.in_range(self.size.lo as i128, self.size.hi as i128) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `None` or `Some` (50/50) of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(2) == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

/// Runs property tests: an optional `#![proptest_config(..)]` line followed
/// by `#[test]` functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(64);
                while passed < config.cases {
                    attempts += 1;
                    if attempts > max_attempts {
                        panic!(
                            "proptest {}: too many rejected cases ({} passed of {} wanted)",
                            stringify!($name), passed, config.cases
                        );
                    }
                    let __vals = ($($crate::strategy::Strategy::gen_value(&($strat), &mut rng),)+);
                    let __dbg = format!("{:#?}", __vals);
                    let ($($pat,)+) = __vals;
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    match __result {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                            "proptest {} failed at case {}: {}\ninputs: {}",
                            stringify!($name), passed, msg, __dbg
                        ),
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` == `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds (not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}
