//! First-UIP conflict analysis with recursive clause minimisation.

use super::{ClauseRef, Solver};
use crate::lit::Lit;

impl Solver {
    /// Analyzes a conflict, returning the learnt clause (asserting literal
    /// first) and the decision level to backtrack to.
    ///
    /// Standard first-UIP scheme: walk the implication graph backwards from
    /// the conflict, keeping literals from lower levels and resolving away
    /// current-level literals until exactly one remains.
    pub(crate) fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let current_level = self.decision_level();
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 = asserting literal
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = conflict;

        loop {
            self.bump_clause_activity(confl);
            let start = usize::from(p.is_some());
            for k in start..self.clauses[confl as usize].lits.len() {
                let q = self.clauses[confl as usize].lits[k];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var_activity(v);
                    if self.level[v.index()] >= current_level {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next marked literal on the trail.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            self.seen[lit.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                break;
            }
            confl = self.reason[lit.var().index()]
                .expect("non-decision literal on conflict path must have a reason");
        }
        learnt[0] = p.expect("conflict at level > 0 has a UIP").negate();

        // Minimise: drop literals implied by the rest of the clause.
        let original: Vec<Lit> = learnt.clone();
        let keep_mask: Vec<bool> = learnt
            .iter()
            .enumerate()
            .map(|(i, &l)| i == 0 || !self.literal_redundant(l))
            .collect();
        let mut i = 0;
        learnt.retain(|_| {
            let keep = keep_mask[i];
            i += 1;
            keep
        });
        self.stats.minimised_literals += keep_mask.iter().filter(|k| !**k).count() as u64;

        // Clear every `seen` mark set during analysis (kept *and* removed).
        for l in &original {
            self.seen[l.var().index()] = false;
        }

        // Compute the backtrack level: second-highest level in the clause.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for k in 2..learnt.len() {
                if self.level[learnt[k].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = k;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt_level)
    }

    /// True iff `lit` is implied by the other (marked) literals of the learnt
    /// clause — i.e. every path from `lit`'s reason bottoms out in marked or
    /// level-0 literals. Iterative DFS over the implication graph.
    fn literal_redundant(&mut self, lit: Lit) -> bool {
        let Some(reason0) = self.reason[lit.var().index()] else {
            return false; // decision literal, not removable
        };
        // DFS stack of (clause, next literal index). Track which vars we mark
        // so failures can roll back.
        let mut stack: Vec<(ClauseRef, usize)> = vec![(reason0, 1)];
        let mut marked: Vec<u32> = Vec::new();
        while let Some(&mut (cref, ref mut next)) = stack.last_mut() {
            if *next >= self.clauses[cref as usize].lits.len() {
                stack.pop();
                continue;
            }
            let q = self.clauses[cref as usize].lits[*next];
            *next += 1;
            let v = q.var();
            if self.seen[v.index()] || self.level[v.index()] == 0 {
                continue; // already known to be covered
            }
            match self.reason[v.index()] {
                None => {
                    // Reached an unmarked decision: `lit` is not redundant.
                    for m in marked {
                        self.seen[m as usize] = false;
                    }
                    return false;
                }
                Some(r) => {
                    // Tentatively mark and recurse into its reason.
                    self.seen[v.index()] = true;
                    marked.push(v.0);
                    stack.push((r, 1));
                }
            }
        }
        // All paths covered; keep the tentative marks (they are genuinely
        // implied and speed up sibling checks), remembering nothing to undo:
        // analyze() clears `seen` only for kept literals, so clear the
        // temporary marks here.
        for m in marked {
            self.seen[m as usize] = false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use crate::solver::{SolveResult, Solver};

    /// A formula whose refutation requires resolving learnt clauses.
    #[test]
    fn learns_and_refutes_xor_chain() {
        // x1 ⊕ x2 ⊕ x3 = 0 and x1 ⊕ x2 ⊕ x3 = 1 encoded in CNF: UNSAT.
        let mut s = Solver::new();
        let v: Vec<_> = (0..3).map(|_| s.new_var()).collect();
        let even = [[1i64, 2, -3], [1, -2, 3], [-1, 2, 3], [-1, -2, -3]];
        let odd = [[-1i64, -2, 3], [-1, 2, -3], [1, -2, -3], [1, 2, 3]];
        for c in even.iter().chain(odd.iter()) {
            s.add_clause(c.iter().map(|&x| v[(x.unsigned_abs() - 1) as usize].lit(x > 0)));
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn minimisation_counter_moves() {
        // A modest pigeonhole instance exercises minimisation.
        let mut s = Solver::new();
        let n = 5;
        let p: Vec<Vec<_>> = (0..n).map(|_| (0..n - 1).map(|_| s.new_var()).collect()).collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.positive()));
        }
        for j in 0..n - 1 {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause([p[i1][j].negative(), p[i2][j].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }
}
