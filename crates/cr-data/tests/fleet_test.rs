//! The simulated-fleet differential: every acknowledged mutation is
//! durably applied exactly once and the final state equals a canonical
//! single-client replay — under a clean wire, under each channel fault in
//! isolation, under all of them at once, and under deliberate overload.
//!
//! `run_fleet` performs the verification itself at teardown (log scan,
//! exactly-once per mutation category, `verify_recovery` against the
//! replayed reference); these tests drive it through the fault matrix and
//! additionally pin the telemetry each profile must produce.

use cr_data::fleet::{run_fleet, ChannelFaults, FleetConfig};
use cr_server::admission::AdmissionConfig;

fn base(seed: u64) -> FleetConfig {
    FleetConfig { seed, ..FleetConfig::default() }
}

#[test]
fn clean_wire_fleet_converges_without_retries() {
    for seed in 0..4 {
        let report = run_fleet(&base(seed)).expect("clean fleet converges");
        assert_eq!(report.acked, report.ops);
        assert_eq!(report.dropped + report.duplicated + report.delayed, 0);
        assert_eq!(report.retries, 0, "a clean wire needs no retries (seed {seed})");
        assert_eq!(report.serve.idem_hits, 0);
        assert!(report.mutations_acked > 0);
    }
}

#[test]
fn dropped_messages_are_recovered_by_retry() {
    let mut saw_drop = false;
    for seed in 0..6 {
        let cfg = FleetConfig {
            faults: ChannelFaults { drop: 0.2, ..ChannelFaults::clean() },
            ..base(seed)
        };
        let report = run_fleet(&cfg).expect("drop-only fleet converges");
        assert_eq!(report.acked, report.ops);
        saw_drop |= report.dropped > 0;
        if report.dropped > 0 {
            assert!(report.retries > 0, "drops must force retries (seed {seed})");
        }
    }
    assert!(saw_drop, "a 20% drop rate must strike at least once across seeds");
}

#[test]
fn duplicated_messages_are_absorbed_by_the_ledger() {
    let mut saw_replay = false;
    for seed in 0..6 {
        let cfg = FleetConfig {
            faults: ChannelFaults { duplicate: 0.35, max_delay: 4, ..ChannelFaults::clean() },
            ..base(seed)
        };
        let report = run_fleet(&cfg).expect("duplicate-only fleet converges");
        assert_eq!(report.acked, report.ops);
        saw_replay |= report.serve.idem_hits > 0;
    }
    assert!(
        saw_replay,
        "a 35% duplication rate must produce at least one idempotent replay"
    );
}

#[test]
fn delayed_and_reordered_messages_preserve_exactly_once() {
    for seed in 0..6 {
        let cfg = FleetConfig {
            faults: ChannelFaults { delay: 0.5, max_delay: 8, ..ChannelFaults::clean() },
            ..base(seed)
        };
        let report = run_fleet(&cfg).expect("delay-only fleet converges");
        assert_eq!(report.acked, report.ops);
        assert!(report.delayed > 0, "a 50% delay rate must strike (seed {seed})");
    }
}

#[test]
fn mid_batch_disconnects_do_not_lose_or_double_apply_corrections() {
    let mut saw_disconnect = false;
    for seed in 0..8 {
        let cfg = FleetConfig {
            faults: ChannelFaults {
                disconnect: 0.5,
                disconnect_ticks: 10,
                ..ChannelFaults::clean()
            },
            ..base(seed)
        };
        let report = run_fleet(&cfg).expect("disconnect-only fleet converges");
        assert_eq!(report.acked, report.ops);
        saw_disconnect |= report.disconnects > 0;
    }
    assert!(saw_disconnect, "a 50% disconnect rate must sever at least one batch");
}

#[test]
fn fully_hostile_wire_preserves_the_differential() {
    for seed in 0..6 {
        let cfg = FleetConfig { faults: ChannelFaults::faulty(), ..base(seed) };
        let report = run_fleet(&cfg).expect("hostile-wire fleet converges");
        assert_eq!(report.acked, report.ops);
        assert!(report.latencies.len() as u64 == report.ops);
    }
}

#[test]
fn overloaded_tenants_are_shed_with_typed_errors_and_still_finish() {
    // Eight clients folded onto two tenants, against a tight token budget
    // and short queues: admission must shed, clients must back off on the
    // retry-after hint, and every operation must still complete.
    let cfg = FleetConfig {
        clients: 8,
        tenants: 2,
        max_attempts: 40,
        max_ticks: 20_000,
        admission: AdmissionConfig {
            refill_per_tick: 1,
            burst: 3,
            queue_cap: 3,
            max_in_flight: 4,
            ..AdmissionConfig::default()
        },
        ..base(7)
    };
    let report = run_fleet(&cfg).expect("overloaded fleet converges");
    assert_eq!(report.acked, report.ops);
    assert!(
        report.serve.shed_rate + report.serve.shed_queue > 0,
        "this profile must shed: {}",
        report.serve
    );
    assert_eq!(
        report.overloaded_replies,
        report.serve.shed_rate + report.serve.shed_queue,
        "every shed surfaces to a client as a typed Overloaded reply"
    );
    assert!(report.retries > 0);
}
