/root/repo/target/release/deps/probe3-03a34e3b08779629.d: crates/cr-bench/src/bin/probe3.rs

/root/repo/target/release/deps/probe3-03a34e3b08779629: crates/cr-bench/src/bin/probe3.rs

crates/cr-bench/src/bin/probe3.rs:
