/root/repo/target/debug/deps/phase_probe-8cc0ca0310a8788c.d: crates/cr-bench/src/bin/phase_probe.rs

/root/repo/target/debug/deps/phase_probe-8cc0ca0310a8788c: crates/cr-bench/src/bin/phase_probe.rs

crates/cr-bench/src/bin/phase_probe.rs:
