/root/repo/target/debug/deps/parser_proptest-906ed54ae48a397c.d: crates/cr-constraints/tests/parser_proptest.rs

/root/repo/target/debug/deps/parser_proptest-906ed54ae48a397c: crates/cr-constraints/tests/parser_proptest.rs

crates/cr-constraints/tests/parser_proptest.rs:
