/root/repo/target/debug/deps/cr_types-70a0c7069c8ff854.d: crates/cr-types/src/lib.rs crates/cr-types/src/csv.rs crates/cr-types/src/entity.rs crates/cr-types/src/error.rs crates/cr-types/src/interner.rs crates/cr-types/src/schema.rs crates/cr-types/src/tuple.rs crates/cr-types/src/value.rs

/root/repo/target/debug/deps/cr_types-70a0c7069c8ff854: crates/cr-types/src/lib.rs crates/cr-types/src/csv.rs crates/cr-types/src/entity.rs crates/cr-types/src/error.rs crates/cr-types/src/interner.rs crates/cr-types/src/schema.rs crates/cr-types/src/tuple.rs crates/cr-types/src/value.rs

crates/cr-types/src/lib.rs:
crates/cr-types/src/csv.rs:
crates/cr-types/src/entity.rs:
crates/cr-types/src/error.rs:
crates/cr-types/src/interner.rs:
crates/cr-types/src/schema.rs:
crates/cr-types/src/tuple.rs:
crates/cr-types/src/value.rs:
