/root/repo/target/debug/deps/validity-c8fb9578dade666b.d: crates/cr-bench/benches/validity.rs Cargo.toml

/root/repo/target/debug/deps/libvalidity-c8fb9578dade666b.rmeta: crates/cr-bench/benches/validity.rs Cargo.toml

crates/cr-bench/benches/validity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
