//! Dataset-compiled constraint programs.
//!
//! The Fig. 4 loop resolves every entity of a dataset against the *same*
//! Σ (currency constraints) and Γ (constant CFDs), yet naive per-entity
//! encoding re-derives each constraint's referenced-attribute set, premise
//! decomposition and CFD pattern lookups from scratch for every entity. A
//! [`CompiledProgram`] performs that derivation **once per dataset**:
//!
//! * per currency constraint, the sorted referenced-attribute projection
//!   key, the order premises, and the comparison predicates split into
//!   unary (constant, per-side) and binary (tuple) conjuncts — so pair
//!   instantiation can pre-evaluate the unary conjuncts once per distinct
//!   projection instead of once per ordered pair;
//! * per constant CFD, the pattern constants resolved to the dataset
//!   [`ValueTable`]'s dense [`GlobalValueId`]s — so per-entity pattern
//!   matching is an integer lookup against the entity's global-id rows
//!   instead of a `Value` hash;
//! * the table's identity token, `debug_assert`-checked against every
//!   entity the program is projected onto (a program compiled for one id
//!   universe must never meet an entity interned against another).
//!
//! `Specification` caches one `Arc<CompiledProgram>` (shared by clones, so
//! every round of a resolution and every entity stamped by a dataset
//! generator reuses it); [`compile_count`] counts actual compilations so
//! benchmarks can enforce the compile-once-per-dataset invariant in CI.

use std::sync::atomic::{AtomicUsize, Ordering};

use cr_constraints::{CompOp, ConstantCfd, CurrencyConstraint, Predicate, TupleRef};
use cr_types::{AttrId, GlobalValueId, Value, ValueTable};

/// Global count of [`CompiledProgram::compile`] runs — telemetry for the
/// compile-once-per-dataset invariant (`bench_incremental --smoke`).
static COMPILE_COUNT: AtomicUsize = AtomicUsize::new(0);

/// Number of constraint programs compiled so far in this process.
pub fn compile_count() -> usize {
    COMPILE_COUNT.load(Ordering::Relaxed)
}

/// A constant comparison `ti[attr] op c`, with the constant pre-resolved to
/// its dataset-wide global id when the program was compiled with a table
/// (equality against a table value then needs no `Value` compare at all).
#[derive(Clone, Debug)]
pub(crate) struct CompiledConstCmp {
    pub attr: AttrId,
    pub op: CompOp,
    pub constant: Value,
    /// The constant's [`GlobalValueId`] in the program's table, if any.
    pub gid: Option<GlobalValueId>,
}

impl CompiledConstCmp {
    /// Evaluates the conjunct on the tuple `tid` of `entity`, matching
    /// [`Predicate::eval_comparison`] exactly: a null operand is `false`.
    /// `use_gids` gates the global-id fast path — callers pass `true` only
    /// when the program and entity share one [`ValueTable`] id universe.
    #[inline]
    pub(crate) fn eval_gated(
        &self,
        entity: &cr_types::EntityInstance,
        tid: cr_types::TupleId,
        use_gids: bool,
    ) -> bool {
        let local = entity.dense_id(tid, self.attr);
        if local == cr_types::NULL_VALUE_ID {
            return false;
        }
        // Fast path: *matching* global ids prove value equality, deciding
        // Eq/Neq with one integer compare. Distinct ids are not conclusive
        // (the semantic ordering equates e.g. `Int(3)` and `Float(3.0)`),
        // so a miss falls through to the semantic evaluation.
        if use_gids {
            if let Some(gid) = self.gid {
                if entity.global_of_local(local) == gid {
                    match self.op {
                        CompOp::Eq => return true,
                        CompOp::Neq => return false,
                        _ => {}
                    }
                }
            }
        }
        self.op.eval(entity.dense_value(local), &self.constant)
    }

    /// Evaluates the conjunct on an arbitrary tuple (the user-input tuple
    /// `to`, which has no dense row) — pure `Value` evaluation with
    /// [`Predicate::eval_comparison`]'s null semantics.
    #[inline]
    pub(crate) fn eval_tuple(&self, t: &cr_types::Tuple) -> bool {
        let v = t.get(self.attr);
        !v.is_null() && !self.constant.is_null() && self.op.eval(v, &self.constant)
    }
}

/// One currency constraint with its per-dataset derivations (see the
/// module docs). Field order mirrors evaluation order in the encoder.
#[derive(Clone, Debug)]
pub(crate) struct CompiledConstraint {
    /// Sorted, deduplicated premise ∪ conclusion attributes — the
    /// projection-grouping key of `Instantiation(Se)` step 4.
    pub referenced_attrs: Vec<AttrId>,
    /// Attributes of the symbolic order premises, in premise order.
    pub order_premises: Vec<AttrId>,
    /// Binary comparison conjuncts `t1[attr] op t2[attr]`.
    pub tuple_cmps: Vec<(AttrId, CompOp)>,
    /// Unary conjuncts on `t1` / on `t2` — evaluated once per distinct
    /// projection, not once per ordered pair.
    pub t1_consts: Vec<CompiledConstCmp>,
    pub t2_consts: Vec<CompiledConstCmp>,
    /// The conclusion attribute `Ar` of `t1 ≺_Ar t2`.
    pub conclusion_attr: AttrId,
}

/// One constant CFD with pattern constants in dense-id form.
#[derive(Clone, Debug)]
pub(crate) struct CompiledCfd {
    /// LHS pattern `(attr, constant, table id)`.
    pub lhs: Vec<(AttrId, Value, Option<GlobalValueId>)>,
    /// RHS `(attr, constant, table id)`.
    pub rhs: (AttrId, Value, Option<GlobalValueId>),
}

/// The compiled form of a dataset's Σ/Γ — built once, projected onto every
/// entity (see the module docs and the "Encoding modes" section of
/// [`crate::encode`]).
#[derive(Debug)]
pub struct CompiledProgram {
    pub(crate) sigma: Vec<CompiledConstraint>,
    pub(crate) gamma: Vec<CompiledCfd>,
    /// [`ValueTable::token`] of the table the constants were resolved
    /// against, if one was supplied.
    table_token: Option<u64>,
}

impl CompiledProgram {
    /// Compiles Σ/Γ, resolving constants against `table` when supplied.
    /// Compile with the dataset's shared [`ValueTable`] whenever one exists:
    /// constants then match entity cells by dense global id. Without a
    /// table the program still caches every structural derivation; constant
    /// matching falls back to `Value` comparisons.
    pub fn compile(
        sigma: &[CurrencyConstraint],
        gamma: &[ConstantCfd],
        table: Option<&ValueTable>,
    ) -> Self {
        COMPILE_COUNT.fetch_add(1, Ordering::Relaxed);
        let resolve = |v: &Value| table.and_then(|t| t.get(v));
        let sigma = sigma
            .iter()
            .map(|c| {
                let mut cc = CompiledConstraint {
                    referenced_attrs: c.referenced_attrs(),
                    order_premises: Vec::new(),
                    tuple_cmps: Vec::new(),
                    t1_consts: Vec::new(),
                    t2_consts: Vec::new(),
                    conclusion_attr: c.conclusion_attr(),
                };
                for p in c.premises() {
                    match p {
                        Predicate::Order { attr } => cc.order_premises.push(*attr),
                        Predicate::TupleCmp { attr, op } => cc.tuple_cmps.push((*attr, *op)),
                        Predicate::ConstCmp { tuple, attr, op, constant } => {
                            let compiled = CompiledConstCmp {
                                attr: *attr,
                                op: *op,
                                constant: constant.clone(),
                                gid: resolve(constant),
                            };
                            match tuple {
                                TupleRef::T1 => cc.t1_consts.push(compiled),
                                TupleRef::T2 => cc.t2_consts.push(compiled),
                            }
                        }
                    }
                }
                cc
            })
            .collect();
        let gamma = gamma
            .iter()
            .map(|cfd| CompiledCfd {
                lhs: cfd
                    .lhs()
                    .iter()
                    .map(|(a, v)| (*a, v.clone(), resolve(v)))
                    .collect(),
                rhs: {
                    let (a, v) = cfd.rhs();
                    (*a, v.clone(), resolve(v))
                },
            })
            .collect();
        CompiledProgram { sigma, gamma, table_token: table.map(|t| t.token()) }
    }

    /// Token of the [`ValueTable`] the constants were resolved against.
    pub fn table_token(&self) -> Option<u64> {
        self.table_token
    }

    /// `(|Σ|, |Γ|)` of the compiled program — sanity-checked against the
    /// specification it is used with.
    pub fn sizes(&self) -> (usize, usize) {
        (self.sigma.len(), self.gamma.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_constraints::parser::{parse_cfds, parse_currency_constraint};
    use cr_types::Schema;

    #[test]
    fn compile_splits_premises_and_resolves_constants() {
        let s = Schema::new("p", ["status", "job", "kids"]).unwrap();
        let mut table = ValueTable::new();
        let working = table.intern(&Value::str("working"));
        let c = parse_currency_constraint(
            &s,
            r#"t1[status] = "working" && t1[kids] < t2[kids] && t1 <[status] t2 -> t1 <[job] t2"#,
        )
        .unwrap();
        let gamma = parse_cfds(&s, "status = \"working\" -> job = \"nurse\"").unwrap();
        let before = compile_count();
        let p = CompiledProgram::compile(&[c], &gamma, Some(&table));
        assert_eq!(compile_count(), before + 1);
        assert_eq!(p.sizes(), (1, 1));
        assert_eq!(p.table_token(), Some(table.token()));
        let cc = &p.sigma[0];
        let status = s.attr_id("status").unwrap();
        let job = s.attr_id("job").unwrap();
        let kids = s.attr_id("kids").unwrap();
        assert_eq!(cc.referenced_attrs, vec![status, job, kids]);
        assert_eq!(cc.order_premises, vec![status]);
        assert_eq!(cc.tuple_cmps, vec![(kids, CompOp::Lt)]);
        assert_eq!(cc.t1_consts.len(), 1);
        assert_eq!(cc.t1_consts[0].gid, Some(working));
        assert!(cc.t2_consts.is_empty());
        assert_eq!(cc.conclusion_attr, job);
        // "nurse" is not in the table: falls back to Value matching.
        assert_eq!(p.gamma[0].lhs[0].2, Some(working));
        assert_eq!(p.gamma[0].rhs.2, None);
    }
}
