/root/repo/target/debug/deps/cr_data-04ae9feb9a348151.d: crates/cr-data/src/lib.rs crates/cr-data/src/career.rs crates/cr-data/src/gen_util.rs crates/cr-data/src/nba.rs crates/cr-data/src/person.rs crates/cr-data/src/vjday.rs

/root/repo/target/debug/deps/libcr_data-04ae9feb9a348151.rmeta: crates/cr-data/src/lib.rs crates/cr-data/src/career.rs crates/cr-data/src/gen_util.rs crates/cr-data/src/nba.rs crates/cr-data/src/person.rs crates/cr-data/src/vjday.rs

crates/cr-data/src/lib.rs:
crates/cr-data/src/career.rs:
crates/cr-data/src/gen_util.rs:
crates/cr-data/src/nba.rs:
crates/cr-data/src/person.rs:
crates/cr-data/src/vjday.rs:
