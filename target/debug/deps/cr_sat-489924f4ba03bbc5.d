/root/repo/target/debug/deps/cr_sat-489924f4ba03bbc5.d: crates/cr-sat/src/lib.rs crates/cr-sat/src/cnf.rs crates/cr-sat/src/dimacs.rs crates/cr-sat/src/lit.rs crates/cr-sat/src/solver/mod.rs crates/cr-sat/src/solver/analyze.rs crates/cr-sat/src/solver/decide.rs crates/cr-sat/src/solver/propagate.rs crates/cr-sat/src/solver/reduce.rs crates/cr-sat/src/solver/restart.rs crates/cr-sat/src/stats.rs crates/cr-sat/src/unit_propagation.rs

/root/repo/target/debug/deps/cr_sat-489924f4ba03bbc5: crates/cr-sat/src/lib.rs crates/cr-sat/src/cnf.rs crates/cr-sat/src/dimacs.rs crates/cr-sat/src/lit.rs crates/cr-sat/src/solver/mod.rs crates/cr-sat/src/solver/analyze.rs crates/cr-sat/src/solver/decide.rs crates/cr-sat/src/solver/propagate.rs crates/cr-sat/src/solver/reduce.rs crates/cr-sat/src/solver/restart.rs crates/cr-sat/src/stats.rs crates/cr-sat/src/unit_propagation.rs

crates/cr-sat/src/lib.rs:
crates/cr-sat/src/cnf.rs:
crates/cr-sat/src/dimacs.rs:
crates/cr-sat/src/lit.rs:
crates/cr-sat/src/solver/mod.rs:
crates/cr-sat/src/solver/analyze.rs:
crates/cr-sat/src/solver/decide.rs:
crates/cr-sat/src/solver/propagate.rs:
crates/cr-sat/src/solver/reduce.rs:
crates/cr-sat/src/solver/restart.rs:
crates/cr-sat/src/stats.rs:
crates/cr-sat/src/unit_propagation.rs:
