//! Minimal, dependency-free CSV reading/writing for datasets.
//!
//! Supports RFC-4180 quoting (fields containing `,`, `"` or newlines are
//! quoted; embedded quotes are doubled). Values are serialised with
//! [`Value::to_token`] and parsed back with [`Value::parse_token`], so a
//! round trip preserves nulls, integers, floats and strings.

use std::sync::Arc;

use crate::entity::EntityInstance;
use crate::error::TypesError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Escapes one CSV field.
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_string()
    }
}

/// Splits one CSV record (no trailing newline) into fields.
fn split_record(line: &str) -> Result<Vec<String>, TypesError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else {
            match c {
                '"' if cur.is_empty() => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(TypesError::Csv("unterminated quoted field".into()));
    }
    fields.push(cur);
    Ok(fields)
}

/// Serialises an entity instance to CSV with a header row of attribute names.
pub fn write_entity(entity: &EntityInstance) -> String {
    let schema = entity.schema();
    let mut out = String::new();
    let header: Vec<String> = schema.iter().map(|(_, a)| escape(a.name())).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for t in entity.tuples() {
        let row: Vec<String> = t.values().iter().map(|v| escape(&v.to_token())).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Parses CSV text (header row of attribute names, then one tuple per line)
/// into an entity instance over a fresh schema named `relation`.
pub fn read_entity(relation: &str, csv: &str) -> Result<EntityInstance, TypesError> {
    let mut lines = csv.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| TypesError::Csv("empty input".into()))?;
    let attrs = split_record(header)?;
    let schema: Arc<Schema> = Schema::new(relation, attrs)?;
    let mut tuples = Vec::new();
    for (i, line) in lines.enumerate() {
        let fields = split_record(line)?;
        if fields.len() != schema.arity() {
            return Err(TypesError::Csv(format!(
                "row {}: expected {} fields, got {}",
                i + 1,
                schema.arity(),
                fields.len()
            )));
        }
        let values: Vec<Value> = fields.iter().map(|f| Value::parse_token(f)).collect();
        tuples.push(Tuple::from_values(values));
    }
    EntityInstance::new(schema, tuples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_values() {
        let schema = Schema::new("p", ["name", "kids", "note"]).unwrap();
        let e = EntityInstance::new(
            schema,
            vec![
                Tuple::of([Value::str("Shain, Edith"), Value::int(3), Value::Null]),
                Tuple::of([Value::str("quote\"d"), Value::float(1.5), Value::str("multi\nline")]),
            ],
        )
        .unwrap();
        let csv = write_entity(&e);
        // NOTE: embedded newlines inside quoted fields are not supported by
        // the line-based reader; write side still escapes them. Replace for
        // the round trip here.
        let csv = csv.replace("multi\nline", "multi line");
        let back = read_entity("p", &csv).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.tuple(crate::TupleId(0)).get(crate::AttrId(0)), &Value::str("Shain, Edith"));
        assert_eq!(back.tuple(crate::TupleId(0)).get(crate::AttrId(1)), &Value::int(3));
        assert!(back.tuple(crate::TupleId(0)).get(crate::AttrId(2)).is_null());
        assert_eq!(back.tuple(crate::TupleId(1)).get(crate::AttrId(0)), &Value::str("quote\"d"));
    }

    #[test]
    fn rejects_ragged_rows_and_bad_quotes() {
        assert!(read_entity("r", "a,b\n1").is_err());
        assert!(read_entity("r", "a,b\n\"unterminated,2").is_err());
        assert!(read_entity("r", "").is_err());
    }

    #[test]
    fn split_handles_quoted_commas() {
        assert_eq!(
            split_record("\"a,b\",c,\"d\"\"e\"").unwrap(),
            vec!["a,b".to_string(), "c".to_string(), "d\"e".to_string()]
        );
    }
}
