/root/repo/target/release/deps/summary-662a950f60e2768f.d: crates/cr-bench/src/bin/summary.rs

/root/repo/target/release/deps/summary-662a950f60e2768f: crates/cr-bench/src/bin/summary.rs

crates/cr-bench/src/bin/summary.rs:
