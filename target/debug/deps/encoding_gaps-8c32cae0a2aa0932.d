/root/repo/target/debug/deps/encoding_gaps-8c32cae0a2aa0932.d: crates/cr-core/tests/encoding_gaps.rs Cargo.toml

/root/repo/target/debug/deps/libencoding_gaps-8c32cae0a2aa0932.rmeta: crates/cr-core/tests/encoding_gaps.rs Cargo.toml

crates/cr-core/tests/encoding_gaps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
