//! Differential tests for lazy axiom instantiation: resolution with the
//! lazy engine default must produce exactly the same outcome as the eager
//! engine and both from-scratch baselines — on curated specs, the seed
//! datasets, and randomized scenarios from `cr_data::gen` (including
//! out-of-domain and CFD-LHS user answers).
//!
//! Component-level equalities (validity, deduction, exact true values) are
//! checked too: they are what the outcome equality rests on.

use cr_core::framework::{DeductionMethod, GroundTruthOracle, ResolutionConfig, Resolver};
use cr_core::{
    deduce_order, exact_true_values, is_valid_encoded, naive_deduce, EncodeOptions, EncodedSpec,
    ResolutionOutcome, Specification,
};
use cr_data::gen::{scenario_from_raw, Scenario, ScenarioConfig};
use cr_types::Tuple;
use proptest::prelude::*;

/// Resolves `spec` on all four paths: (lazy, eager) × (incremental,
/// scratch). The lazy incremental configuration is the engine default.
fn resolve_four(spec: &Specification, truth: &Tuple, cap: usize) -> [ResolutionOutcome; 4] {
    let run = |encode: EncodeOptions, incremental: bool| {
        let config = ResolutionConfig { encode, incremental, ..Default::default() };
        let mut oracle = GroundTruthOracle::with_cap(truth.clone(), cap);
        Resolver::new(config).resolve(spec, &mut oracle)
    };
    [
        run(EncodeOptions::lazy(), true),
        run(EncodeOptions::eager(), true),
        run(EncodeOptions::lazy(), false),
        run(EncodeOptions::eager(), false),
    ]
}

fn assert_four_agree(spec: &Specification, truth: &Tuple, cap: usize) {
    let [lazy_inc, eager_inc, lazy_scr, eager_scr] = resolve_four(spec, truth, cap);
    for (label, other) in [
        ("eager incremental", &eager_inc),
        ("lazy scratch", &lazy_scr),
        ("eager scratch", &eager_scr),
    ] {
        assert_eq!(lazy_inc.valid, other.valid, "validity diverged vs {label}");
        assert_eq!(lazy_inc.complete, other.complete, "completeness diverged vs {label}");
        assert_eq!(lazy_inc.resolved, other.resolved, "resolved tuple diverged vs {label}");
        assert_eq!(
            lazy_inc.interactions, other.interactions,
            "interaction count diverged vs {label}"
        );
        assert_eq!(lazy_inc.user_values, other.user_values, "answer count diverged vs {label}");
        assert_eq!(lazy_inc.ot_size, other.ot_size, "|Ot| diverged vs {label}");
    }
    assert_eq!(lazy_inc.rebuilds, 0, "lazy guarded engine must never rebuild");
    assert_eq!(eager_inc.rebuilds, 0, "eager guarded engine must never rebuild");
    assert_eq!(eager_inc.injected_axioms, 0, "eager mode never injects");
    assert_eq!(eager_scr.injected_axioms, 0, "eager scratch never injects");
}

/// Component-level differential: validity, UP deduction, complete (NaiveSat)
/// deduction and the exact true values must agree between a lazy and an
/// eager encoding of the same spec.
fn assert_components_agree(spec: &Specification) {
    let eager = EncodedSpec::encode_with(spec, EncodeOptions::eager());
    let lazy = EncodedSpec::encode_with(spec, EncodeOptions::lazy());
    assert!(
        lazy.cnf().num_clauses() <= eager.cnf().num_clauses(),
        "lazy must not materialise more clauses than eager"
    );
    let v_eager = is_valid_encoded(&eager).valid;
    let v_lazy = is_valid_encoded(&lazy).valid;
    assert_eq!(v_eager, v_lazy, "validity diverged");
    if !v_eager {
        return;
    }
    // DeduceOrder (unit propagation + lazy instantiation).
    let od_eager = deduce_order(&eager).expect("valid");
    let od_lazy = deduce_order(&lazy).expect("valid");
    assert_eq!(od_eager.size(), od_lazy.size(), "UP deduction sizes diverged");
    for attr in spec.schema().attr_ids() {
        for (lo, hi) in od_eager.pairs(attr) {
            assert!(od_lazy.contains(attr, lo, hi), "UP pair missing under lazy");
        }
    }
    // NaiveDeduce (CEGAR probes) — complete, so sizes must match exactly.
    let nd_eager = naive_deduce(&eager).expect("valid");
    let nd_lazy = naive_deduce(&lazy).expect("valid");
    assert_eq!(nd_eager.size(), nd_lazy.size(), "NaiveDeduce sizes diverged");
    for attr in spec.schema().attr_ids() {
        for (lo, hi) in nd_eager.pairs(attr) {
            assert!(nd_lazy.contains(attr, lo, hi), "NaiveDeduce pair missing under lazy");
        }
    }
    // Exact true values (possible-current-value probes).
    assert_eq!(
        exact_true_values(&eager),
        exact_true_values(&lazy),
        "exact true values diverged"
    );
}

/// The compiled-program projection must produce **exactly** the reference
/// per-entity instantiation's Ω(Se) — same instances, same order (rule
/// derivation is order sensitive, so set equality is not enough).
fn assert_omega_matches_reference(spec: &Specification) {
    let reference = cr_core::encode::omega_reference(spec);
    let compiled = cr_core::encode::omega_compiled(spec);
    assert_eq!(
        reference.len(),
        compiled.len(),
        "compiled Ω(Se) has a different instance count"
    );
    assert_eq!(reference, compiled, "compiled Ω(Se) diverged from the reference path");
}

#[test]
fn compiled_omega_matches_reference_on_seed_datasets() {
    for spec in [cr_data::vjday::edith_spec(), cr_data::vjday::george_spec()] {
        assert_omega_matches_reference(&spec);
    }
    let nba = cr_data::nba::generate_with_sizes(&[27, 81], 7);
    let person = cr_data::person::generate_with_sizes(&[40, 120], 7);
    let career = cr_data::career::generate(cr_data::career::CareerConfig {
        entities: 3,
        seed: 7,
        ..Default::default()
    });
    for ds in [&nba, &person, &career] {
        for i in 0..ds.len() {
            let spec = ds.spec(i);
            assert_omega_matches_reference(&spec);
            // Constraint subsampling clears the dataset-stamped program; a
            // freshly (table-free) compiled program must agree too.
            assert_omega_matches_reference(&spec.with_constraint_fraction(0.6, 0.6, 11));
            // And after user input grows the entity with values outside the
            // shared table (no global ids — the fallback paths must agree).
            let input = cr_core::UserInput::single(
                cr_types::AttrId(0),
                ds.truth(i).get(cr_types::AttrId(0)).clone(),
            );
            if !input.values[&cr_types::AttrId(0)].is_null() {
                let (extended, _, _) = spec.apply_user_input(&input);
                assert_omega_matches_reference(&extended);
            }
        }
    }
}

#[test]
fn seed_datasets_agree_on_all_four_paths() {
    // The acceptance bar: lazy ≡ eager ≡ scratch on all four seed datasets.
    let vjday = [
        (cr_data::vjday::edith_spec(), cr_data::vjday::edith_truth()),
        (cr_data::vjday::george_spec(), cr_data::vjday::george_truth()),
    ];
    for (spec, truth) in &vjday {
        assert_four_agree(spec, truth, 1);
        assert_components_agree(spec);
    }
    let nba = cr_data::nba::generate_with_sizes(&[27, 81], 7);
    for i in 0..nba.len() {
        assert_four_agree(&nba.spec(i), nba.truth(i), 1);
    }
    let person = cr_data::person::generate_with_sizes(&[40, 120], 7);
    for i in 0..person.len() {
        // Person truths routinely carry out-of-domain values.
        assert_four_agree(&person.spec(i), person.truth(i), 1);
    }
    let career = cr_data::career::generate(cr_data::career::CareerConfig {
        entities: 3,
        seed: 7,
        ..Default::default()
    });
    for i in 0..career.len() {
        assert_four_agree(&career.spec(i), career.truth(i), 1);
    }
}

#[test]
fn lazy_engine_injects_fewer_clauses_than_eager_materialises() {
    // Wide-domain scenario: the lazy path must stay well under the eager
    // clause count while resolving identically.
    let s = cr_data::gen::scenario(&ScenarioConfig {
        seed: 11,
        attrs: 4,
        tuples: 30,
        domain: 24,
        conflict_density: 1.0,
        null_density: 0.0,
        sigma: 6,
        gamma: 2,
        ..Default::default()
    });
    let eager = EncodedSpec::encode_with(&s.spec, EncodeOptions::eager());
    let lazy = EncodedSpec::encode_with(&s.spec, EncodeOptions::lazy());
    let axiom_clauses = eager.cnf().num_clauses() - lazy.cnf().num_clauses();
    assert!(
        axiom_clauses > 10 * lazy.cnf().num_clauses(),
        "axioms must dominate the eager encoding on wide domains \
         (axioms {axiom_clauses}, instance clauses {})",
        lazy.cnf().num_clauses()
    );
    let [lazy_inc, ..] = resolve_four(&s.spec, &s.truth, 1);
    assert!(
        lazy_inc.injected_axioms < axiom_clauses / 2,
        "lazy resolution must not re-materialise the eager axiom set \
         (injected {} of {axiom_clauses})",
        lazy_inc.injected_axioms
    );
}

#[test]
fn naive_sat_deduction_agrees_across_modes() {
    let s = cr_data::gen::scenario(&ScenarioConfig { seed: 3, ..Default::default() });
    for incremental in [true, false] {
        let run = |encode: EncodeOptions| {
            let config = ResolutionConfig {
                deduction: DeductionMethod::NaiveSat,
                encode,
                incremental,
                ..Default::default()
            };
            let mut oracle = GroundTruthOracle::with_cap(s.truth.clone(), 1);
            Resolver::new(config).resolve(&s.spec, &mut oracle)
        };
        let lazy = run(EncodeOptions::lazy());
        let eager = run(EncodeOptions::eager());
        assert_eq!(lazy.resolved, eager.resolved, "NaiveSat resolution diverged");
        assert_eq!(lazy.interactions, eager.interactions);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized scenarios (in-domain answers): all four paths agree and
    /// components match.
    #[test]
    fn random_scenarios_agree(
        seed in 0u64..10_000,
        tuples in 2usize..24,
        domain in 2usize..16,
        density in 0u32..100,
        cap in 1usize..3,
    ) {
        let Scenario { spec, truth } = scenario_from_raw(seed, tuples, domain, density, false);
        assert_four_agree(&spec, &truth, cap);
    }

    /// Randomized scenarios whose truths carry out-of-domain values: oracle
    /// answers grow the value space mid-resolution (and retract CFD groups
    /// whose LHS/RHS attributes grew) — the retraction-heavy path.
    #[test]
    fn random_scenarios_with_new_values_agree(
        seed in 0u64..10_000,
        tuples in 2usize..20,
        domain in 2usize..12,
        density in 0u32..100,
    ) {
        let Scenario { spec, truth } = scenario_from_raw(seed, tuples, domain, density, true);
        assert_four_agree(&spec, &truth, 1);
    }

    /// Component-level equality on randomized scenarios (cheaper than full
    /// resolution, so it can afford the complete NaiveDeduce comparison).
    #[test]
    fn random_scenario_components_agree(
        seed in 0u64..10_000,
        tuples in 2usize..14,
        domain in 2usize..10,
        density in 0u32..100,
    ) {
        let Scenario { spec, .. } = scenario_from_raw(seed, tuples, domain, density, false);
        assert_components_agree(&spec);
    }

    /// Compiled-program encoding ≡ the per-entity reference path on
    /// randomized scenarios — exact Ω(Se) equality, with the dataset-style
    /// table-resolved program the generator stamps, with a table-free
    /// recompile, and after out-of-domain user input.
    #[test]
    fn compiled_omega_matches_reference_on_random_scenarios(
        seed in 0u64..10_000,
        tuples in 2usize..24,
        domain in 2usize..16,
        density in 0u32..100,
        new_values in 0u32..2,
    ) {
        let Scenario { spec, truth } = scenario_from_raw(seed, tuples, domain, density, new_values == 1);
        assert_omega_matches_reference(&spec);
        // Table-free recompile (subsampling keeps all constraints at 1.0
        // but clears the stamped program).
        assert_omega_matches_reference(&spec.with_constraint_fraction(1.0, 1.0, seed));
        // Grow the entity with the truth's values (out-of-domain when
        // new_values) and compare the grown instantiation too.
        let mut input = cr_core::UserInput::default();
        for attr in spec.schema().attr_ids() {
            let v = truth.get(attr);
            if !v.is_null() {
                input.values.insert(attr, v.clone());
            }
        }
        if !input.is_empty() {
            let (extended, _, _) = spec.apply_user_input(&input);
            assert_omega_matches_reference(&extended);
        }
    }
}
