/root/repo/target/debug/deps/cr_constraints-a6b78745c9dab1cd.d: crates/cr-constraints/src/lib.rs crates/cr-constraints/src/builder.rs crates/cr-constraints/src/cfd.rs crates/cr-constraints/src/fmt_util.rs crates/cr-constraints/src/currency.rs crates/cr-constraints/src/error.rs crates/cr-constraints/src/op.rs crates/cr-constraints/src/parser.rs crates/cr-constraints/src/predicate.rs Cargo.toml

/root/repo/target/debug/deps/libcr_constraints-a6b78745c9dab1cd.rmeta: crates/cr-constraints/src/lib.rs crates/cr-constraints/src/builder.rs crates/cr-constraints/src/cfd.rs crates/cr-constraints/src/fmt_util.rs crates/cr-constraints/src/currency.rs crates/cr-constraints/src/error.rs crates/cr-constraints/src/op.rs crates/cr-constraints/src/parser.rs crates/cr-constraints/src/predicate.rs Cargo.toml

crates/cr-constraints/src/lib.rs:
crates/cr-constraints/src/builder.rs:
crates/cr-constraints/src/cfd.rs:
crates/cr-constraints/src/fmt_util.rs:
crates/cr-constraints/src/currency.rs:
crates/cr-constraints/src/error.rs:
crates/cr-constraints/src/op.rs:
crates/cr-constraints/src/parser.rs:
crates/cr-constraints/src/predicate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
