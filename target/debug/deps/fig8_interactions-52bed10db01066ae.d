/root/repo/target/debug/deps/fig8_interactions-52bed10db01066ae.d: crates/cr-bench/src/bin/fig8_interactions.rs

/root/repo/target/debug/deps/fig8_interactions-52bed10db01066ae: crates/cr-bench/src/bin/fig8_interactions.rs

crates/cr-bench/src/bin/fig8_interactions.rs:
