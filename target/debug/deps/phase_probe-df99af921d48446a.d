/root/repo/target/debug/deps/phase_probe-df99af921d48446a.d: crates/cr-bench/src/bin/phase_probe.rs

/root/repo/target/debug/deps/phase_probe-df99af921d48446a: crates/cr-bench/src/bin/phase_probe.rs

crates/cr-bench/src/bin/phase_probe.rs:
