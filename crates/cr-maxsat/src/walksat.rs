//! WalkSAT-style stochastic local search for partial MaxSAT.
//!
//! Hard clauses carry an effectively infinite weight; the search starts from
//! a hard-feasible model found by the CDCL solver, then hill-climbs on soft
//! weight with the classic WalkSAT/SKC move: pick an unsatisfied clause
//! (hard ones first), flip either a random variable in it (noise) or the
//! variable with the lowest *break count*.

use cr_sat::{Cnf, SolveResult, Solver};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use crate::instance::{clause_satisfied, MaxSatInstance, MaxSatResult};

/// Noise probability of the random-walk move.
const NOISE: f64 = 0.3;

/// Runs WalkSAT for at most `max_flips` flips. Returns `None` when the hard
/// clauses alone are unsatisfiable.
pub fn solve_walksat(
    instance: &MaxSatInstance<'_>,
    max_flips: u64,
    seed: u64,
) -> Option<MaxSatResult> {
    let n = instance.num_vars() as usize;

    // Hard feasibility and the starting point come from CDCL.
    let mut hard_cnf = Cnf::new();
    hard_cnf.ensure_vars(instance.num_vars());
    for c in instance.hard_iter() {
        hard_cnf.add_clause(c.iter().copied());
    }
    let mut sat = Solver::from_cnf(&hard_cnf);
    if sat.solve() == SolveResult::Unsat {
        return None;
    }
    let mut assignment = sat.model();
    assignment.resize(n, false);

    if instance.soft_len() == 0 || max_flips == 0 {
        return Some(MaxSatResult::from_assignment(instance, assignment, instance.soft_len() == 0));
    }

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut best = assignment.clone();
    let mut best_weight = instance.soft_weight(&assignment);
    let total = instance.total_soft_weight();

    // All clauses in one arena: (lits, weight, is_hard).
    struct LsClause<'a> {
        lits: &'a [cr_sat::Lit],
        weight: u64,
        hard: bool,
    }
    let clauses: Vec<LsClause> = instance
        .hard_iter()
        .map(|c| LsClause { lits: c, weight: 0, hard: true })
        .chain(instance.soft().iter().map(|s| LsClause {
            lits: s.lits.as_slice(),
            weight: s.weight,
            hard: false,
        }))
        .collect();

    for _ in 0..max_flips {
        if best_weight == total {
            break; // everything satisfiable is satisfied
        }
        // Collect unsatisfied clauses; prefer hard ones if any exist.
        let unsat_hard: Vec<usize> = clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.hard && !clause_satisfied(c.lits, &assignment))
            .map(|(i, _)| i)
            .collect();
        let pool: Vec<usize> = if unsat_hard.is_empty() {
            clauses
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.hard && !clause_satisfied(c.lits, &assignment))
                .map(|(i, _)| i)
                .collect()
        } else {
            unsat_hard
        };
        let Some(&ci) = pool.choose(&mut rng) else {
            break; // fully satisfied
        };
        let clause = &clauses[ci];
        if clause.lits.is_empty() {
            continue;
        }
        let flip_var = if rng.gen_bool(NOISE) {
            clause.lits.choose(&mut rng).expect("non-empty").var()
        } else {
            // Minimise break: hard breaks dominate, then soft weight broken.
            let mut best_var = clause.lits[0].var();
            let mut best_cost = (u64::MAX, u64::MAX);
            for l in clause.lits {
                let v = l.var();
                assignment[v.index()] = !assignment[v.index()];
                let hard_breaks = clauses
                    .iter()
                    .filter(|c| c.hard && !clause_satisfied(c.lits, &assignment))
                    .count() as u64;
                let soft_broken: u64 = clauses
                    .iter()
                    .filter(|c| !c.hard && !clause_satisfied(c.lits, &assignment))
                    .map(|c| c.weight)
                    .sum();
                assignment[v.index()] = !assignment[v.index()];
                let cost = (hard_breaks, soft_broken);
                if cost < best_cost {
                    best_cost = cost;
                    best_var = v;
                }
            }
            best_var
        };
        assignment[flip_var.index()] = !assignment[flip_var.index()];

        if instance.hard_satisfied(&assignment) {
            let w = instance.soft_weight(&assignment);
            if w > best_weight {
                best_weight = w;
                best = assignment.clone();
            }
        }
    }
    Some(MaxSatResult::from_assignment(instance, best, best_weight == total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_sat::Var;

    #[test]
    fn finds_full_satisfaction_when_possible() {
        let mut inst = MaxSatInstance::new(3);
        inst.add_hard([Var(0).positive(), Var(1).positive()]);
        inst.add_soft([Var(2).positive()], 5);
        inst.add_soft([Var(0).positive()], 2);
        let res = solve_walksat(&inst, 20_000, 11).unwrap();
        assert_eq!(res.total_weight, 7);
        assert!(res.optimal);
        assert!(inst.hard_satisfied(&res.assignment));
    }

    #[test]
    fn respects_hard_over_heavy_soft() {
        // Hard forces ¬x0; a heavy soft clause wants x0. Weight must stay 0
        // for that clause.
        let mut inst = MaxSatInstance::new(2);
        inst.add_hard([Var(0).negative()]);
        inst.add_soft([Var(0).positive()], 100);
        inst.add_soft([Var(1).positive()], 1);
        let res = solve_walksat(&inst, 20_000, 5).unwrap();
        assert!(!res.assignment[0]);
        assert_eq!(res.total_weight, 1);
    }

    #[test]
    fn weighted_tradeoff_prefers_heavier() {
        // x0 xor-ish conflict between two softs: w=10 beats w=1.
        let mut inst = MaxSatInstance::new(1);
        inst.add_soft([Var(0).positive()], 10);
        inst.add_soft([Var(0).negative()], 1);
        let res = solve_walksat(&inst, 5_000, 17).unwrap();
        assert_eq!(res.total_weight, 10);
        assert!(res.assignment[0]);
    }

    #[test]
    fn zero_flip_budget_still_feasible() {
        let mut inst = MaxSatInstance::new(1);
        inst.add_hard([Var(0).positive()]);
        inst.add_soft([Var(0).negative()], 1);
        let res = solve_walksat(&inst, 0, 1).unwrap();
        assert!(inst.hard_satisfied(&res.assignment));
    }
}
