//! Bitset-based undirected graph.

/// An undirected graph over vertices `0..n` with bitset adjacency rows,
/// giving O(n/64) neighbourhood intersection — the inner loop of the
/// branch-and-bound clique search.
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    words: usize,
    adj: Vec<u64>,
}

impl Graph {
    /// A graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        Graph { n, words, adj: vec![0; n * words] }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds the undirected edge `{a, b}`. Self-loops are ignored.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n, "vertex out of range");
        if a == b {
            return;
        }
        self.adj[a * self.words + b / 64] |= 1u64 << (b % 64);
        self.adj[b * self.words + a / 64] |= 1u64 << (a % 64);
    }

    /// True iff `{a, b}` is an edge.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        a != b && self.adj[a * self.words + b / 64] >> (b % 64) & 1 == 1
    }

    /// The adjacency row of `v` as a word slice.
    pub(crate) fn row(&self, v: usize) -> &[u64] {
        &self.adj[v * self.words..(v + 1) * self.words]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.row(v).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).sum::<usize>() / 2
    }

    /// True iff `vertices` are pairwise adjacent.
    pub fn is_clique(&self, vertices: &[usize]) -> bool {
        vertices
            .iter()
            .enumerate()
            .all(|(i, &a)| vertices[i + 1..].iter().all(|&b| self.has_edge(a, b)))
    }

    /// Neighbours of `v` as a vertex list.
    pub fn neighbors(&self, v: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.degree(v));
        for (wi, &w) in self.row(v).iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(wi * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }
}

/// A dynamic vertex-set bitmask used by the clique searches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct VertexSet {
    pub(crate) words: Vec<u64>,
}

#[cfg_attr(not(test), allow(dead_code))] // some helpers are test-only
impl VertexSet {
    pub(crate) fn full(n: usize) -> Self {
        let mut words = vec![u64::MAX; n.div_ceil(64)];
        if !n.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        VertexSet { words }
    }

    pub(crate) fn empty(n: usize) -> Self {
        VertexSet { words: vec![0; n.div_ceil(64)] }
    }

    pub(crate) fn contains(&self, v: usize) -> bool {
        self.words[v / 64] >> (v % 64) & 1 == 1
    }

    pub(crate) fn insert(&mut self, v: usize) {
        self.words[v / 64] |= 1 << (v % 64);
    }

    pub(crate) fn remove(&mut self, v: usize) {
        self.words[v / 64] &= !(1 << (v % 64));
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    pub(crate) fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self ∩ adjacency-row`, written into a fresh set.
    pub(crate) fn intersect_row(&self, row: &[u64]) -> VertexSet {
        VertexSet {
            words: self.words.iter().zip(row).map(|(a, b)| a & b).collect(),
        }
    }

    /// Smallest member, if any (no borrow held afterwards).
    pub(crate) fn first(&self) -> Option<usize> {
        self.words
            .iter()
            .position(|&w| w != 0)
            .map(|wi| wi * 64 + self.words[wi].trailing_zeros() as usize)
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_and_degrees() {
        let mut g = Graph::new(70); // spans two words
        g.add_edge(0, 69);
        g.add_edge(0, 1);
        g.add_edge(5, 5); // ignored
        assert!(g.has_edge(69, 0));
        assert!(!g.has_edge(1, 69));
        assert!(!g.has_edge(5, 5));
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), vec![1, 69]);
    }

    #[test]
    fn clique_check() {
        let mut g = Graph::new(4);
        for (a, b) in [(0, 1), (0, 2), (1, 2)] {
            g.add_edge(a, b);
        }
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(g.is_clique(&[1]));
        assert!(g.is_clique(&[]));
        assert!(!g.is_clique(&[0, 1, 3]));
    }

    #[test]
    fn vertex_set_ops() {
        let mut s = VertexSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        s.remove(69);
        assert!(!s.contains(69));
        assert_eq!(s.count(), 69);
        s.insert(69);
        assert_eq!(s.iter().count(), 70);
        let e = VertexSet::empty(70);
        assert!(e.is_empty());
    }
}
