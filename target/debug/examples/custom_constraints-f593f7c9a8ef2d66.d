/root/repo/target/debug/examples/custom_constraints-f593f7c9a8ef2d66.d: examples/custom_constraints.rs

/root/repo/target/debug/examples/custom_constraints-f593f7c9a8ef2d66: examples/custom_constraints.rs

examples/custom_constraints.rs:
