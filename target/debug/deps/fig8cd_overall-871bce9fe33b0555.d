/root/repo/target/debug/deps/fig8cd_overall-871bce9fe33b0555.d: crates/cr-bench/src/bin/fig8cd_overall.rs

/root/repo/target/debug/deps/libfig8cd_overall-871bce9fe33b0555.rmeta: crates/cr-bench/src/bin/fig8cd_overall.rs

crates/cr-bench/src/bin/fig8cd_overall.rs:
