/root/repo/target/debug/deps/summary-39a14bac7497d9f3.d: crates/cr-bench/src/bin/summary.rs

/root/repo/target/debug/deps/libsummary-39a14bac7497d9f3.rmeta: crates/cr-bench/src/bin/summary.rs

crates/cr-bench/src/bin/summary.rs:
