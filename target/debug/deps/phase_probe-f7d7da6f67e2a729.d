/root/repo/target/debug/deps/phase_probe-f7d7da6f67e2a729.d: crates/cr-bench/src/bin/phase_probe.rs

/root/repo/target/debug/deps/libphase_probe-f7d7da6f67e2a729.rmeta: crates/cr-bench/src/bin/phase_probe.rs

crates/cr-bench/src/bin/phase_probe.rs:
