//! Criterion bench for Fig. 8(a): validity checking (`IsValid`), plus the
//! encoding-option ablations called out in DESIGN.md (paper-faithful vs
//! totality, full vs lazy transitivity).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cr_core::encode::{EncodeOptions, EncodedSpec};
use cr_core::isvalid::is_valid_encoded;
use cr_data::{nba, person, vjday};

fn bench_validity(c: &mut Criterion) {
    let mut group = c.benchmark_group("isvalid");
    group.sample_size(20);

    // Paper running example.
    let edith = vjday::edith_spec();
    group.bench_function("vjday/edith", |b| {
        b.iter(|| {
            let enc = EncodedSpec::encode(black_box(&edith));
            black_box(is_valid_encoded(&enc))
        })
    });

    // NBA bins (one representative entity per bin).
    for size in [27usize, 81, 135] {
        let ds = nba::generate_with_sizes(&[size], 7);
        let spec = ds.spec(0);
        group.bench_with_input(BenchmarkId::new("nba", size), &spec, |b, spec| {
            b.iter(|| {
                let enc = EncodedSpec::encode(black_box(spec));
                black_box(is_valid_encoded(&enc))
            })
        });
    }

    // Person bins at 1/10 paper scale.
    for size in [200usize, 600, 1000] {
        let ds = person::generate_with_sizes(&[size], 7);
        let spec = ds.spec(0);
        group.bench_with_input(BenchmarkId::new("person", size), &spec, |b, spec| {
            b.iter(|| {
                let enc = EncodedSpec::encode(black_box(spec));
                black_box(is_valid_encoded(&enc))
            })
        });
    }
    group.finish();

    // Ablations: encoding options on a mid-size Person entity.
    let ds = person::generate_with_sizes(&[400], 7);
    let spec = ds.spec(0);
    let mut ablation = c.benchmark_group("isvalid-ablation");
    ablation.sample_size(20);
    for (label, options) in [
        ("totality+eager (default)", EncodeOptions::default()),
        ("paper-faithful (no totality)", EncodeOptions::paper_faithful()),
        ("lazy-axioms", EncodeOptions::lazy()),
    ] {
        ablation.bench_function(label, |b| {
            b.iter(|| {
                let enc = EncodedSpec::encode_with(black_box(&spec), options);
                black_box(is_valid_encoded(&enc))
            })
        });
    }
    ablation.finish();
}

criterion_group!(benches, bench_validity);
criterion_main!(benches);
