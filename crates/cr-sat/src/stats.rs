//! Solver search statistics.

/// Counters accumulated across all `solve` calls of one [`crate::Solver`].
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses added.
    pub learnt_clauses: u64,
    /// Learnt clauses deleted by DB reduction.
    pub deleted_clauses: u64,
    /// DB reduction rounds.
    pub db_reductions: u64,
    /// Literals removed by learnt-clause minimisation.
    pub minimised_literals: u64,
}

impl std::fmt::Display for SolverStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conflicts={} decisions={} propagations={} restarts={} learnt={} deleted={}",
            self.conflicts,
            self.decisions,
            self.propagations,
            self.restarts,
            self.learnt_clauses,
            self.deleted_clauses
        )
    }
}
