//! Durable resolution sessions: per-session write-ahead event logs with
//! checksummed frames, periodic snapshots, crash-and-rehydrate recovery,
//! and a multi-session store with cold-session eviction.
//!
//! A [`ResolutionSession`](cr_core::ResolutionSession) lives and dies with
//! its process; this crate gives it a durable identity. Every input a
//! session absorbs — a round of user answers, a causally-stamped upstream
//! correction, a plain revision — is first appended to a per-session log
//! held by a [`StorageBackend`] as a
//! length-prefixed CRC-32-checksummed frame (`cr_types::codec`), *then*
//! applied to the in-memory engine. The log records **inputs, not
//! effects**: replay is a pure function, so a session can always be rebuilt
//! by replaying its surviving log through the very same
//! `ingest_causal`/`apply_input` code paths production traffic uses.
//! Periodic [`SnapshotRecord`]s capture the
//! session's logical state ([`SessionState`](cr_core::SessionState)) so
//! rehydration replays only the tail after the last snapshot.
//!
//! Revision ingestion is **batch-atomic**: a poll's events are appended
//! and synced, applied as one coalesced engine batch, then committed by a
//! [`LogRecord::BatchMark`]. Recovery groups records into whole batches
//! ([`plan_replay`]) and drops an uncommitted trailing run — rehydration
//! always restores the session to exactly a batch boundary.
//!
//! # The recovery invariant
//!
//! > **A restored session is equivalent to a from-scratch resolve of the
//! > surviving event prefix.**
//!
//! After *any* crash — torn final write, truncated tail, bit-flipped
//! frame, lost final fsync ([`fault::Fault`]) — recovery scans the log,
//! detects corruption by checksum, truncates to the end of the last valid
//! frame, and rebuilds the session from the last intact snapshot plus the
//! surviving tail. The rebuilt session must agree with a *fresh* session
//! that replayed the same surviving records from scratch — on validity,
//! deduced value orders, true values (via
//! [`cr_core::check_session_against_scratch`] against a
//! [`SpecMirror`](cr_core::SpecMirror) of the surviving prefix), and on
//! the full logical state (entity rows, order pairs, retired CFDs,
//! accepted answers, causal frontier). [`harness`] packages that
//! differential; `cr-store`'s recovery tests and the `crash_soak` CI
//! binary drive it at **every** event boundary under all four fault modes.
//! Recovery is never silent: [`RecoveryTelemetry`]
//! counts rehydrations, replayed events, checksum failures and truncated
//! bytes.
//!
//! # Snapshot format version policy
//!
//! Every record payload begins with a format version byte
//! ([`event::FORMAT_VERSION`], currently 2). Decoders accept **exactly**
//! the versions they know and fail with a typed
//! [`CodecError::UnsupportedVersion`](cr_types::CodecError) otherwise —
//! recovery then treats the record like any other corruption: the log is
//! truncated to the last frame it fully understands. The version byte is
//! bumped whenever the encoding of any record changes incompatibly; new
//! fields must either come with a bump or be appended behind the existing
//! ones with decoders tolerating their absence. The *frame* layer
//! (`[len][payload][crc32]`) is version-free by design and must never
//! change: it is what lets any future build find frame boundaries in any
//! past log. Snapshots are an optimization, not a source of truth — a
//! decoder that cannot use a snapshot record may fall back to replaying
//! the full event log.

pub mod backend;
pub mod event;
pub mod fault;
pub mod harness;
pub mod store;

pub use backend::{FileBackend, MemoryBackend, SessionId, StorageBackend};
pub use event::{
    decode_log, decode_log_offsets, plan_replay, LogRecord, ReplayPlan, ReplayStep,
    SnapshotRecord, FORMAT_VERSION,
};
pub use fault::{CrashReport, Fault, FaultyBackend};
pub use harness::{reference_of, verify_recovery, ReplayedReference};
pub use store::{AdmissionProbe, RecoveryTelemetry, SessionStore, StoreConfig, StoreError};
