/root/repo/target/debug/examples/career_profiles-2964d12719d7025d.d: examples/career_profiles.rs

/root/repo/target/debug/examples/career_profiles-2964d12719d7025d: examples/career_profiles.rs

examples/career_profiles.rs:
