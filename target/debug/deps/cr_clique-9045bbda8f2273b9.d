/root/repo/target/debug/deps/cr_clique-9045bbda8f2273b9.d: crates/cr-clique/src/lib.rs crates/cr-clique/src/exact.rs crates/cr-clique/src/graph.rs crates/cr-clique/src/greedy.rs

/root/repo/target/debug/deps/libcr_clique-9045bbda8f2273b9.rlib: crates/cr-clique/src/lib.rs crates/cr-clique/src/exact.rs crates/cr-clique/src/graph.rs crates/cr-clique/src/greedy.rs

/root/repo/target/debug/deps/libcr_clique-9045bbda8f2273b9.rmeta: crates/cr-clique/src/lib.rs crates/cr-clique/src/exact.rs crates/cr-clique/src/graph.rs crates/cr-clique/src/greedy.rs

crates/cr-clique/src/lib.rs:
crates/cr-clique/src/exact.rs:
crates/cr-clique/src/graph.rs:
crates/cr-clique/src/greedy.rs:
