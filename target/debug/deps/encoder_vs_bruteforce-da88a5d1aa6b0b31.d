/root/repo/target/debug/deps/encoder_vs_bruteforce-da88a5d1aa6b0b31.d: crates/cr-core/tests/encoder_vs_bruteforce.rs

/root/repo/target/debug/deps/encoder_vs_bruteforce-da88a5d1aa6b0b31: crates/cr-core/tests/encoder_vs_bruteforce.rs

crates/cr-core/tests/encoder_vs_bruteforce.rs:
