//! Headline comparison of Section VI: unified currency+consistency vs the
//! `Pick` baseline, Σ-only and Γ-only, on all three datasets.
//!
//! Paper reference points: unified beats `Pick` by 201% on average;
//! Σ+Γ improves over Σ-only by 11% and over Γ-only by 236%; ≤ 2–3 rounds of
//! interaction suffice; F-measures at 100% constraints:
//! NBA 0.930 / CAREER 0.958 / Person 0.903 (Σ+Γ), 0.830 / 0.907 / 0.826
//! (Σ only) and 0.210 / 0.741 / 0.234 (Γ only).
//!
//! Run: `cargo run --release -p cr-bench --bin summary [--entities N]`.

use cr_bench::{arg_entities, arg_seed, print_table, run_dataset, run_pick, ConstraintMode};

fn main() {
    let n = arg_entities(60);
    let seed = arg_seed(0xD00D);
    let datasets = [
        cr_bench::quick::nba(n, seed),
        cr_bench::quick::career(n.min(65), seed),
        cr_bench::quick::person(n, seed),
    ];

    // Interaction budgets: the paper reports convergence within 2 rounds
    // for NBA and CAREER, 3 for Person (Fig. 8(e)/(i)/(m)).
    let budgets = [2usize, 2, 3];
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    let mut sigma_gain = Vec::new();
    let mut gamma_gain = Vec::new();
    for (ds, budget) in datasets.iter().zip(budgets) {
        let (both, rounds) = run_dataset(ds, ConstraintMode::Both, 1.0, budget, seed);
        let (sigma, _) = run_dataset(ds, ConstraintMode::SigmaOnly, 1.0, budget, seed);
        let (gamma, _) = run_dataset(ds, ConstraintMode::GammaOnly, 1.0, budget, seed);
        let pick = run_pick(ds, seed);
        let f_both = both.f_measure().f_measure;
        let f_sigma = sigma.f_measure().f_measure;
        let f_gamma = gamma.f_measure().f_measure;
        let f_pick = pick.f_measure().f_measure;
        rows.push(vec![
            ds.name.clone(),
            format!("{:.3}", f_both),
            format!("{:.3}", f_sigma),
            format!("{:.3}", f_gamma),
            format!("{:.3}", f_pick),
            rounds.to_string(),
        ]);
        if f_pick > 0.0 {
            ratios.push(f_both / f_pick);
        }
        if f_sigma > 0.0 {
            sigma_gain.push(f_both / f_sigma);
        }
        if f_gamma > 0.0 {
            gamma_gain.push(f_both / f_gamma);
        }
    }
    print_table(
        "Section VI summary (F-measure, 100% constraints, ground-truth oracle)",
        &["dataset", "Sigma+Gamma", "Sigma only", "Gamma only", "Pick", "max rounds"],
        &rows,
    );

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!();
    println!(
        "unified vs Pick: +{:.0}% (paper: +201%)",
        (avg(&ratios) - 1.0) * 100.0
    );
    println!(
        "unified vs Sigma-only: +{:.0}% (paper: +11%)",
        (avg(&sigma_gain) - 1.0) * 100.0
    );
    println!(
        "unified vs Gamma-only: +{:.0}% (paper: +236%)",
        (avg(&gamma_gain) - 1.0) * 100.0
    );
    for ds in &datasets {
        println!("{}: {}", ds.name, ds.stats());
    }
}
