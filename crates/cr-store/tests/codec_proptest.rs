//! Roundtrip and decode-safety properties of the durable log codec.
//!
//! Every [`LogRecord`] shape — all four [`Revision`] variants (plain and
//! causally stamped, with full [`CausalStamp`]s), user inputs, batch-commit
//! markers, and snapshot records over arbitrary [`SessionState`]s
//! (competing cells, quarantine entries, and epoch included) — must
//! roundtrip bit-exactly
//! through `encode`/`decode`. Decode must be total: truncation at **every**
//! byte yields a typed [`CodecError`] (never a panic), and any bit flip in
//! a framed record is caught at the frame layer.

use cr_core::causal::{CausalRevision, FrontierState};
use cr_core::ingest::{
    AnswerState, CompetingCell, Revision, RevisionError, RevisionTelemetry, SessionState,
};
use cr_core::spec::UserInput;
use cr_store::event::SnapshotRecord;
use cr_store::{LogRecord, FORMAT_VERSION};
use cr_types::codec::{write_frame, CodecError, FrameScanner};
use cr_types::{AttrId, CausalStamp, Epoch, Hlc, SourceId, TupleId, Value, VectorClock};
use proptest::prelude::*;

fn value() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        (-1_000_000i64..1_000_000).prop_map(Value::int),
        (-1_000_000i64..1_000_000).prop_map(|n| Value::float(n as f64 / 97.0)),
        "[a-z0-9_]{0,12}".prop_map(Value::str),
    ]
    .boxed()
}

fn source() -> BoxedStrategy<SourceId> {
    (0u32..6).prop_map(SourceId).boxed()
}

fn hlc() -> BoxedStrategy<Hlc> {
    ((0u64..1 << 40), (0u32..16)).prop_map(|(p, l)| Hlc::new(p, l)).boxed()
}

fn vclock() -> BoxedStrategy<VectorClock> {
    // Nonzero sequence numbers only: the codec canonicalises zero entries
    // away (absent ≡ 0), which is checked separately below.
    prop::collection::vec((source(), 1u64..64), 0..4)
        .prop_map(|entries| {
            let mut vc = VectorClock::new();
            for (s, n) in entries {
                vc.observe(s, n);
            }
            vc
        })
        .boxed()
}

fn stamp() -> BoxedStrategy<CausalStamp> {
    (source(), hlc(), vclock())
        .prop_map(|(source, hlc, vclock)| CausalStamp { source, hlc, vclock })
        .boxed()
}

fn attr() -> BoxedStrategy<AttrId> {
    (0u16..40).prop_map(AttrId).boxed()
}

fn tuple_id() -> BoxedStrategy<TupleId> {
    (0u32..40).prop_map(TupleId).boxed()
}

/// Every `Revision` variant.
fn revision() -> BoxedStrategy<Revision> {
    prop_oneof![
        (0usize..1000).prop_map(|cfd| Revision::RetractCfd { cfd }),
        (attr(), tuple_id(), tuple_id())
            .prop_map(|(attr, lo, hi)| Revision::WithdrawOrder { attr, lo, hi }),
        (attr(), tuple_id()).prop_map(|(attr, tuple)| Revision::WithdrawAnswer { attr, tuple }),
        (tuple_id(), attr(), value())
            .prop_map(|(tuple, attr, value)| Revision::ReplaceValue { tuple, attr, value }),
    ]
    .boxed()
}

fn user_input() -> BoxedStrategy<UserInput> {
    prop::collection::vec((attr(), value()), 0..4)
        .prop_map(|pairs| {
            let mut input = UserInput::empty();
            for (a, v) in pairs {
                input.values.insert(a, v);
            }
            input
        })
        .boxed()
}

fn frontier() -> BoxedStrategy<FrontierState> {
    (
        prop::collection::vec((source(), 1u64..64), 0..3),
        prop::collection::vec(
            (stamp(), revision()).prop_map(|(stamp, rev)| CausalRevision { stamp, rev }),
            0..3,
        ),
        prop::collection::vec((source(), hlc()), 0..3),
        prop::collection::vec(
            (tuple_id(), attr(), prop::collection::vec((stamp(), value()), 0..3)),
            0..3,
        ),
        (0u64..100, 0u64..100, 0u64..100),
    )
        .prop_map(|(delivered, buffered, seen, writes, (d, b, c))| FrontierState {
            delivered,
            buffered,
            seen,
            writes,
            duplicates: d,
            buffered_total: b,
            concurrent_conflicts: c,
        })
        .boxed()
}

/// Every `RevisionError` variant — quarantine entries persist the error
/// alongside the rejected revision.
fn revision_error() -> BoxedStrategy<RevisionError> {
    prop_oneof![
        (0usize..1000, 0usize..1000)
            .prop_map(|(cfd, gamma_len)| RevisionError::UnknownCfd { cfd, gamma_len }),
        (0usize..1000).prop_map(|cfd| RevisionError::StaleCfd { cfd }),
        (attr(), 0usize..64).prop_map(|(attr, arity)| RevisionError::UnknownAttr { attr, arity }),
        (tuple_id(), 0usize..64).prop_map(|(tuple, len)| RevisionError::UnknownTuple { tuple, len }),
        (attr(), tuple_id(), tuple_id())
            .prop_map(|(attr, lo, hi)| RevisionError::UnknownOrder { attr, lo, hi }),
    ]
    .boxed()
}

fn competing() -> BoxedStrategy<CompetingCell> {
    (
        tuple_id(),
        attr(),
        (0u8..2).prop_map(|b| b == 1),
        prop::collection::vec((source(), value()), 0..3),
    )
        .prop_map(|(tuple, attr, reopened, candidates)| CompetingCell {
            tuple,
            attr,
            reopened,
            candidates,
        })
        .boxed()
}

fn session_state() -> BoxedStrategy<SessionState> {
    (
        prop::collection::vec(prop::collection::vec(value(), 0..4), 0..3),
        prop::collection::vec((attr(), tuple_id(), tuple_id()), 0..4),
        prop::collection::vec(0usize..32, 0..3),
        prop::collection::vec(
            (attr(), tuple_id(), value(), vclock())
                .prop_map(|(attr, tuple, value, deps)| AnswerState { attr, tuple, value, deps }),
            0..3,
        ),
        frontier(),
        (
            prop::collection::vec(0usize..10_000, 13),
            prop::collection::vec(competing(), 0..3),
            prop::collection::vec((revision(), revision_error()), 0..3),
            0usize..64,
            0u64..10_000,
        ),
    )
        .prop_map(
            |(tuples, orders, retired_cfds, answers, frontier, (t, competing, quarantine, cap, e))| {
                SessionState {
                    tuples,
                    orders,
                    retired_cfds,
                    answers,
                    frontier,
                    telemetry: RevisionTelemetry {
                        events: t[0],
                        retracted_groups: t[1],
                        invalidated: t[2],
                        reemitted_clauses: t[3],
                        duplicates_dropped: t[4],
                        buffered: t[5],
                        quarantined: t[6],
                        reopened: t[7],
                        quarantine_evicted: t[8],
                        batches: t[9],
                        events_coalesced: t[10],
                        cone_union: t[11],
                        replays_saved: t[12],
                    },
                    competing,
                    quarantine,
                    quarantine_cap: cap,
                    epoch: Epoch(e),
                }
            },
        )
        .boxed()
}

/// Every `LogRecord` shape, snapshot records included.
fn log_record() -> BoxedStrategy<LogRecord> {
    prop_oneof![
        user_input().prop_map(LogRecord::Input),
        (stamp(), revision())
            .prop_map(|(stamp, rev)| LogRecord::Causal(CausalRevision { stamp, rev })),
        revision().prop_map(LogRecord::Revision),
        ((0u64..1000), session_state()).prop_map(|(events_covered, state)| {
            LogRecord::Snapshot(Box::new(SnapshotRecord { events_covered, state }))
        }),
        ((0u64..10_000), (0u64..1000))
            .prop_map(|(epoch, events)| LogRecord::BatchMark { epoch, events }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every record shape roundtrips bit-exactly through its versioned
    /// payload encoding.
    #[test]
    fn log_record_roundtrips(rec in log_record()) {
        let payload = rec.encode();
        prop_assert_eq!(payload[0], FORMAT_VERSION);
        let back = LogRecord::decode(&payload)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(back, rec);
    }

    /// Truncating a record payload at **every** byte yields a typed
    /// `Truncated` error — no panic, no bogus success. A decoder with no
    /// lookahead follows the identical step sequence on a strict prefix
    /// until it runs out of bytes, so nothing else is acceptable.
    #[test]
    fn truncation_at_every_byte_is_a_typed_error(rec in log_record()) {
        let payload = rec.encode();
        for cut in 0..payload.len() {
            match LogRecord::decode(&payload[..cut]) {
                Err(CodecError::Truncated { .. }) => {}
                other => {
                    return Err(TestCaseError::fail(format!(
                        "decode of {cut}-byte prefix of a {}-byte payload returned {other:?}, \
                         expected CodecError::Truncated",
                        payload.len()
                    )));
                }
            }
        }
    }

    /// A framed record cut at every byte scans as clean-empty (cut before
    /// any length byte) or a typed truncation — and the valid prefix length
    /// is always 0.
    #[test]
    fn framed_truncation_at_every_byte_is_safe(rec in log_record()) {
        let mut frame = Vec::new();
        write_frame(&mut frame, &rec.encode());
        for cut in 0..frame.len() {
            let mut scanner = FrameScanner::new(&frame[..cut]);
            match scanner.next() {
                Ok(None) if cut == 0 => {}
                Err(CodecError::Truncated { .. }) => {}
                other => {
                    return Err(TestCaseError::fail(format!(
                        "scan of {cut}-byte prefix returned {other:?}"
                    )));
                }
            }
            prop_assert_eq!(scanner.valid_len(), 0);
        }
    }

    /// Any single bit flip anywhere in a framed record is detected: the
    /// scan fails (checksum mismatch or implausible length) and never
    /// returns a frame whose payload decodes to a *different* record.
    #[test]
    fn bit_flips_in_framed_records_are_detected(
        rec in log_record(),
        byte_pick in 0u64..1 << 32,
        bit in 0u8..8,
    ) {
        let mut frame = Vec::new();
        write_frame(&mut frame, &rec.encode());
        let at = (byte_pick % frame.len() as u64) as usize;
        frame[at] ^= 1 << bit;
        let mut scanner = FrameScanner::new(&frame);
        match scanner.next() {
            Err(_) => {}
            Ok(None) => {}
            Ok(Some(payload)) => {
                // A flipped length byte can re-frame the bytes; the CRC
                // catching it elsewhere is what makes this astronomically
                // unlikely — but the hard guarantee is: no silent wrong
                // record.
                if let Ok(back) = LogRecord::decode(payload) {
                    prop_assert_eq!(back, rec);
                }
            }
        }
    }
}

/// Zero vector-clock entries are canonicalised away by the codec: a clock
/// that observed `(s, 0)` encodes identically to one that never saw `s`,
/// and `get` treats both as 0.
#[test]
fn zero_vclock_entries_canonicalise() {
    let mut with_zero = VectorClock::new();
    with_zero.observe(SourceId(3), 0);
    with_zero.observe(SourceId(5), 7);
    let mut without = VectorClock::new();
    without.observe(SourceId(5), 7);

    let rec = |vc: &VectorClock| {
        let stamp = CausalStamp { source: SourceId(5), hlc: Hlc::new(1, 0), vclock: vc.clone() };
        LogRecord::Causal(CausalRevision {
            stamp,
            rev: Revision::RetractCfd { cfd: 1 },
        })
        .encode()
    };
    assert_eq!(rec(&with_zero), rec(&without));

    let back = LogRecord::decode(&rec(&with_zero)).unwrap();
    let LogRecord::Causal(ev) = back else { panic!("wrong variant") };
    assert_eq!(ev.stamp.vclock.get(SourceId(3)), 0);
    assert_eq!(ev.stamp.vclock.get(SourceId(5)), 7);
}

/// An unknown format version is a typed error, not a guess: recovery
/// treats it as corruption and truncates to the last understood frame.
#[test]
fn unknown_format_version_is_rejected() {
    let mut payload = LogRecord::Revision(Revision::RetractCfd { cfd: 2 }).encode();
    payload[0] = FORMAT_VERSION + 1;
    match LogRecord::decode(&payload) {
        Err(CodecError::UnsupportedVersion { version, .. }) => {
            assert_eq!(version, FORMAT_VERSION + 1);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

/// An unknown record tag is a typed error.
#[test]
fn unknown_record_tag_is_rejected() {
    let payload = vec![FORMAT_VERSION, 0xEE];
    match LogRecord::decode(&payload) {
        Err(CodecError::BadTag { tag: 0xEE, .. }) => {}
        other => panic!("expected BadTag, got {other:?}"),
    }
}

/// Trailing bytes after a well-formed record are a typed error — a frame
/// holds exactly one record.
#[test]
fn trailing_bytes_are_rejected() {
    let mut payload = LogRecord::Revision(Revision::RetractCfd { cfd: 2 }).encode();
    payload.push(0);
    match LogRecord::decode(&payload) {
        Err(CodecError::TrailingBytes { remaining: 1 }) => {}
        other => panic!("expected TrailingBytes, got {other:?}"),
    }
}
