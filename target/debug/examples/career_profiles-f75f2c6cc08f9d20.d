/root/repo/target/debug/examples/career_profiles-f75f2c6cc08f9d20.d: examples/career_profiles.rs Cargo.toml

/root/repo/target/debug/examples/libcareer_profiles-f75f2c6cc08f9d20.rmeta: examples/career_profiles.rs Cargo.toml

examples/career_profiles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
