/root/repo/target/release/deps/bench_incremental-e3729c7476aa2538.d: crates/cr-bench/src/bin/bench_incremental.rs

/root/repo/target/release/deps/bench_incremental-e3729c7476aa2538: crates/cr-bench/src/bin/bench_incremental.rs

crates/cr-bench/src/bin/bench_incremental.rs:
