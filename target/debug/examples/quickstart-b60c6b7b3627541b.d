/root/repo/target/debug/examples/quickstart-b60c6b7b3627541b.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-b60c6b7b3627541b.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
