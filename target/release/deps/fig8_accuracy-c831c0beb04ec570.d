/root/repo/target/release/deps/fig8_accuracy-c831c0beb04ec570.d: crates/cr-bench/src/bin/fig8_accuracy.rs

/root/repo/target/release/deps/fig8_accuracy-c831c0beb04ec570: crates/cr-bench/src/bin/fig8_accuracy.rs

crates/cr-bench/src/bin/fig8_accuracy.rs:
