//! The synthetic Person dataset (Section VI, "(3) Person data").
//!
//! The paper: *"The synthetic data adheres to the schema given in Table 2.
//! We found 983 currency constraints (of the same form but with distinct
//! constant values for status, job and kid) and a single CFD AC → city with
//! 1000 patterns. … For each entity, it first generated a true value `tc`,
//! and then produced a set `E` of tuples that have conflicts but do not
//! violate the currency constraints; we treated `E \ {tc}` as the entity
//! instance."*
//!
//! Construction here:
//!
//! * a global **status chain** of 600 values (599 ϕ1-style constraints), a
//!   **job chain** of 380 values (379 constraints), the ϕ4 kids
//!   monotonicity constraint, and the four propagation rules ϕ5–ϕ8 —
//!   `599 + 379 + 1 + 4 = 983` currency constraints;
//! * 1000 `AC → city` CFD patterns over an AC pool of 1000 codes;
//! * per entity, a state history walking the chains forward (never reusing
//!   an AC/zip/county value, so the data cannot violate the constraints),
//!   with `tc` the final state; the instance samples `|Ie|` tuples from the
//!   history and excludes one copy of `tc`, so some true values are only
//!   reachable through user input — exactly the regime in which Person
//!   needs up to 3 interaction rounds in Fig. 8(m).

use std::sync::Arc;

use rand::prelude::*;

use cr_constraints::parser::{parse_cfds, parse_currency_constraint};
use cr_constraints::{ConstantCfd, CurrencyConstraint};
use cr_types::{EntityInstance, Schema, Tuple, Value};

use crate::gen_util::rng;
use crate::Dataset;

/// Status chain length (599 constraints).
const STATUS_CHAIN: usize = 600;
/// Job chain length (379 constraints).
const JOB_CHAIN: usize = 380;
/// AC pool size (1000 CFD patterns).
const AC_POOL: usize = 1000;
/// Distinct cities the CFD patterns map to.
const CITY_POOL: usize = 250;
/// Maximum distinct states in one entity's history (bounds per-attribute
/// active domains, hence the cubic encoding, independent of instance size).
/// 18 states with ~|Ie| samples leaves ≈ 1/6 of the history unsampled, so
/// chains break and interaction is genuinely needed (Fig. 8(m)).
const MAX_STATES: usize = 18;

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct PersonConfig {
    /// Number of entities.
    pub entities: usize,
    /// Minimum tuples per entity instance.
    pub min_tuples: usize,
    /// Maximum tuples per entity instance.
    pub max_tuples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PersonConfig {
    fn default() -> Self {
        PersonConfig { entities: 100, min_tuples: 2, max_tuples: 40, seed: 0xBEEF }
    }
}

/// The Person schema of Fig. 2.
pub fn schema() -> Arc<Schema> {
    Schema::new(
        "person",
        ["name", "status", "job", "kids", "city", "AC", "zip", "county"],
    )
    .expect("static schema")
}

/// Builds the 983 currency constraints.
pub fn sigma(schema: &Arc<Schema>) -> Vec<CurrencyConstraint> {
    let mut out = Vec::with_capacity(983);
    for i in 0..STATUS_CHAIN - 1 {
        out.push(
            parse_currency_constraint(
                schema,
                &format!(
                    r#"t1[status] = "status_{i}" && t2[status] = "status_{}" -> t1 <[status] t2"#,
                    i + 1
                ),
            )
            .expect("static constraint"),
        );
    }
    for i in 0..JOB_CHAIN - 1 {
        out.push(
            parse_currency_constraint(
                schema,
                &format!(
                    r#"t1[job] = "job_{i}" && t2[job] = "job_{}" -> t1 <[job] t2"#,
                    i + 1
                ),
            )
            .expect("static constraint"),
        );
    }
    for text in [
        "t1[kids] < t2[kids] -> t1 <[kids] t2",
        "t1 <[status] t2 -> t1 <[job] t2",
        "t1 <[status] t2 -> t1 <[AC] t2",
        "t1 <[status] t2 -> t1 <[zip] t2",
        "t1 <[city] t2 && t1 <[zip] t2 -> t1 <[county] t2",
    ] {
        out.push(parse_currency_constraint(schema, text).expect("static constraint"));
    }
    debug_assert_eq!(out.len(), 983);
    out
}

/// Builds the 1000 `AC → city` CFD patterns.
pub fn gamma(schema: &Arc<Schema>) -> Vec<ConstantCfd> {
    (0..AC_POOL)
        .flat_map(|i| {
            parse_cfds(
                schema,
                &format!("AC = {} -> city = \"city_{}\"", 200 + i, i % CITY_POOL),
            )
            .expect("static CFD")
        })
        .collect()
}

/// One state of an entity's history.
#[derive(Clone)]
struct State {
    status: usize,
    job: usize,
    kids: i64,
    ac: usize,
    zip: usize,    // entity-local fresh counter
    county: usize, // entity-local fresh counter
}

impl State {
    fn to_tuple(&self, name: &str, entity: usize) -> Tuple {
        Tuple::of([
            Value::str(name),
            Value::str(format!("status_{}", self.status)),
            Value::str(format!("job_{}", self.job)),
            Value::int(self.kids),
            Value::str(format!("city_{}", self.ac % CITY_POOL)),
            Value::int(200 + self.ac as i64),
            Value::str(format!("zip_{entity}_{}", self.zip)),
            Value::str(format!("county_{entity}_{}", self.county)),
        ])
    }
}

/// Generates a Person dataset.
pub fn generate(config: PersonConfig) -> Dataset {
    let sizes: Vec<usize> = {
        let mut r = rng(config.seed ^ 0x51235);
        (0..config.entities)
            .map(|_| r.gen_range(config.min_tuples..=config.max_tuples))
            .collect()
    };
    generate_with_sizes(&sizes, config.seed)
}

/// Generates one entity per requested instance size (used by the Fig. 8
/// size-bin sweeps).
pub fn generate_with_sizes(sizes: &[usize], seed: u64) -> Dataset {
    let s = schema();
    let mut r = rng(seed);
    let mut entities = Vec::with_capacity(sizes.len());
    for (idx, &size) in sizes.iter().enumerate() {
        entities.push(generate_entity(&s, idx, size.max(1), &mut r));
    }
    Dataset {
        name: "Person".to_string(),
        schema: s.clone(),
        sigma: sigma(&s),
        gamma: gamma(&s),
        entities,
        table: None,
        program: std::sync::OnceLock::new(),
    }
    .share_value_table()
}

fn generate_entity(
    schema: &Arc<Schema>,
    idx: usize,
    size: usize,
    r: &mut rand_chacha::ChaCha8Rng,
) -> (EntityInstance, Tuple) {
    let name = format!("person_{idx}");
    let states_n = size.clamp(2, MAX_STATES);

    // History: walk every evolving attribute forward, never reusing values,
    // so the generated data cannot violate the (acyclic) constraints.
    let mut state = State {
        status: r.gen_range(0..STATUS_CHAIN - states_n),
        job: r.gen_range(0..JOB_CHAIN - states_n),
        kids: r.gen_range(0..3),
        ac: r.gen_range(0..AC_POOL),
        zip: 0,
        county: 0,
    };
    let mut states = vec![state.clone()];
    let mut used_acs: Vec<usize> = Vec::new();
    for _ in 1..states_n {
        // Status advances by exactly one chain step so adjacent history
        // states are directly constrained (gaps come from sampling below).
        state.status += 1;
        if r.gen_bool(0.6) {
            state.job += 1;
        }
        if r.gen_bool(0.5) {
            state.kids += 1;
        }
        if r.gen_bool(0.4) {
            // A fresh AC (never reused by this entity) keeps ϕ6 acyclic.
            used_acs.push(state.ac);
            loop {
                let candidate = r.gen_range(0..AC_POOL);
                if !used_acs.contains(&candidate) {
                    state.ac = candidate;
                    break;
                }
            }
        }
        // zip changes with every status change (ϕ7 orders them); county
        // follows city/zip (ϕ8).
        state.zip += 1;
        if r.gen_bool(0.5) {
            state.county += 1;
        }
        states.push(state.clone());
    }

    let truth = states.last().expect("non-empty").to_tuple(&name, idx);

    // E = `size` samples from the history plus one copy of tc; the instance
    // is E \ {tc}. Sampling may or may not re-draw the final state, so some
    // true values are outside the active domain ("new values" users supply).
    // Sample from the *older* states; with probability 0.90 one copy of the
    // final (truth) state survives in E \ {tc} — sources usually repeat the
    // current state — while the remaining 10% of entities have genuinely
    // stale instances whose newest values only users can supply.
    let older = states.len() - 1;
    let mut tuples: Vec<Tuple> = (0..size)
        .map(|_| {
            let pick = r.gen_range(0..older.max(1));
            states[pick].to_tuple(&name, idx)
        })
        .collect();
    if size >= 2 {
        // Guarantee at least one genuine conflict: the oldest state first.
        tuples[0] = states[0].to_tuple(&name, idx);
        if r.gen_bool(0.90) {
            let slot = 1 + r.gen_range(0..size - 1);
            tuples[slot] = states[states.len() - 1].to_tuple(&name, idx);
        }
    }
    let entity = EntityInstance::new(schema.clone(), tuples).expect("arity matches");
    (entity, truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::isvalid::is_valid;
    use cr_core::Specification;

    #[test]
    fn constraint_counts_match_the_paper() {
        let s = schema();
        assert_eq!(sigma(&s).len(), 983);
        assert_eq!(gamma(&s).len(), 1000);
    }

    #[test]
    fn generated_specs_are_valid() {
        let ds = generate(PersonConfig { entities: 12, min_tuples: 2, max_tuples: 30, seed: 7 });
        for i in 0..ds.len() {
            assert!(is_valid(&ds.spec(i)).valid, "entity {i} must be valid");
        }
    }

    #[test]
    fn instances_have_conflicts() {
        let ds = generate(PersonConfig { entities: 10, min_tuples: 4, max_tuples: 20, seed: 9 });
        let conflicting = ds
            .entities
            .iter()
            .filter(|(e, _)| !e.conflicting_attrs().is_empty())
            .count();
        assert!(conflicting >= 8, "most instances should carry conflicts");
    }

    #[test]
    fn truth_is_the_latest_state() {
        let ds = generate(PersonConfig { entities: 5, min_tuples: 6, max_tuples: 12, seed: 3 });
        for i in 0..ds.len() {
            let (e, truth) = &ds.entities[i];
            let status_attr = ds.schema.attr_id("status").unwrap();
            // The truth status is >= every status in the instance (chain
            // indices are comparable through the label suffix).
            let idx = |v: &Value| -> usize {
                v.to_token()
                    .rsplit('_')
                    .next()
                    .unwrap()
                    .parse()
                    .unwrap()
            };
            let truth_status = idx(truth.get(status_attr));
            for t in e.tuples() {
                assert!(idx(t.get(status_attr)) <= truth_status);
            }
        }
    }

    #[test]
    fn sizes_are_respected() {
        let ds = generate_with_sizes(&[1, 5, 17], 11);
        let sizes: Vec<usize> = ds.entities.iter().map(|(e, _)| e.len()).collect();
        assert_eq!(sizes, vec![1, 5, 17]);
    }

    #[test]
    fn active_domains_stay_bounded_for_huge_instances() {
        let ds = generate_with_sizes(&[800], 13);
        let (e, _) = &ds.entities[0];
        for attr in ds.schema.attr_ids() {
            assert!(
                e.active_domain(attr).len() <= MAX_STATES,
                "adom must be bounded by the state cap"
            );
        }
        // Large instances still encode + validate quickly.
        let spec = Specification::without_orders(e.clone(), ds.sigma.clone(), ds.gamma.clone());
        assert!(is_valid(&spec).valid);
    }
}
