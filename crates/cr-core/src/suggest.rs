//! `Suggest`: computing suggestions for user interaction (Section V-C.2,
//! Fig. 7).
//!
//! Pipeline: `DeriveVR` (candidate true values from the deduced orders) →
//! `TrueDer` (derivation rules) → `CompGraph` → `MaxClique` → `GetSug`
//! (MaxSAT repair of the clique against `Φ(Se)`, then
//! `A = R \ (A' ∪ B)`).

use std::collections::BTreeMap;

use cr_clique::{find_max_clique, CliqueStrategy};
use cr_maxsat::{solve as maxsat_solve, MaxSatInstance, MaxSatStrategy};
use cr_types::{AttrId, Value, ValueId};

use crate::compat::compatibility_graph;
use crate::deduce::DeducedOrders;
use crate::encode::EncodedSpec;
use crate::rules::{candidate_values, true_der, DerivationRule};
use crate::spec::Specification;
use crate::truevalue::TrueValues;

/// A suggestion `(A, V(A))`: attributes the user should validate, each with
/// its candidate true values, plus the attributes `A'` whose true values the
/// selected rules will derive automatically once `A` is answered.
#[derive(Clone, Debug)]
pub struct Suggestion {
    /// Attributes to ask the user about, with candidate values from the
    /// active domain (users may also supply new values).
    pub ask: BTreeMap<AttrId, Vec<Value>>,
    /// Attributes derivable from the chosen conflict-free rule set.
    pub derived: Vec<AttrId>,
    /// The conflict-free rules selected by the MaxSAT repair.
    pub rules: Vec<DerivationRule>,
}

impl Suggestion {
    /// Number of attributes the user is asked to validate (`|A|`).
    pub fn len(&self) -> usize {
        self.ask.len()
    }

    /// True iff nothing needs asking.
    pub fn is_empty(&self) -> bool {
        self.ask.is_empty()
    }
}

/// Computes a suggestion for `spec` given the deduced orders `od` and the
/// validated/deduced true values `known` (the `VB` of the paper).
pub fn suggest(
    spec: &Specification,
    enc: &EncodedSpec,
    od: &DeducedOrders,
    known: &TrueValues,
) -> Suggestion {
    let mut solver = enc.fresh_solver();
    suggest_with_solver(spec, enc, od, known, &mut solver)
}

/// [`suggest`] against a caller-owned solver already loaded with `Φ(Se)`
/// (plus any learnt clauses). The resolution engine passes its warm
/// incremental solver here, so the common case of `GetSug` — the whole
/// clique is consistent — costs one assumption probe instead of copying
/// `Φ(Se)` into a fresh MaxSAT instance.
pub fn suggest_with_solver(
    spec: &Specification,
    enc: &EncodedSpec,
    od: &DeducedOrders,
    known: &TrueValues,
    solver: &mut cr_sat::Solver,
) -> Suggestion {
    // DeriveVR + TrueDer + CompGraph + MaxClique.
    let rules = true_der(spec, enc, od, known);
    let graph = compatibility_graph(&rules);
    let clique = find_max_clique(&graph, CliqueStrategy::default());

    // GetSug: retain a maximum subset of the clique consistent with Φ(Se).
    let selected = max_consistent_subset(enc, &rules, &clique, solver);
    assemble_suggestion(spec, enc, od, known, rules, selected)
}

/// [`suggest_with_solver`] for the incremental engine: the clique probe and
/// the MaxSAT repair's CEGAR rounds **record** their lazily instantiated
/// axioms into the encoding's CNF instead of running transient loops — the
/// warm solver therefore starts every later probe from the full
/// already-injected theory, and the clause-tail sync can never re-feed an
/// instance the solver already holds (the bounded duplicate copies of the
/// transient era are gone).
///
/// `solver` must hold every clause of `enc.cnf()` on entry (the engine
/// syncs before suggesting). Returns the suggestion plus the solver's new
/// sync watermark: clauses recorded by the probe already reached the solver
/// through its CEGAR loop, clauses recorded by the MaxSAT repair did not
/// and stay above the watermark for the next ordinary tail sync.
pub fn suggest_with_engine(
    spec: &Specification,
    enc: &mut EncodedSpec,
    od: &DeducedOrders,
    known: &TrueValues,
    solver: &mut cr_sat::Solver,
) -> (Suggestion, usize) {
    let rules = true_der(spec, enc, od, known);
    let graph = compatibility_graph(&rules);
    let clique = find_max_clique(&graph, CliqueStrategy::default());
    let (selected, synced) = max_consistent_subset_recording(enc, &rules, &clique, solver);
    (assemble_suggestion(spec, enc, od, known, rules, selected), synced)
}

/// The post-selection half of `GetSug`, shared by the transient and
/// recording paths: compute `A'` (derivable attributes) by chaining the
/// selected rules and assemble `A = R \ (A' ∪ B)` with candidate values.
fn assemble_suggestion(
    spec: &Specification,
    enc: &EncodedSpec,
    od: &DeducedOrders,
    known: &TrueValues,
    rules: Vec<DerivationRule>,
    selected: Vec<usize>,
) -> Suggestion {
    // A' = attributes reachable from the known/asked set by chaining the
    // selected rules (a rule fires once all of its LHS attributes are
    // settled). A plain "all RHS attributes" reading admits circular rule
    // pairs (x derives from y, y from x) that would leave the user with an
    // empty suggestion and the resolution stuck; the fixpoint does not.
    let derived: Vec<AttrId> = {
        let mut settled: Vec<bool> = spec
            .schema()
            .attr_ids()
            .map(|a| known.get(a).is_some())
            .collect();
        // Attributes we will ask about are settled by the user.
        for attr in spec.schema().attr_ids() {
            let derivable_rhs = selected.iter().any(|&i| rules[i].rhs.0 == attr);
            if !settled[attr.index()] && !derivable_rhs {
                settled[attr.index()] = true; // will be asked
            }
        }
        let mut derived = Vec::new();
        loop {
            let mut progress = false;
            for &i in &selected {
                let r = &rules[i];
                if settled[r.rhs.0.index()] {
                    continue;
                }
                if r.lhs.iter().all(|(a, _)| settled[a.index()]) {
                    settled[r.rhs.0.index()] = true;
                    derived.push(r.rhs.0);
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
        // Anything still unsettled is circular: ask the user instead.
        derived.sort_unstable();
        derived.dedup();
        derived
    };

    // A = R \ (A' ∪ B): unknown attributes not derivable from the rules.
    let mut ask = BTreeMap::new();
    for attr in spec.schema().attr_ids() {
        if known.get(attr).is_some() || derived.contains(&attr) {
            continue;
        }
        ask.insert(attr, candidate_values(enc, od, attr));
    }
    Suggestion {
        ask,
        derived,
        rules: selected.into_iter().map(|i| rules[i].clone()).collect(),
    }
}

/// MaxSAT repair: hard clauses are `Φ(Se)`; each clique rule gets a selector
/// implying "all its asserted values are tops of their attributes"; soft
/// unit clauses maximise the number of selected rules. Returns the indices
/// (into `rules`) of the retained clique members.
///
/// Fast path: when the clique's combined assertions are jointly satisfiable
/// with `Φ(Se)` — one incremental probe on `solver`, assembled into a
/// single reused literal buffer with no per-rule allocation — the MaxSAT
/// optimum keeps every clique member, so no instance is ever constructed.
/// Real suggestions overwhelmingly hit this case. When the clique genuinely
/// over-asserts, the repair instance *borrows* `Φ(Se)`'s clause arena
/// ([`MaxSatInstance::with_hard_base`]) instead of copying it, so even the
/// fallback is `O(clique)` in construction cost.
///
/// On lazy encodings the probe runs the CEGAR loop (axioms injected into
/// the warm solver persist across rounds), the borrowed hard base already
/// contains every axiom the engine recorded, and the repair itself is
/// CEGAR-wrapped: a repair assignment violating an uninstantiated axiom
/// adds it as an owned hard clause and re-solves, so the optimum equals the
/// eager repair.
fn max_consistent_subset(
    enc: &EncodedSpec,
    rules: &[DerivationRule],
    clique: &[usize],
    solver: &mut cr_sat::Solver,
) -> Vec<usize> {
    if clique.is_empty() {
        return Vec::new();
    }
    let assumptions = clique_assumptions(enc, rules, clique);
    let lazy = enc.options().is_lazy();
    let sat = if lazy {
        let mut source = crate::encode::TransientAxiomSource::new(enc);
        solver.solve_lazy_with_assumptions(&assumptions, &mut source)
    } else {
        solver.solve_with_assumptions(&assumptions)
    };
    if sat == cr_sat::SolveResult::Sat {
        return clique.to_vec();
    }
    // Axiom clauses added by repair CEGAR rounds (lazy encodings only) --
    // transient: they live only in this loop's instances.
    let mut extra_axioms: Vec<Vec<cr_sat::Lit>> = Vec::new();
    let mut scratch: Vec<cr_sat::Lit> = Vec::new();
    loop {
        let (mut inst, selectors) = build_repair_instance(enc, rules, clique, &mut scratch);
        for clause in &extra_axioms {
            inst.add_hard(clause.iter().copied());
        }
        match maxsat_solve(&inst, MaxSatStrategy::default()) {
            Some(result) => {
                if lazy {
                    let violated = enc.violated_axioms(
                        &|v| result.assignment.get(v.index()).copied(),
                        None,
                    );
                    if !violated.is_empty() {
                        extra_axioms.extend(violated);
                        continue;
                    }
                }
                return retained_clique(clique, &selectors, &result.assignment);
            }
            // Hard clauses unsatisfiable: the specification itself is
            // invalid; callers check IsValid first, so this is defensive.
            None => return Vec::new(),
        }
    }
}

/// [`max_consistent_subset`] for the incremental engine (see
/// [`suggest_with_engine`]): the consistent-clique probe consults a
/// [`crate::encode::RecordingAxiomSource`], so axioms it instantiates land
/// in the CNF **and** the warm solver at once, and every repair-CEGAR
/// discovery is recorded into the CNF too — the borrowed hard base of the
/// next repair round (and every later probe of the resolution) starts from
/// the full already-injected theory. Returns the retained clique indices
/// and the solver's clause-sync watermark.
fn max_consistent_subset_recording(
    enc: &mut EncodedSpec,
    rules: &[DerivationRule],
    clique: &[usize],
    solver: &mut cr_sat::Solver,
) -> (Vec<usize>, usize) {
    if clique.is_empty() {
        return (Vec::new(), enc.cnf().num_clauses());
    }
    let assumptions = clique_assumptions(enc, rules, clique);
    let lazy = enc.options().is_lazy();
    let sat = if lazy {
        let mut source = crate::encode::RecordingAxiomSource::new(enc);
        solver.solve_lazy_with_assumptions(&assumptions, &mut source)
    } else {
        solver.solve_with_assumptions(&assumptions)
    };
    // Everything the probe handed to the solver was recorded into the CNF
    // in the same step: the solver is in sync up to here.
    let synced = enc.cnf().num_clauses();
    if sat == cr_sat::SolveResult::Sat {
        return (clique.to_vec(), synced);
    }
    let mut scratch: Vec<cr_sat::Lit> = Vec::new();
    loop {
        let (inst, selectors) = build_repair_instance(enc, rules, clique, &mut scratch);
        match maxsat_solve(&inst, MaxSatStrategy::default()) {
            Some(result) => {
                if lazy {
                    let violated = enc.violated_axioms(
                        &|v| result.assignment.get(v.index()).copied(),
                        None,
                    );
                    if !violated.is_empty() {
                        // Recorded into the CNF: the next iteration's
                        // borrowed hard base (and all later consumers via
                        // the tail sync) see them; `synced` stays below so
                        // the engine feeds them to the solver ordinarily.
                        enc.record_axiom_clauses(&violated);
                        continue;
                    }
                }
                return (retained_clique(clique, &selectors, &result.assignment), synced);
            }
            // Hard clauses unsatisfiable: the specification itself is
            // invalid; callers check IsValid first, so this is defensive.
            None => return (Vec::new(), synced),
        }
    }
}

/// The clique's combined "these values are tops" assumption set, sorted
/// and deduplicated — shared by the transient and recording probes.
fn clique_assumptions(
    enc: &EncodedSpec,
    rules: &[DerivationRule],
    clique: &[usize],
) -> Vec<cr_sat::Lit> {
    let mut assumptions: Vec<cr_sat::Lit> = Vec::new();
    for &ri in clique {
        let rule = &rules[ri];
        for &(attr, v) in rule.lhs.iter().chain(std::iter::once(&rule.rhs)) {
            push_top_literals(enc, attr, v, &mut assumptions);
        }
    }
    assumptions.sort_unstable();
    assumptions.dedup();
    assumptions
}

/// Builds one MaxSAT repair instance: the borrowed `Φ(Se)` hard base with
/// active guard groups asserted, one selector variable per clique rule
/// implying "all its asserted values are tops", and unit-weight soft
/// selectors. Returns the instance and the selector variables (parallel to
/// `clique`). Shared by the transient and recording repair loops so the
/// selector encoding can never diverge between them.
fn build_repair_instance<'a>(
    enc: &'a EncodedSpec,
    rules: &[DerivationRule],
    clique: &[usize],
    scratch: &mut Vec<cr_sat::Lit>,
) -> (MaxSatInstance<'a>, Vec<cr_sat::Var>) {
    let mut inst = MaxSatInstance::with_hard_base(enc.cnf());
    // Active guard groups must hold inside the repair too (retracted ones
    // are neutralised by the neg-guard units already present in the base).
    for g in enc.active_guards() {
        inst.add_hard([g]);
    }
    let mut selectors = Vec::with_capacity(clique.len());
    for (offset, &ri) in clique.iter().enumerate() {
        let sel = cr_sat::Var(enc.cnf().num_vars() + offset as u32);
        selectors.push(sel);
        let rule = &rules[ri];
        for &(attr, v) in rule.lhs.iter().chain(std::iter::once(&rule.rhs)) {
            scratch.clear();
            push_top_literals(enc, attr, v, scratch);
            for &lit in scratch.iter() {
                inst.add_hard([sel.negative(), lit]);
            }
        }
        inst.add_soft([sel.positive()], 1);
    }
    (inst, selectors)
}

/// The clique members a repair result retained.
fn retained_clique(clique: &[usize], selectors: &[cr_sat::Var], assignment: &[bool]) -> Vec<usize> {
    clique
        .iter()
        .zip(selectors)
        .filter(|(_, sel)| assignment[sel.index()])
        .map(|(&ri, _)| ri)
        .collect()
}

/// Appends the literals asserting "`v` is the top of `attr`" to `out` —
/// every other *live* value sits below `v` (retired values are out of the
/// active domain on revisable encodings; ordinary encodings are all-live).
fn push_top_literals(enc: &EncodedSpec, attr: AttrId, v: ValueId, out: &mut Vec<cr_sat::Lit>) {
    out.extend(
        enc.space()
            .attr(attr)
            .live_ids()
            .filter(|&o| o != v)
            .filter_map(|o| enc.var_of(attr, o, v).map(|var| var.positive())),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deduce::deduce_order;
    use crate::truevalue::true_values_from_orders;
    use cr_constraints::parser::{parse_cfd_file, parse_currency_file};
    use cr_types::{EntityInstance, Schema, Tuple};

    /// Full George entity (Fig. 2 E2) with the Fig. 3 constraints.
    fn george() -> Specification {
        let s = Schema::new(
            "person",
            ["name", "status", "job", "kids", "city", "AC", "zip", "county"],
        )
        .unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([
                    Value::str("George"),
                    Value::str("working"),
                    Value::str("sailor"),
                    Value::int(0),
                    Value::str("Newport"),
                    Value::int(401),
                    Value::str("02840"),
                    Value::str("Rhode Island"),
                ]),
                Tuple::of([
                    Value::str("George"),
                    Value::str("retired"),
                    Value::str("veteran"),
                    Value::int(2),
                    Value::str("NY"),
                    Value::int(212),
                    Value::str("12404"),
                    Value::str("Accord"),
                ]),
                Tuple::of([
                    Value::str("George"),
                    Value::str("unemployed"),
                    Value::str("n/a"),
                    Value::int(2),
                    Value::str("Chicago"),
                    Value::int(312),
                    Value::str("60653"),
                    Value::str("Bronzeville"),
                ]),
            ],
        )
        .unwrap();
        let sigma = parse_currency_file(
            &s,
            r#"
            phi1: t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2
            phi2: t1[status] = "retired" && t2[status] = "deceased" -> t1 <[status] t2
            phi3: t1[job] = "sailor" && t2[job] = "veteran" -> t1 <[job] t2
            phi4: t1[kids] < t2[kids] -> t1 <[kids] t2
            phi5: t1 <[status] t2 -> t1 <[job] t2
            phi6: t1 <[status] t2 -> t1 <[AC] t2
            phi7: t1 <[status] t2 -> t1 <[zip] t2
            phi8: t1 <[city] t2 && t1 <[zip] t2 -> t1 <[county] t2
            "#,
        )
        .unwrap();
        let gamma = parse_cfd_file(
            &s,
            r#"
            psi1: AC = 213 -> city = "LA"
            psi2: AC = 212 -> city = "NY"
            "#,
        )
        .unwrap();
        Specification::without_orders(e, sigma, gamma)
    }

    /// Example 12: asking for `status` suffices — job, AC, zip, city and
    /// county all become derivable; name and kids are already known.
    #[test]
    fn george_suggestion_is_status_only() {
        let spec = george();
        let enc = EncodedSpec::encode(&spec);
        let od = deduce_order(&enc).unwrap();
        let known = true_values_from_orders(&enc, &od);
        // Example 3: only name and kids are deducible automatically.
        let s = spec.schema();
        assert_eq!(known.get(s.attr_id("name").unwrap()), Some(&Value::str("George")));
        assert_eq!(known.get(s.attr_id("kids").unwrap()), Some(&Value::int(2)));
        assert_eq!(known.known_count(), 2);

        let sug = suggest(&spec, &enc, &od, &known);
        let ask_names: Vec<&str> = sug.ask.keys().map(|a| s.attr_name(*a)).collect();
        assert_eq!(ask_names, vec!["status"], "suggestion should be exactly status");
        // Candidates for status per Example 12: retired and unemployed.
        let status = s.attr_id("status").unwrap();
        let cands = &sug.ask[&status];
        assert_eq!(cands.len(), 2);
        assert!(cands.contains(&Value::str("retired")));
        assert!(cands.contains(&Value::str("unemployed")));
        // Derived set covers the remaining five attributes.
        let derived_names: Vec<&str> = sug.derived.iter().map(|a| s.attr_name(*a)).collect();
        for a in ["job", "AC", "zip", "city", "county"] {
            assert!(derived_names.contains(&a), "{a} missing from derived set");
        }
    }

    #[test]
    fn suggestion_rules_are_mutually_consistent_with_spec() {
        let spec = george();
        let enc = EncodedSpec::encode(&spec);
        let od = deduce_order(&enc).unwrap();
        let known = true_values_from_orders(&enc, &od);
        let sug = suggest(&spec, &enc, &od, &known);
        // Selected rules must not assert two different values of the same
        // attribute (clique property) and must be jointly satisfiable with
        // Φ(Se) (MaxSAT hard constraints) — check the first property here.
        for (i, x) in sug.rules.iter().enumerate() {
            for y in &sug.rules[i + 1..] {
                for (a, v) in x.lhs.iter().chain(std::iter::once(&x.rhs)) {
                    if let Some(w) = y.asserted(*a) {
                        assert_eq!(*v, w, "inconsistent rule pair selected");
                    }
                }
            }
        }
    }

    #[test]
    fn nothing_to_suggest_when_everything_known() {
        let s = Schema::new("p", ["a"]).unwrap();
        let e = EntityInstance::new(s, vec![Tuple::of([Value::int(1)])]).unwrap();
        let spec = Specification::without_orders(e, vec![], vec![]);
        let enc = EncodedSpec::encode(&spec);
        let od = deduce_order(&enc).unwrap();
        let known = true_values_from_orders(&enc, &od);
        assert!(known.complete());
        let sug = suggest(&spec, &enc, &od, &known);
        assert!(sug.is_empty());
        assert!(sug.derived.is_empty());
    }

    #[test]
    fn unconstrained_conflicts_ask_for_everything() {
        let s = Schema::new("p", ["a", "b"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![
                Tuple::of([Value::int(1), Value::str("x")]),
                Tuple::of([Value::int(2), Value::str("y")]),
            ],
        )
        .unwrap();
        let spec = Specification::without_orders(e, vec![], vec![]);
        let enc = EncodedSpec::encode(&spec);
        let od = deduce_order(&enc).unwrap();
        let known = true_values_from_orders(&enc, &od);
        let sug = suggest(&spec, &enc, &od, &known);
        assert_eq!(sug.len(), 2);
        for cands in sug.ask.values() {
            assert_eq!(cands.len(), 2);
        }
    }
}
