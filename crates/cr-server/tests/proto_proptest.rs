//! Roundtrip and decode-safety properties of the serving protocol codec.
//!
//! Every protocol record — all eight [`Request`] variants (with full
//! causal stamps on ingested events), every [`Response`] shape, every
//! [`ServeError`], [`Reply`]s in both outcomes, and complete [`Message`]s
//! in either direction — must roundtrip bit-exactly through
//! `encode_message`/`decode_message`. Decode must be total: truncation at
//! **every** byte yields a typed [`CodecError::Truncated`] (never a
//! panic), unknown versions and tags are typed errors, and trailing bytes
//! are rejected — mirroring the durable-log codec suite in
//! `cr-store/tests/codec_proptest.rs`.

use cr_core::causal::CausalRevision;
use cr_core::framework::DeductionMethod;
use cr_core::ingest::Revision;
use cr_core::spec::UserInput;
use cr_server::proto::{
    decode_message, encode_message, Message, Reply, Request, Response, ServeError,
    PROTO_VERSION,
};
use cr_types::codec::CodecError;
use cr_types::wire::{Envelope, IdemKey, RequestId, TenantId};
use cr_types::{AttrId, CausalStamp, Hlc, SourceId, TupleId, Value, VectorClock};
use proptest::prelude::*;

fn value() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        (-1_000_000i64..1_000_000).prop_map(Value::int),
        (-1_000_000i64..1_000_000).prop_map(|n| Value::float(n as f64 / 97.0)),
        "[a-z0-9_]{0,12}".prop_map(Value::str),
    ]
    .boxed()
}

fn source() -> BoxedStrategy<SourceId> {
    (0u32..6).prop_map(SourceId).boxed()
}

fn hlc() -> BoxedStrategy<Hlc> {
    ((0u64..1 << 40), (0u32..16)).prop_map(|(p, l)| Hlc::new(p, l)).boxed()
}

fn vclock() -> BoxedStrategy<VectorClock> {
    prop::collection::vec((source(), 1u64..64), 0..4)
        .prop_map(|entries| {
            let mut vc = VectorClock::new();
            for (s, n) in entries {
                vc.observe(s, n);
            }
            vc
        })
        .boxed()
}

fn stamp() -> BoxedStrategy<CausalStamp> {
    (source(), hlc(), vclock())
        .prop_map(|(source, hlc, vclock)| CausalStamp { source, hlc, vclock })
        .boxed()
}

fn attr() -> BoxedStrategy<AttrId> {
    (0u16..40).prop_map(AttrId).boxed()
}

fn tuple_id() -> BoxedStrategy<TupleId> {
    (0u32..40).prop_map(TupleId).boxed()
}

fn revision() -> BoxedStrategy<Revision> {
    prop_oneof![
        (0usize..1000).prop_map(|cfd| Revision::RetractCfd { cfd }),
        (attr(), tuple_id(), tuple_id())
            .prop_map(|(attr, lo, hi)| Revision::WithdrawOrder { attr, lo, hi }),
        (attr(), tuple_id()).prop_map(|(attr, tuple)| Revision::WithdrawAnswer { attr, tuple }),
        (tuple_id(), attr(), value())
            .prop_map(|(tuple, attr, value)| Revision::ReplaceValue { tuple, attr, value }),
    ]
    .boxed()
}

fn user_input() -> BoxedStrategy<UserInput> {
    prop::collection::vec((attr(), value()), 0..4)
        .prop_map(|pairs| {
            let mut input = UserInput::empty();
            for (a, v) in pairs {
                input.values.insert(a, v);
            }
            input
        })
        .boxed()
}

fn method() -> BoxedStrategy<DeductionMethod> {
    prop_oneof![Just(DeductionMethod::UnitPropagation), Just(DeductionMethod::NaiveSat)].boxed()
}

/// Every `Request` variant.
fn request() -> BoxedStrategy<Request> {
    prop_oneof![
        Just(Request::IsValid),
        method().prop_map(|method| Request::Deduce { method }),
        method().prop_map(|method| Request::TrueValues { method }),
        method().prop_map(|method| Request::Suggest { method }),
        user_input().prop_map(|input| Request::ApplyInput { input }),
        prop::collection::vec(
            (stamp(), revision()).prop_map(|(stamp, rev)| CausalRevision { stamp, rev }),
            0..4,
        )
        .prop_map(|events| Request::IngestCausal { events }),
        prop::collection::vec(revision(), 0..4).prop_map(|revs| Request::AbsorbBatch { revs }),
        Just(Request::Snapshot),
    ]
    .boxed()
}

fn opt_value() -> BoxedStrategy<Option<Value>> {
    prop_oneof![Just(None), value().prop_map(Some)].boxed()
}

/// Every `Response` variant.
fn response() -> BoxedStrategy<Response> {
    prop_oneof![
        (0u8..2).prop_map(|b| Response::Valid(b == 1)),
        ((0u8..2), (0u64..10_000)).prop_map(|(found, order_pairs)| Response::Deduced {
            found: found == 1,
            order_pairs,
        }),
        prop::collection::vec(opt_value(), 0..5)
            .prop_map(|values| Response::TrueValues { values }),
        (
            prop::collection::vec((attr(), prop::collection::vec(value(), 0..3)), 0..3),
            prop::collection::vec(attr(), 0..3),
        )
            .prop_map(|(ask, derived)| Response::Suggest { ask, derived }),
        (0u64..10_000).prop_map(|added| Response::Applied { added }),
        ((0u64..10_000), (0u64..10_000))
            .prop_map(|(effective, epoch)| Response::Ingested { effective, epoch }),
        ((0u64..10_000), prop::collection::vec((0u8..2).prop_map(|b| b == 1), 0..5))
            .prop_map(|(epoch, applied)| Response::Absorbed { epoch, applied }),
        (0u64..1 << 40).prop_map(|log_bytes| Response::Snapshotted { log_bytes }),
    ]
    .boxed()
}

/// Every `ServeError` variant.
fn serve_error() -> BoxedStrategy<ServeError> {
    prop_oneof![
        (0u64..1000).prop_map(|retry_after| ServeError::Overloaded { retry_after }),
        ((0u64..1 << 40), (0u64..1 << 40), (0u8..2)).prop_map(|(deadline, now, q)| {
            ServeError::DeadlineExceeded { deadline, now, queued: q == 1 }
        }),
        (0u64..1000).prop_map(|session| ServeError::UnknownSession { session }),
        "[a-z0-9 :_]{0,24}".prop_map(|message| ServeError::Store { message }),
    ]
    .boxed()
}

fn envelope() -> BoxedStrategy<Envelope> {
    (
        (0u64..1 << 40),
        (0u32..64),
        (0u64..1000),
        prop_oneof![Just(None), (0u64..1 << 40).prop_map(Some)],
        prop_oneof![Just(None), (0u64..1 << 40).prop_map(|k| Some(IdemKey(k)))],
    )
        .prop_map(|(rid, tenant, session, deadline, idempotency)| Envelope {
            request_id: RequestId(rid),
            tenant: TenantId(tenant),
            session,
            deadline,
            idempotency,
        })
        .boxed()
}

fn reply() -> BoxedStrategy<Reply> {
    (
        (0u64..1 << 40),
        prop_oneof![response().prop_map(Ok), serve_error().prop_map(Err)],
    )
        .prop_map(|(rid, outcome)| Reply { request_id: RequestId(rid), outcome })
        .boxed()
}

/// Every `Message` shape in either direction.
fn message() -> BoxedStrategy<Message> {
    prop_oneof![
        (envelope(), request()).prop_map(|(env, req)| Message::Request { env, req }),
        reply().prop_map(Message::Reply),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every message shape roundtrips bit-exactly through the versioned
    /// wire encoding.
    #[test]
    fn message_roundtrips(msg in message()) {
        let bytes = encode_message(&msg);
        prop_assert_eq!(bytes[0], PROTO_VERSION);
        let back = decode_message(&bytes)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(back, msg);
    }

    /// Truncating an encoded message at **every** byte yields a typed
    /// `Truncated` error — no panic, no bogus success. A decoder with no
    /// lookahead follows the identical step sequence on a strict prefix
    /// until it runs out of bytes, so nothing else is acceptable.
    #[test]
    fn truncation_at_every_byte_is_a_typed_error(msg in message()) {
        let bytes = encode_message(&msg);
        for cut in 0..bytes.len() {
            match decode_message(&bytes[..cut]) {
                Err(CodecError::Truncated { .. }) => {}
                other => {
                    return Err(TestCaseError::fail(format!(
                        "decode of {cut}-byte prefix of a {}-byte message returned {other:?}, \
                         expected CodecError::Truncated",
                        bytes.len()
                    )));
                }
            }
        }
    }

    /// Trailing bytes after a well-formed message are a typed error — the
    /// channel frames exactly one message per payload.
    #[test]
    fn trailing_bytes_are_rejected(msg in message()) {
        let mut bytes = encode_message(&msg);
        bytes.push(0);
        match decode_message(&bytes) {
            Err(CodecError::TrailingBytes { .. }) => {}
            other => {
                return Err(TestCaseError::fail(format!(
                    "expected TrailingBytes, got {other:?}"
                )));
            }
        }
    }
}

/// An unknown protocol version is a typed error, not a guess.
#[test]
fn unknown_protocol_version_is_rejected() {
    let msg = Message::Request {
        env: Envelope {
            request_id: RequestId(1),
            tenant: TenantId(0),
            session: 0,
            deadline: None,
            idempotency: None,
        },
        req: Request::IsValid,
    };
    let mut bytes = encode_message(&msg);
    bytes[0] = PROTO_VERSION + 1;
    match decode_message(&bytes) {
        Err(CodecError::UnsupportedVersion { version, .. }) => {
            assert_eq!(version, PROTO_VERSION + 1);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

/// An unknown message direction tag is a typed error.
#[test]
fn unknown_message_tag_is_rejected() {
    let bytes = vec![PROTO_VERSION, 0xEE];
    match decode_message(&bytes) {
        Err(CodecError::BadTag { tag: 0xEE, .. }) => {}
        other => panic!("expected BadTag, got {other:?}"),
    }
}

/// An unknown request tag is a typed error.
#[test]
fn unknown_request_tag_is_rejected() {
    let msg = Message::Request {
        env: Envelope {
            request_id: RequestId(1),
            tenant: TenantId(0),
            session: 0,
            deadline: None,
            idempotency: None,
        },
        req: Request::Snapshot,
    };
    let mut bytes = encode_message(&msg);
    // The request tag is the final byte of this message (Snapshot has no
    // payload).
    *bytes.last_mut().unwrap() = 0xEE;
    match decode_message(&bytes) {
        Err(CodecError::BadTag { tag: 0xEE, what }) => assert_eq!(what, "Request"),
        other => panic!("expected BadTag, got {other:?}"),
    }
}
