/root/repo/target/debug/deps/fig8a_validity-0ba730dab4d9610d.d: crates/cr-bench/src/bin/fig8a_validity.rs

/root/repo/target/debug/deps/libfig8a_validity-0ba730dab4d9610d.rmeta: crates/cr-bench/src/bin/fig8a_validity.rs

crates/cr-bench/src/bin/fig8a_validity.rs:
