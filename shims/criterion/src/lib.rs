//! Minimal offline stand-in for the `criterion` crate (see
//! `shims/README.md`): wall-clock timing with median-of-samples reporting,
//! no statistics engine, no plotting.
//!
//! Two environment variables hook the shim into the perf-regression gate
//! (`cr-bench/src/bin/perf_gate.rs`):
//!
//! * `CRITERION_JSON` — a file path; every finished benchmark appends one
//!   JSONL record `{"id":"group/bench","median_ns":…,"mean_ns":…,
//!   "samples":…}` to it.
//! * `CRITERION_SAMPLES` — overrides every benchmark's sample count
//!   (the gate uses it to raise samples for stabler medians).

use std::fmt::Display;
use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Default number of timed samples per benchmark.
    pub sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(10);
        Criterion { sample_size }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup { name, sample_size: self.sample_size }
    }
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples (`CRITERION_SAMPLES` wins when
    /// set, so the perf gate can pin the count globally).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var_os("CRITERION_SAMPLES").is_none() {
            self.sample_size = n;
        }
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        run_one(&self.name, &id.to_string(), self.sample_size, &mut f);
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(&self.name, &id.label, self.sample_size, &mut |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the iteration body.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, recording one sample per call.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up: one untimed run.
        black_box(f());
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

fn run_one(group: &str, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples: Vec::with_capacity(sample_size) };
    for _ in 0..sample_size.max(1) {
        f(&mut bencher);
    }
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{group}/{id}: no samples recorded");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{group}/{id}: median {:>10.3?}  mean {:>10.3?}  ({} samples)",
        median,
        mean,
        samples.len()
    );
    if let Some(path) = std::env::var_os("CRITERION_JSON") {
        let record = format!(
            "{{\"id\":\"{group}/{id}\",\"median_ns\":{},\"mean_ns\":{},\"samples\":{}}}\n",
            median.as_nanos(),
            mean.as_nanos(),
            samples.len()
        );
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(record.as_bytes()));
        if let Err(e) = appended {
            eprintln!("criterion shim: cannot append to {path:?}: {e}");
        }
    }
}

/// Declares a benchmark group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
