//! The paper's running example: "V-J Day in Times Square" (Figs. 1–3).
//!
//! Entity instances `E1` (Edith Shain) and `E2` (George Mendonça) exactly as
//! in Fig. 2, the currency constraints ϕ1–ϕ8 and constant CFDs ψ1–ψ2 of
//! Fig. 3, and the true tuples the paper derives (Example 2 for Edith;
//! Example 6 for George).

use std::sync::Arc;

use cr_constraints::parser::{parse_cfd_file, parse_currency_file};
use cr_constraints::{ConstantCfd, CurrencyConstraint};
use cr_core::Specification;
use cr_types::{EntityInstance, Schema, Tuple, Value};

/// The `person` schema of Fig. 2.
pub fn schema() -> Arc<Schema> {
    Schema::new(
        "person",
        ["name", "status", "job", "kids", "city", "AC", "zip", "county"],
    )
    .expect("static schema")
}

/// The currency constraints ϕ1–ϕ8 of Fig. 3.
pub fn sigma(schema: &Arc<Schema>) -> Vec<CurrencyConstraint> {
    parse_currency_file(
        schema,
        r#"
        phi1: t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2
        phi2: t1[status] = "retired" && t2[status] = "deceased" -> t1 <[status] t2
        phi3: t1[job] = "sailor" && t2[job] = "veteran" -> t1 <[job] t2
        phi4: t1[kids] < t2[kids] -> t1 <[kids] t2
        phi5: t1 <[status] t2 -> t1 <[job] t2
        phi6: t1 <[status] t2 -> t1 <[AC] t2
        phi7: t1 <[status] t2 -> t1 <[zip] t2
        phi8: t1 <[city] t2 && t1 <[zip] t2 -> t1 <[county] t2
        "#,
    )
    .expect("static constraints")
}

/// The constant CFDs ψ1–ψ2 of Fig. 3.
pub fn gamma(schema: &Arc<Schema>) -> Vec<ConstantCfd> {
    parse_cfd_file(
        schema,
        r#"
        psi1: AC = 213 -> city = "LA"
        psi2: AC = 212 -> city = "NY"
        "#,
    )
    .expect("static CFDs")
}

/// `E1`: the three tuples r1–r3 for Edith Shain (Fig. 2).
pub fn edith_instance() -> EntityInstance {
    let s = schema();
    EntityInstance::new(
        s,
        vec![
            Tuple::of([
                Value::str("Edith Shain"),
                Value::str("working"),
                Value::str("nurse"),
                Value::int(0),
                Value::str("NY"),
                Value::int(212),
                Value::str("10036"),
                Value::str("Manhattan"),
            ]),
            Tuple::of([
                Value::str("Edith Shain"),
                Value::str("retired"),
                Value::str("n/a"),
                Value::int(3),
                Value::str("SFC"),
                Value::int(415),
                Value::str("94924"),
                Value::str("Dogtown"),
            ]),
            Tuple::of([
                Value::str("Edith Shain"),
                Value::str("deceased"),
                Value::str("n/a"),
                Value::Null,
                Value::str("LA"),
                Value::int(213),
                Value::str("90058"),
                Value::str("Vermont"),
            ]),
        ],
    )
    .expect("static instance")
}

/// `E2`: the three tuples r4–r6 for George Mendonça (Fig. 2).
pub fn george_instance() -> EntityInstance {
    let s = schema();
    EntityInstance::new(
        s,
        vec![
            Tuple::of([
                Value::str("George Mendonca"),
                Value::str("working"),
                Value::str("sailor"),
                Value::int(0),
                Value::str("Newport"),
                Value::int(401),
                Value::str("02840"),
                Value::str("Rhode Island"),
            ]),
            Tuple::of([
                Value::str("George Mendonca"),
                Value::str("retired"),
                Value::str("veteran"),
                Value::int(2),
                Value::str("NY"),
                Value::int(212),
                Value::str("12404"),
                Value::str("Accord"),
            ]),
            Tuple::of([
                Value::str("George Mendonca"),
                Value::str("unemployed"),
                Value::str("n/a"),
                Value::int(2),
                Value::str("Chicago"),
                Value::int(312),
                Value::str("60653"),
                Value::str("Bronzeville"),
            ]),
        ],
    )
    .expect("static instance")
}

/// The specification of `E1` with the Fig. 3 constraints.
pub fn edith_spec() -> Specification {
    let s = schema();
    Specification::without_orders(edith_instance(), sigma(&s), gamma(&s))
}

/// The specification of `E2` with the Fig. 3 constraints.
pub fn george_spec() -> Specification {
    let s = schema();
    Specification::without_orders(george_instance(), sigma(&s), gamma(&s))
}

/// Edith's true tuple per Example 2: `(Edith Shain, deceased, n/a, 3, LA,
/// 213, 90058, Vermont)`.
pub fn edith_truth() -> Tuple {
    Tuple::of([
        Value::str("Edith Shain"),
        Value::str("deceased"),
        Value::str("n/a"),
        Value::int(3),
        Value::str("LA"),
        Value::int(213),
        Value::str("90058"),
        Value::str("Vermont"),
    ])
}

/// George's true tuple per Example 6: `(George, retired, veteran, 2, NY,
/// 212, 12404, Accord)`.
pub fn george_truth() -> Tuple {
    Tuple::of([
        Value::str("George Mendonca"),
        Value::str("retired"),
        Value::str("veteran"),
        Value::int(2),
        Value::str("NY"),
        Value::int(212),
        Value::str("12404"),
        Value::str("Accord"),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::isvalid::is_valid;

    #[test]
    fn both_specs_are_valid() {
        assert!(is_valid(&edith_spec()).valid);
        assert!(is_valid(&george_spec()).valid);
    }

    #[test]
    fn constraint_counts_match_figure_3() {
        let s = schema();
        assert_eq!(sigma(&s).len(), 8);
        assert_eq!(gamma(&s).len(), 2);
    }

    #[test]
    fn instances_match_figure_2_shape() {
        assert_eq!(edith_instance().len(), 3);
        assert_eq!(george_instance().len(), 3);
        assert_eq!(schema().arity(), 8);
    }
}
