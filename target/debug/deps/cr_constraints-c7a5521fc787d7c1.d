/root/repo/target/debug/deps/cr_constraints-c7a5521fc787d7c1.d: crates/cr-constraints/src/lib.rs crates/cr-constraints/src/builder.rs crates/cr-constraints/src/cfd.rs crates/cr-constraints/src/fmt_util.rs crates/cr-constraints/src/currency.rs crates/cr-constraints/src/error.rs crates/cr-constraints/src/op.rs crates/cr-constraints/src/parser.rs crates/cr-constraints/src/predicate.rs

/root/repo/target/debug/deps/libcr_constraints-c7a5521fc787d7c1.rlib: crates/cr-constraints/src/lib.rs crates/cr-constraints/src/builder.rs crates/cr-constraints/src/cfd.rs crates/cr-constraints/src/fmt_util.rs crates/cr-constraints/src/currency.rs crates/cr-constraints/src/error.rs crates/cr-constraints/src/op.rs crates/cr-constraints/src/parser.rs crates/cr-constraints/src/predicate.rs

/root/repo/target/debug/deps/libcr_constraints-c7a5521fc787d7c1.rmeta: crates/cr-constraints/src/lib.rs crates/cr-constraints/src/builder.rs crates/cr-constraints/src/cfd.rs crates/cr-constraints/src/fmt_util.rs crates/cr-constraints/src/currency.rs crates/cr-constraints/src/error.rs crates/cr-constraints/src/op.rs crates/cr-constraints/src/parser.rs crates/cr-constraints/src/predicate.rs

crates/cr-constraints/src/lib.rs:
crates/cr-constraints/src/builder.rs:
crates/cr-constraints/src/cfd.rs:
crates/cr-constraints/src/fmt_util.rs:
crates/cr-constraints/src/currency.rs:
crates/cr-constraints/src/error.rs:
crates/cr-constraints/src/op.rs:
crates/cr-constraints/src/parser.rs:
crates/cr-constraints/src/predicate.rs:
