//! Property tests for push-based correction ingestion: randomized revision
//! timelines (CFD retractions, order withdrawals, value replacements —
//! shared, fresh and null — and user-answer withdrawals) interleaved with
//! ordinary oracle answers must keep the revision-replayed engine exactly
//! equivalent to a from-scratch re-resolution of the post-revision
//! specification, with sane cone telemetry throughout.

use conflict_resolution::core::framework::{GroundTruthOracle, ResolutionConfig, Resolver};
use conflict_resolution::core::ingest::{
    check_session_against_scratch, diff_logical_states, resolve_with_revisions_checked,
    ResolutionSession, RevisionSource, SpecMirror,
};
use conflict_resolution::data::gen::{
    revision_timeline, scenario_from_raw, RevisionTimelineConfig, Scenario,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Revision-replay ≡ from-scratch re-resolution on the post-revision
    /// spec, checked after every revision batch, across randomized
    /// scenarios × randomized timelines. Also asserts telemetry sanity:
    /// cones only exist when events were applied, and the guarded engine
    /// never rebuilds.
    #[test]
    fn random_revision_timelines_replay_equals_scratch(
        seed in 0u64..10_000,
        tuples in 2usize..16,
        domain in 2usize..10,
        density in 0u32..100,
        events in 1usize..7,
        new_values_sel in 0u32..2,
        withdraw_sel in 0u32..2,
    ) {
        let Scenario { spec, truth } = scenario_from_raw(seed, tuples, domain, density, new_values_sel == 1);
        let mut source = revision_timeline(&spec, &RevisionTimelineConfig {
            seed: seed.wrapping_mul(97).wrapping_add(13),
            events,
            rounds: 4,
            withdraw_answer_rounds: if withdraw_sel == 1 { vec![1, 3] } else { vec![] },
            ..Default::default()
        });
        let mut oracle = GroundTruthOracle::with_cap(truth.clone(), 1);
        let config = ResolutionConfig::default();
        let checked = resolve_with_revisions_checked(&config, &spec, &mut oracle, &mut source)
            .map_err(|e| TestCaseError::fail(format!("replay diverged from scratch: {e}")))?;

        // Telemetry sanity: cone literals and retracted groups exist only
        // when events were actually absorbed; every check ran.
        prop_assert!(checked.checks >= 1);
        if checked.revisions.events == 0 {
            prop_assert_eq!(checked.revisions.retracted_groups, 0);
            prop_assert_eq!(checked.revisions.invalidated, 0);
            prop_assert_eq!(checked.revisions.reemitted_clauses, 0);
        }
        prop_assert!(checked.revisions.invalidated == 0 || checked.revisions.events > 0);
    }

    /// The unchecked production path (`Resolver::resolve_with_revisions`)
    /// agrees with the checked harness outcome on the same scripted
    /// timeline, never rebuilds, and stamps per-round revision telemetry
    /// consistent with the totals.
    #[test]
    fn production_revision_path_matches_checked_and_never_rebuilds(
        seed in 0u64..10_000,
        tuples in 2usize..14,
        domain in 2usize..10,
        density in 0u32..100,
        events in 1usize..6,
    ) {
        let Scenario { spec, truth } = scenario_from_raw(seed, tuples, domain, density, false);
        let timeline = |salt: u64| revision_timeline(&spec, &RevisionTimelineConfig {
            seed: seed.wrapping_mul(193).wrapping_add(salt),
            events,
            rounds: 3,
            ..Default::default()
        });
        let config = ResolutionConfig::default();

        let mut oracle = GroundTruthOracle::with_cap(truth.clone(), 1);
        let mut source = timeline(5);
        let outcome = Resolver::new(config).resolve_with_revisions(&spec, &mut oracle, &mut source);
        prop_assert_eq!(outcome.rebuilds, 0, "revisions must never rebuild the engine");

        let mut oracle2 = GroundTruthOracle::with_cap(truth.clone(), 1);
        let mut source2 = timeline(5);
        let checked = resolve_with_revisions_checked(&config, &spec, &mut oracle2, &mut source2)
            .map_err(|e| TestCaseError::fail(format!("replay diverged from scratch: {e}")))?;
        prop_assert_eq!(outcome.valid, checked.valid);
        prop_assert_eq!(outcome.complete, checked.complete);
        prop_assert_eq!(outcome.resolved, checked.resolved);
        prop_assert_eq!(outcome.interactions, checked.interactions);
        prop_assert_eq!(outcome.revisions.events, checked.revisions.events);

        // Per-round stamps sum to the totals.
        let round_events: usize = outcome.rounds.iter().map(|r| r.revision_events).sum();
        let round_cones: usize = outcome.rounds.iter().map(|r| r.revision_invalidated).sum();
        prop_assert_eq!(round_events, outcome.revisions.events);
        prop_assert_eq!(round_cones, outcome.revisions.invalidated);
    }

    /// Batched ≡ sequential ≡ scratch: every generated timeline, polled
    /// round by round under a sampled burst size, must leave a session
    /// that ingests each poll as **one batch** logically identical to a
    /// twin that absorbs the same events **one at a time** — and both
    /// equivalent to a from-scratch encode of the [`SpecMirror`]'s
    /// materialised spec after every round. Also pins the coalescing
    /// telemetry: a batch of one coalesces nothing, the union cone always
    /// dominates its largest member, and the batched epoch advances once
    /// per applied batch (not once per event).
    #[test]
    fn batched_ingestion_equals_sequential_and_scratch(
        seed in 0u64..10_000,
        tuples in 2usize..14,
        domain in 2usize..10,
        density in 0u32..100,
        events in 1usize..7,
        burst in 1usize..4,
    ) {
        let Scenario { spec, .. } = scenario_from_raw(seed, tuples, domain, density, false);
        let rounds = 4usize;
        let mut source = revision_timeline(&spec, &RevisionTimelineConfig {
            seed: seed.wrapping_mul(61).wrapping_add(29),
            events,
            rounds,
            burst,
            ..Default::default()
        });
        let config = ResolutionConfig::default();
        let mut batched = ResolutionSession::new_revisable(&config, &spec);
        let mut sequential = ResolutionSession::new_revisable(&config, &spec);
        let mut mirror = SpecMirror::new(&spec);

        let mut applied_batches = 0usize;
        let mut expected_saved = 0usize;
        for round in 0..rounds {
            let poll = source.poll(round, batched.current());
            let (report, applied) = batched
                .absorb_revision_batch(&poll)
                .map_err(|e| TestCaseError::fail(format!("batched ingestion rejected: {e:?}")))?;
            prop_assert_eq!(report.events, poll.len(), "every pushed event is accounted");
            if report.applied > 0 {
                applied_batches += 1;
                expected_saved += report.applied - 1;
                prop_assert!(
                    report.union_cone >= report.max_member_cone,
                    "the union cone dominates its largest member ({} < {})",
                    report.union_cone,
                    report.max_member_cone
                );
            } else {
                prop_assert_eq!(report.invalidated, 0, "an empty batch disturbs nothing");
            }

            // The sequential twin absorbs the identical poll one event at
            // a time; the mirror replays exactly the applied subset.
            for (rev, ok) in poll.iter().zip(&applied) {
                let twin_ok = sequential
                    .absorb_revision(rev)
                    .map_err(|e| TestCaseError::fail(format!("sequential twin rejected: {e:?}")))?;
                prop_assert_eq!(twin_ok, *ok, "batched and sequential validation agree");
                if *ok {
                    mirror.apply(rev);
                }
            }

            diff_logical_states(&batched.state(), &sequential.state())
                .map_err(|e| TestCaseError::fail(format!("round {round}: batched ≠ sequential: {e}")))?;
            check_session_against_scratch(&mut batched, &mirror)
                .map_err(|e| TestCaseError::fail(format!("round {round}: batched ≠ scratch: {e}")))?;
        }

        // Coalescing telemetry: the per-event twin never coalesces; the
        // batched run saves exactly one replay per coalesced event beyond
        // each batch's first; epochs advance per batch vs per event.
        let b = batched.revision_telemetry();
        let s = sequential.revision_telemetry();
        prop_assert_eq!(s.events_coalesced, 0, "a batch of one coalesces nothing");
        prop_assert_eq!(s.replays_saved, 0);
        prop_assert_eq!(b.events, s.events, "same applied event set");
        prop_assert_eq!(b.replays_saved, expected_saved);
        prop_assert_eq!(batched.epoch().0 as usize, applied_batches, "one epoch per applied batch");
        prop_assert_eq!(sequential.epoch().0 as usize, s.events, "one epoch per applied event");
    }
}
