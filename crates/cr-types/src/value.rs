//! Dynamically typed attribute values with the comparison semantics of the
//! currency model.
//!
//! Two distinct comparison relations live on [`Value`]:
//!
//! * [`Value::semantic_cmp`] — the *data* ordering used when evaluating
//!   currency-constraint predicates such as `t1[kids] < t2[kids]`. Nulls rank
//!   below every non-null value (Example 2(b) of the paper assumes
//!   `null < k` for any number `k`), numerics compare numerically across
//!   `Int`/`Float`, strings lexicographically, and values of incomparable
//!   types are simply not ordered (`None`).
//! * The derived [`Ord`] — an arbitrary but total *canonical* ordering used
//!   only to keep containers (sorted active domains, BTree keys)
//!   deterministic. It never leaks into constraint semantics.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single attribute value.
///
/// Cloning is cheap: strings are reference counted.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// SQL-style missing value. Ranked lowest in every currency order.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// Finite 64-bit float (NaN is rejected at construction).
    Float(OrderedF64),
    /// Interned string.
    Str(Arc<str>),
}

/// A finite `f64` with total equality/ordering, used inside [`Value::Float`].
#[derive(Clone, Copy, PartialEq)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wraps a finite float. Returns `None` for NaN (infinities are allowed —
    /// they are totally ordered).
    pub fn new(v: f64) -> Option<Self> {
        if v.is_nan() {
            None
        } else {
            // Normalise -0.0 so that Eq/Hash agree with ==.
            Some(OrderedF64(if v == 0.0 { 0.0 } else { v }))
        }
    }

    /// The wrapped float.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: NaN excluded by construction.
        self.0.partial_cmp(&other.0).expect("OrderedF64 is never NaN")
    }
}

impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Debug for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Builds an integer value.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Builds a float value, panicking on NaN (callers deal with clean data).
    pub fn float(v: f64) -> Self {
        Value::Float(OrderedF64::new(v).expect("attribute values must not be NaN"))
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The *semantic* comparison used by currency-constraint predicates.
    ///
    /// * `Null` is a bottom element: equal to itself, less than everything
    ///   else.
    /// * `Int`/`Float` compare numerically (cross-type included).
    /// * `Str` compares lexicographically.
    /// * Any other cross-type pair is unordered (`None`); a constraint
    ///   predicate over such a pair evaluates to `false`.
    pub fn semantic_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, Null) => Some(Ordering::Equal),
            (Null, _) => Some(Ordering::Less),
            (_, Null) => Some(Ordering::Greater),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => Some(a.cmp(b)),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(&b.get()),
            (Float(a), Int(b)) => a.get().partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            _ => None,
        }
    }

    /// Semantic equality: like `==` but identifies numerically equal
    /// `Int`/`Float` pairs.
    pub fn semantic_eq(&self, other: &Value) -> bool {
        matches!(self.semantic_cmp(other), Some(Ordering::Equal))
    }

    /// Parses a display-form token back into a value: `null` (case
    /// insensitive) → `Null`, otherwise integer, otherwise float, otherwise
    /// string. This matches [`Value::to_token`].
    pub fn parse_token(tok: &str) -> Value {
        let t = tok.trim();
        if t.eq_ignore_ascii_case("null") {
            Value::Null
        } else if let Ok(i) = t.parse::<i64>() {
            Value::Int(i)
        } else if let Ok(f) = t.parse::<f64>() {
            OrderedF64::new(f).map(Value::Float).unwrap_or_else(|| Value::str(t))
        } else {
            Value::str(t)
        }
    }

    /// Renders the value as a bare token (no quoting); inverse of
    /// [`Value::parse_token`] for well-formed data.
    pub fn to_token(&self) -> Cow<'_, str> {
        match self {
            Value::Null => Cow::Borrowed("null"),
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Float(f) => Cow::Owned(format!("{:?}", f.get())),
            Value::Str(s) => Cow::Borrowed(s),
        }
    }

    /// Rank used by the canonical (container) ordering.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Str(_) => 2,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Canonical total order for containers. Within numerics it agrees with
    /// the semantic order; ties between numerically equal `Int`/`Float` are
    /// broken by the variant so that `Ord` stays consistent with `Eq`.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Float(b)) => (*a as f64)
                .partial_cmp(&b.get())
                .unwrap_or(Ordering::Less)
                .then(Ordering::Less),
            (Float(a), Int(b)) => a
                .get()
                .partial_cmp(&(*b as f64))
                .unwrap_or(Ordering::Greater)
                .then(Ordering::Greater),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{:?}", x.get()),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{}", x.get()),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_bottom() {
        assert_eq!(Value::Null.semantic_cmp(&Value::Null), Some(Ordering::Equal));
        assert_eq!(Value::Null.semantic_cmp(&Value::int(0)), Some(Ordering::Less));
        assert_eq!(Value::Null.semantic_cmp(&Value::str("a")), Some(Ordering::Less));
        assert_eq!(Value::int(-5).semantic_cmp(&Value::Null), Some(Ordering::Greater));
    }

    #[test]
    fn numeric_cross_type_comparisons() {
        assert_eq!(Value::int(3).semantic_cmp(&Value::float(3.5)), Some(Ordering::Less));
        assert_eq!(Value::float(4.0).semantic_cmp(&Value::int(4)), Some(Ordering::Equal));
        assert!(Value::int(4).semantic_eq(&Value::float(4.0)));
        assert!(!Value::int(4).semantic_eq(&Value::float(4.1)));
    }

    #[test]
    fn incomparable_types_are_unordered() {
        assert_eq!(Value::str("10").semantic_cmp(&Value::int(10)), None);
        assert_eq!(Value::int(1).semantic_cmp(&Value::str("1")), None);
    }

    #[test]
    fn string_ordering_is_lexicographic() {
        assert_eq!(
            Value::str("retired").semantic_cmp(&Value::str("working")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn canonical_order_is_total_and_consistent_with_eq() {
        let vals = vec![
            Value::Null,
            Value::int(1),
            Value::int(2),
            Value::float(1.5),
            Value::str("a"),
            Value::str("b"),
        ];
        for a in &vals {
            for b in &vals {
                let ord = a.cmp(b);
                assert_eq!(ord == Ordering::Equal, a == b, "{a:?} vs {b:?}");
                assert_eq!(b.cmp(a), ord.reverse());
            }
        }
    }

    #[test]
    fn token_round_trip() {
        for v in [Value::Null, Value::int(42), Value::float(2.5), Value::str("NY")] {
            assert_eq!(Value::parse_token(&v.to_token()), v);
        }
    }

    #[test]
    fn nan_rejected() {
        assert!(OrderedF64::new(f64::NAN).is_none());
        assert!(OrderedF64::new(f64::INFINITY).is_some());
    }

    #[test]
    fn negative_zero_normalised() {
        assert_eq!(Value::float(-0.0), Value::float(0.0));
    }
}
