//! Chaos convergence properties for causally-stamped correction streams.
//!
//! Randomized scenarios × randomized causal timelines, delivered through
//! the fault-injecting chaos adapter, must resolve **exactly** like
//! canonical in-order delivery — which `resolve_causal_checked` itself
//! verifies against from-scratch re-resolution after every effective
//! batch. Two convergence regimes:
//!
//! 1. **Schedule-preserving chaos** (within-round reorder + duplicates)
//!    with interleaved interaction: every event still applies in its
//!    canonical round, so the full interactive trajectory — answers,
//!    re-opens included — matches canonical delivery.
//! 2. **Adversarial chaos** (cross-round delays = batch splits/merges,
//!    forcing frontier buffering) with drain-first interaction: the
//!    post-drain state is a pure function of the delivered event *set*,
//!    so arbitrary delivery schedules converge.
//!
//! A third property checks graceful degradation: corrupt events injected
//! from dedicated sources land in the quarantine log — all of them, only
//! them — without disturbing the clean stream's resolution.

use conflict_resolution::core::causal::{
    resolve_causal_checked, CausalReplayConfig, ScriptedCausalRevisions,
};
use conflict_resolution::core::framework::{GroundTruthOracle, ResolutionConfig};
use conflict_resolution::core::ingest::RevisionPolicy;
use conflict_resolution::data::chaos::{chaos, ChaosConfig};
use conflict_resolution::data::gen::{
    causal_timeline, scenario_from_raw, CausalTimelineConfig, Scenario,
};
use proptest::prelude::*;

fn timeline_cfg(seed: u64, events: usize, sources: usize) -> CausalTimelineConfig {
    CausalTimelineConfig {
        seed: seed.wrapping_mul(131).wrapping_add(7),
        sources,
        events,
        rounds: 3,
        // Seeded burst polls: rounds carry multi-event batches, so the
        // batched-ingestion path sees real coalescing under chaos.
        burst: 1 + (seed % 3) as usize,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Prong 1: schedule-preserving permutations (within-round reorder,
    /// duplicated deliveries) with interaction interleaved into the stream
    /// converge to the canonical run — same resolution, same validity,
    /// with every duplicate dropped and nothing quarantined.
    #[test]
    fn schedule_preserving_chaos_converges_interactively(
        seed in 0u64..10_000,
        tuples in 2usize..14,
        domain in 2usize..10,
        density in 0u32..100,
        events in 1usize..7,
        sources in 1usize..4,
        perm_seed in 0u64..1_000,
    ) {
        let Scenario { spec, truth } = scenario_from_raw(seed, tuples, domain, density, false);
        let timeline = causal_timeline(&spec, &timeline_cfg(seed, events, sources));
        let config = ResolutionConfig::default();
        let causal = CausalReplayConfig::default(); // strict, interactive

        let mut oracle = GroundTruthOracle::with_cap(truth.clone(), 1);
        let mut canonical = ScriptedCausalRevisions::new(timeline.clone());
        let base = resolve_causal_checked(&config, &spec, &mut oracle, &mut canonical, &causal)
            .map_err(|e| TestCaseError::fail(format!("canonical replay diverged: {e}")))?;
        // Canonical delivery is causally clean by construction.
        prop_assert_eq!(base.revisions.duplicates_dropped, 0);
        prop_assert_eq!(base.revisions.buffered, 0);
        prop_assert_eq!(base.revisions.quarantined, 0);

        let cfg = ChaosConfig { duplicates: 2, ..ChaosConfig::schedule_preserving(perm_seed) };
        let mut oracle2 = GroundTruthOracle::with_cap(truth.clone(), 1);
        let mut chaotic = chaos(&timeline, &spec, &cfg);
        let run = resolve_causal_checked(&config, &spec, &mut oracle2, &mut chaotic, &causal)
            .map_err(|e| TestCaseError::fail(format!("chaotic replay diverged: {e}")))?;

        prop_assert_eq!(&run.resolved, &base.resolved, "resolution must be permutation-independent");
        prop_assert_eq!(run.valid, base.valid);
        prop_assert_eq!(run.complete, base.complete);
        prop_assert_eq!(run.interactions, base.interactions);
        prop_assert_eq!(run.revisions.reopened, base.revisions.reopened);
        if !timeline.is_empty() {
            prop_assert_eq!(run.revisions.duplicates_dropped, cfg.duplicates);
        }
        prop_assert_eq!(run.revisions.quarantined, 0, "clean chaos must quarantine nothing");
    }

    /// Prong 2: fully adversarial schedules (delays split and merge
    /// batches; successors overtake predecessors and must buffer at the
    /// frontier) converge under drain-first interaction, where the
    /// post-drain state depends only on the delivered event set.
    #[test]
    fn adversarial_chaos_converges_drain_first(
        seed in 0u64..10_000,
        tuples in 2usize..14,
        domain in 2usize..10,
        density in 0u32..100,
        events in 2usize..8,
        sources in 1usize..4,
        chaos_seed in 0u64..1_000,
        max_batch in 0usize..4,
    ) {
        let Scenario { spec, truth } = scenario_from_raw(seed, tuples, domain, density, false);
        let timeline = causal_timeline(&spec, &timeline_cfg(seed, events, sources));
        let config = ResolutionConfig::default();
        let causal = CausalReplayConfig {
            policy: RevisionPolicy::Reject,
            interact_while_streaming: false,
            max_batch,
        };

        let mut oracle = GroundTruthOracle::with_cap(truth.clone(), 1);
        let mut canonical = ScriptedCausalRevisions::new(timeline.clone());
        let base = resolve_causal_checked(&config, &spec, &mut oracle, &mut canonical, &causal)
            .map_err(|e| TestCaseError::fail(format!("canonical replay diverged: {e}")))?;

        let mut oracle2 = GroundTruthOracle::with_cap(truth.clone(), 1);
        let mut chaotic = chaos(&timeline, &spec, &ChaosConfig::adversarial(chaos_seed));
        let run = resolve_causal_checked(&config, &spec, &mut oracle2, &mut chaotic, &causal)
            .map_err(|e| TestCaseError::fail(format!("adversarial replay diverged: {e}")))?;

        prop_assert_eq!(&run.resolved, &base.resolved, "drain-first resolution is schedule-independent");
        prop_assert_eq!(run.valid, base.valid);
        prop_assert_eq!(run.complete, base.complete);
        prop_assert_eq!(run.revisions.events, base.revisions.events, "same effective event set");
        prop_assert_eq!(run.revisions.quarantined, 0);
    }

    /// Graceful degradation: corrupt events injected mid-stream are
    /// quarantined — exactly the injected count — and the surviving clean
    /// stream still converges to the canonical resolution.
    #[test]
    fn corrupt_events_quarantine_without_disturbing_convergence(
        seed in 0u64..10_000,
        tuples in 2usize..12,
        domain in 2usize..8,
        density in 0u32..100,
        events in 1usize..6,
        corrupt in 1usize..4,
        chaos_seed in 0u64..1_000,
        max_batch in 0usize..4,
    ) {
        let Scenario { spec, truth } = scenario_from_raw(seed, tuples, domain, density, false);
        let timeline = causal_timeline(&spec, &timeline_cfg(seed, events, 2));
        let config = ResolutionConfig::default();
        let causal = CausalReplayConfig {
            policy: RevisionPolicy::Quarantine,
            interact_while_streaming: false,
            max_batch,
        };

        let mut oracle = GroundTruthOracle::with_cap(truth.clone(), 1);
        let mut canonical = ScriptedCausalRevisions::new(timeline.clone());
        let base = resolve_causal_checked(&config, &spec, &mut oracle, &mut canonical, &causal)
            .map_err(|e| TestCaseError::fail(format!("canonical replay diverged: {e}")))?;
        prop_assert_eq!(base.revisions.quarantined, 0, "clean canonical run quarantines nothing");

        let cfg = ChaosConfig { corrupt, ..ChaosConfig::adversarial(chaos_seed) };
        let mut oracle2 = GroundTruthOracle::with_cap(truth.clone(), 1);
        let mut chaotic = chaos(&timeline, &spec, &cfg);
        let run = resolve_causal_checked(&config, &spec, &mut oracle2, &mut chaotic, &causal)
            .map_err(|e| TestCaseError::fail(format!("corrupt replay diverged: {e}")))?;

        prop_assert_eq!(run.revisions.quarantined, corrupt, "all corrupt events, only corrupt events");
        prop_assert_eq!(run.quarantined.len(), corrupt);
        prop_assert_eq!(&run.resolved, &base.resolved, "quarantining must not disturb resolution");
        prop_assert_eq!(run.valid, base.valid);
    }
}
