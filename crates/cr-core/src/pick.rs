//! The traditional `Pick` baseline (Section VI).
//!
//! `Pick` resolves each attribute by randomly taking one of its values \[4\].
//! As in the paper, the baseline is *favoured*: it may discard values that
//! are provably stale according to the comparison-only currency constraints
//! (those whose premise `ω` contains no order predicates, e.g. ϕ1–ϕ4), and
//! picks uniformly among the remaining maximal values.

use cr_types::Value;

use crate::spec::Specification;
use crate::truevalue::TrueValues;

/// Deterministic SplitMix64 for seeded "random" picks without an external
/// RNG dependency.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Runs the favoured `Pick` baseline on `spec`, returning one value per
/// attribute.
pub fn pick_baseline(spec: &Specification, seed: u64) -> TrueValues {
    let mut rng = SplitMix64(seed ^ 0xD1B54A32D192ED03);
    let entity = spec.entity();
    let schema = spec.schema();
    let mut out = Vec::with_capacity(schema.arity());

    for attr in schema.attr_ids() {
        let dom = entity.active_domain(attr);
        if dom.is_empty() {
            out.push(Some(Value::Null));
            continue;
        }
        if dom.len() == 1 {
            out.push(Some(dom[0].clone()));
            continue;
        }
        // Value-level orders derivable from comparison-only constraints.
        let mut dominated = vec![false; dom.len()];
        for c in spec.sigma() {
            if c.conclusion_attr() != attr || !c.is_comparison_only() {
                continue;
            }
            for (i1, t1) in entity.iter() {
                for (i2, t2) in entity.iter() {
                    if i1 == i2 {
                        continue;
                    }
                    if !c.comparisons_hold(t1, t2) {
                        continue;
                    }
                    let w1 = t1.get(attr);
                    let w2 = t2.get(attr);
                    if w1 == w2 || w1.is_null() {
                        continue;
                    }
                    if let Some(pos) = dom.iter().position(|v| v == w1) {
                        dominated[pos] = true;
                    }
                }
            }
        }
        let maximal: Vec<&Value> = dom
            .iter()
            .zip(&dominated)
            .filter(|(_, d)| !**d)
            .map(|(v, _)| v)
            .collect();
        let pool: &[&Value] = if maximal.is_empty() {
            // Constraints dominated everything (cyclic data): fall back to
            // the full domain, like a plain random pick.
            &dom.iter().collect::<Vec<_>>()[..]
        } else {
            &maximal[..]
        };
        out.push(Some(pool[rng.pick(pool.len())].clone()));
    }
    TrueValues::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_constraints::parser::parse_currency_file;
    use cr_types::{AttrId, EntityInstance, Schema, Tuple};

    fn spec() -> Specification {
        let s = Schema::new("p", ["status", "kids", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("working"), Value::int(0), Value::str("NY")]),
                Tuple::of([Value::str("retired"), Value::int(3), Value::str("LA")]),
            ],
        )
        .unwrap();
        let sigma = parse_currency_file(
            &s,
            r#"
            t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2
            t1[kids] < t2[kids] -> t1 <[kids] t2
            "#,
        )
        .unwrap();
        Specification::without_orders(e, sigma, vec![])
    }

    #[test]
    fn comparison_constraints_prune_stale_values() {
        let sp = spec();
        let schema = sp.schema().clone();
        for seed in 0..20 {
            let picked = pick_baseline(&sp, seed);
            // status and kids are pinned by the comparison-only constraints.
            assert_eq!(
                picked.get(schema.attr_id("status").unwrap()),
                Some(&Value::str("retired"))
            );
            assert_eq!(picked.get(schema.attr_id("kids").unwrap()), Some(&Value::int(3)));
        }
    }

    #[test]
    fn unconstrained_attribute_varies_with_seed() {
        let sp = spec();
        let city = sp.schema().attr_id("city").unwrap();
        let mut seen = std::collections::HashSet::new();
        for seed in 0..50 {
            seen.insert(pick_baseline(&sp, seed).get(city).unwrap().clone());
        }
        assert_eq!(seen.len(), 2, "both cities should appear across seeds");
    }

    #[test]
    fn pick_is_deterministic_per_seed() {
        let sp = spec();
        assert_eq!(
            pick_baseline(&sp, 7).as_slice(),
            pick_baseline(&sp, 7).as_slice()
        );
    }

    #[test]
    fn single_value_and_empty_attrs() {
        let s = Schema::new("p", ["a", "b"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![
                Tuple::of([Value::str("only"), Value::Null]),
                Tuple::of([Value::str("only"), Value::Null]),
            ],
        )
        .unwrap();
        let sp = Specification::without_orders(e, vec![], vec![]);
        let picked = pick_baseline(&sp, 1);
        assert_eq!(picked.get(AttrId(0)), Some(&Value::str("only")));
        assert_eq!(picked.get(AttrId(1)), Some(&Value::Null));
    }
}
