/root/repo/target/release/examples/quickstart-56ed3bd6baa767f6.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-56ed3bd6baa767f6: examples/quickstart.rs

examples/quickstart.rs:
