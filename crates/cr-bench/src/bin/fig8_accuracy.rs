//! Fig. 8(f)–(h), (j)–(l), (n)–(p): F-measure while varying the available
//! constraints — |Σ|+|Γ| together, |Σ| alone, |Γ| alone — at 0, 1, 2 (and 3
//! for Person) interaction rounds, with the `Pick` baseline on the combined
//! panels.
//!
//! Paper reference values at 100% constraints: Σ+Γ 0.930/0.958/0.903,
//! Σ-only 0.830/0.907/0.826, Γ-only 0.210/0.741/0.234 for NBA/CAREER/Person;
//! Pick trails the unified method by 201% on average; more constraints ⇒
//! higher F; the top two interaction curves overlap.
//!
//! Run: `cargo run --release -p cr-bench --bin fig8_accuracy [--entities N]`.

use cr_bench::{arg_entities, arg_seed, print_table, run_dataset, run_pick, ConstraintMode};
use cr_data::Dataset;

fn sweep(ds: &Dataset, mode: ConstraintMode, rounds: &[usize], seed: u64) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for frac in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut row = vec![format!("{:.0}%", frac * 100.0)];
        for &k in rounds {
            let (acc, _) = run_dataset(ds, mode, frac, k, seed);
            row.push(format!("{:.3}", acc.f_measure().f_measure));
        }
        if mode == ConstraintMode::Both {
            let pick = run_pick(ds, seed);
            row.push(format!("{:.3}", pick.f_measure().f_measure));
        }
        rows.push(row);
    }
    rows
}

fn main() {
    let n = arg_entities(40);
    let seed = arg_seed(0xACC);
    let datasets = [
        (cr_bench::quick::nba(n, seed), vec![0usize, 1, 2], ["(f)", "(g)", "(h)"]),
        (cr_bench::quick::career(n.min(65), seed), vec![0, 1, 2], ["(j)", "(k)", "(l)"]),
        (cr_bench::quick::person(n, seed), vec![0, 1, 2, 3], ["(n)", "(o)", "(p)"]),
    ];

    for (ds, rounds, panels) in &datasets {
        let round_headers: Vec<String> =
            rounds.iter().map(|k| format!("{k}-interaction")).collect();
        let mut header: Vec<&str> = vec!["% constraints"];
        header.extend(round_headers.iter().map(String::as_str));

        let mut both_header = header.clone();
        both_header.push("Pick");
        print_table(
            &format!("Fig. 8{} — {}: F-measure varying |Σ|+|Γ|", panels[0], ds.name),
            &both_header,
            &sweep(ds, ConstraintMode::Both, rounds, seed),
        );
        print_table(
            &format!("Fig. 8{} — {}: F-measure varying |Σ| (Γ = ∅)", panels[1], ds.name),
            &header,
            &sweep(ds, ConstraintMode::SigmaOnly, rounds, seed),
        );
        print_table(
            &format!("Fig. 8{} — {}: F-measure varying |Γ| (Σ = ∅)", panels[2], ds.name),
            &header,
            &sweep(ds, ConstraintMode::GammaOnly, rounds, seed),
        );
    }
    println!("\npaper reference at 100%: Σ+Γ 0.930 / 0.958 / 0.903,");
    println!("Σ-only 0.830 / 0.907 / 0.826, Γ-only 0.210 / 0.741 / 0.234 (NBA/CAREER/Person)");
}
