//! CNF formula builder.

use crate::lit::{Lit, Var};

/// A CNF formula under construction: a variable counter plus a clause list.
///
/// `Cnf` is the interchange format between the encoder (`cr-core`), the CDCL
/// [`crate::Solver`], the root-level [`crate::UnitPropagator`] and the MaxSAT
/// solvers. Clauses are stored exactly as added; normalisation (duplicate and
/// tautology removal) happens when a solver ingests the formula.
#[derive(Clone, Default, Debug)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty formula.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn ensure_vars(&mut self, n: u32) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total number of literal occurrences (the `|Φ(Se)|` size measure used
    /// in the paper's complexity analysis).
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }

    /// Adds a clause (a disjunction of literals). An empty clause makes the
    /// formula trivially unsatisfiable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            self.ensure_vars(l.var().0 + 1);
        }
        self.clauses.push(clause);
    }

    /// Adds the implication `premises → conclusion` as the clause
    /// `¬p1 ∨ … ∨ ¬pk ∨ conclusion`. This is exactly the `ConvertToCNF`
    /// rewrite of Section V-A.
    pub fn add_implication(&mut self, premises: &[Lit], conclusion: Lit) {
        let mut clause: Vec<Lit> = premises.iter().map(|p| p.negate()).collect();
        clause.push(conclusion);
        self.add_clause(clause);
    }

    /// Adds `premises → false`, i.e. the clause `¬p1 ∨ … ∨ ¬pk`.
    pub fn add_negated_conjunction(&mut self, premises: &[Lit]) {
        self.add_clause(premises.iter().map(|p| p.negate()).collect::<Vec<_>>());
    }

    /// The clause list.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Evaluates the formula under a total assignment (indexed by variable).
    /// Used by tests and by the MaxSAT local search.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().index()] == l.is_positive())
        })
    }

    /// Counts clauses satisfied under a total assignment.
    pub fn count_satisfied(&self, assignment: &[bool]) -> usize {
        self.clauses
            .iter()
            .filter(|c| {
                c.iter()
                    .any(|l| assignment[l.var().index()] == l.is_positive())
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_allocation_and_counts() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.positive(), b.negative()]);
        cnf.add_clause([b.positive()]);
        assert_eq!(cnf.num_vars(), 2);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.num_literals(), 3);
    }

    #[test]
    fn add_clause_grows_vars() {
        let mut cnf = Cnf::new();
        cnf.add_clause([Var(9).positive()]);
        assert_eq!(cnf.num_vars(), 10);
    }

    #[test]
    fn implication_encoding() {
        let mut cnf = Cnf::new();
        let (a, b, c) = (cnf.new_var(), cnf.new_var(), cnf.new_var());
        cnf.add_implication(&[a.positive(), b.positive()], c.positive());
        assert_eq!(
            cnf.clauses()[0],
            vec![a.negative(), b.negative(), c.positive()]
        );
        cnf.add_negated_conjunction(&[a.positive()]);
        assert_eq!(cnf.clauses()[1], vec![a.negative()]);
    }

    #[test]
    fn eval_and_count() {
        let mut cnf = Cnf::new();
        let (a, b) = (cnf.new_var(), cnf.new_var());
        cnf.add_clause([a.positive(), b.positive()]);
        cnf.add_clause([a.negative()]);
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, false]));
        assert_eq!(cnf.count_satisfied(&[true, false]), 1);
    }
}
