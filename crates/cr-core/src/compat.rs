//! Compatibility graphs of derivation rules (Section V-C.1).

use cr_clique::Graph;

use crate::rules::DerivationRule;

/// Builds the compatibility graph `G(N, E)` of a rule set: nodes are rules;
/// an edge joins `x` and `y` iff they conclude *different* attributes
/// (`Bx ≠ By`) and agree on the values of their common attributes
/// (`Px[Xxy] = Py[Xxy]` where `Xxy = (Xx ∪ Bx) ∩ (Xy ∪ By)`).
///
/// Each clique is a set of rules that can fire simultaneously.
pub fn compatibility_graph(rules: &[DerivationRule]) -> Graph {
    let mut g = Graph::new(rules.len());
    for i in 0..rules.len() {
        for j in i + 1..rules.len() {
            if compatible(&rules[i], &rules[j]) {
                g.add_edge(i, j);
            }
        }
    }
    g
}

/// The edge predicate described above.
pub fn compatible(x: &DerivationRule, y: &DerivationRule) -> bool {
    if x.rhs.0 == y.rhs.0 {
        return false;
    }
    // Compare asserted values on all attributes both rules mention.
    let attrs = x
        .lhs
        .iter()
        .map(|(a, _)| *a)
        .chain(std::iter::once(x.rhs.0));
    for a in attrs {
        if let (Some(vx), Some(vy)) = (x.asserted(a), y.asserted(a)) {
            if vx != vy {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_types::{AttrId, ValueId};

    fn rule(lhs: &[(u16, u32)], rhs: (u16, u32)) -> DerivationRule {
        DerivationRule {
            lhs: lhs.iter().map(|&(a, v)| (AttrId(a), ValueId(v))).collect(),
            rhs: (AttrId(rhs.0), ValueId(rhs.1)),
        }
    }

    /// Recreates the shape of Fig. 6: n1..n5 form a clique via the shared
    /// `status=retired` / `AC=212` values; n5 and n7 conflict on AC.
    #[test]
    fn example_11_edges() {
        // attrs: 0=status 1=job 2=AC 3=zip 4=city 5=county
        // status values: 0=retired 1=unemployed; AC: 0=212 1=312 ...
        let n1 = rule(&[(0, 0)], (1, 0)); // status=retired → job=veteran
        let n2 = rule(&[(0, 0)], (2, 0)); // status=retired → AC=212
        let n5 = rule(&[(2, 0)], (4, 0)); // AC=212 → city=NY
        let n7 = rule(&[(0, 1)], (2, 1)); // status=unemployed → AC=312
        let rules = vec![n1, n2, n5, n7];
        let g = compatibility_graph(&rules);
        assert!(g.has_edge(0, 1)); // n1-n2 share status=retired
        assert!(g.has_edge(1, 2)); // n2-n5 share AC=212
        assert!(g.has_edge(0, 2)); // n1-n5 no common attrs
        assert!(!g.has_edge(2, 3)); // n5-n7 conflict on AC (212 vs 312)
        assert!(!g.has_edge(0, 3)); // n1-n7 conflict on status
        assert!(!g.has_edge(1, 3)); // n2-n7 same RHS attr (AC)
    }

    #[test]
    fn same_rhs_attribute_never_connects() {
        let a = rule(&[], (1, 0));
        let b = rule(&[], (1, 0));
        assert!(!compatible(&a, &b));
    }

    #[test]
    fn lhs_rhs_cross_agreement_counts() {
        // x concludes (2, 7); y assumes (2, 7): compatible.
        let x = rule(&[(0, 1)], (2, 7));
        let y = rule(&[(2, 7)], (3, 0));
        assert!(compatible(&x, &y));
        // y' assumes (2, 8): incompatible.
        let y2 = rule(&[(2, 8)], (3, 0));
        assert!(!compatible(&x, &y2));
    }
}
