//! Relation schemas `R = (A1, ..., An)`.

use std::fmt;
use std::sync::Arc;

use crate::error::TypesError;

/// Index of an attribute within its [`Schema`] (dense, zero based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The attribute position as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A named attribute of a relation schema.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Attribute {
    name: String,
}

impl Attribute {
    /// Creates an attribute with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Attribute { name: name.into() }
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A relation schema: an ordered list of uniquely named attributes.
///
/// Schemas are shared via [`Arc`] between tuples, entity instances and
/// constraint sets; equality is structural.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schema {
    name: String,
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema from a relation name and attribute names.
    ///
    /// # Errors
    /// Returns [`TypesError::DuplicateAttribute`] if two attributes share a
    /// name, and [`TypesError::EmptySchema`] for an empty attribute list.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(
        name: impl Into<String>,
        attrs: I,
    ) -> Result<Arc<Self>, TypesError> {
        let attrs: Vec<Attribute> = attrs.into_iter().map(|a| Attribute::new(a.into())).collect();
        if attrs.is_empty() {
            return Err(TypesError::EmptySchema);
        }
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name() == a.name()) {
                return Err(TypesError::DuplicateAttribute(a.name().to_string()));
            }
        }
        if attrs.len() > u16::MAX as usize {
            return Err(TypesError::TooManyAttributes(attrs.len()));
        }
        Ok(Arc::new(Schema { name: name.into(), attrs }))
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes, `|R|`.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The attribute at position `id`.
    pub fn attribute(&self, id: AttrId) -> &Attribute {
        &self.attrs[id.index()]
    }

    /// The name of the attribute at position `id`.
    pub fn attr_name(&self, id: AttrId) -> &str {
        self.attrs[id.index()].name()
    }

    /// Looks up an attribute by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attrs
            .iter()
            .position(|a| a.name() == name)
            .map(|i| AttrId(i as u16))
    }

    /// Like [`Schema::attr_id`] but returns an error naming the attribute.
    pub fn require_attr(&self, name: &str) -> Result<AttrId, TypesError> {
        self.attr_id(name)
            .ok_or_else(|| TypesError::UnknownAttribute(name.to_string()))
    }

    /// Iterates over `(AttrId, &Attribute)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId(i as u16), a))
    }

    /// Iterates over all attribute ids in schema order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + 'static {
        (0..self.attrs.len() as u16).map(AttrId)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a.name())?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_looks_up() {
        let s = Schema::new("person", ["name", "status", "kids"]).unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr_id("status"), Some(AttrId(1)));
        assert_eq!(s.attr_name(AttrId(2)), "kids");
        assert!(s.attr_id("missing").is_none());
        assert!(s.require_attr("missing").is_err());
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        assert!(Schema::new("r", ["a", "a"]).is_err());
        assert!(Schema::new("r", Vec::<String>::new()).is_err());
    }

    #[test]
    fn displays_compactly() {
        let s = Schema::new("r", ["a", "b"]).unwrap();
        assert_eq!(s.to_string(), "r(a, b)");
    }

    #[test]
    fn attr_ids_cover_schema() {
        let s = Schema::new("r", ["a", "b", "c"]).unwrap();
        let ids: Vec<_> = s.attr_ids().collect();
        assert_eq!(ids, vec![AttrId(0), AttrId(1), AttrId(2)]);
    }
}
