//! Shared display helpers.

use std::fmt;

use cr_types::Value;

/// Writes a constant in parser-compatible form: strings are quoted with
/// `"` and `\\` escapes so `Display → parse` round trips.
pub(crate) fn write_constant(f: &mut fmt::Formatter<'_>, v: &Value) -> fmt::Result {
    match v {
        Value::Str(s) => {
            write!(f, "\"")?;
            for c in s.chars() {
                if c == '"' || c == '\\' {
                    write!(f, "\\")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, "\"")
        }
        other => write!(f, "{other}"),
    }
}
