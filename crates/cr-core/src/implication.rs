//! The implication problem (Section IV) and invalidity explanation.
//!
//! *Implication*: given a valid `Se` and a partial temporal order `Ot`,
//! decide `Se |= Ot` — every valid completion of `Se` contains `Ot`. The
//! problem is coNP-complete (Theorem 2); here it is decided exactly on the
//! encoded instance with one SAT probe per pair of `Ot`.
//!
//! *Explanation*: when `IsValid` rejects a specification, the framework's
//! "No" branch (Fig. 4) sends users back to revise their input. To make
//! that actionable, [`explain_invalidity`] shrinks `(Σ, Γ, base orders)` to
//! a minimal conflicting core by deletion-based minimisation — every
//! element of the core is necessary for the conflict.

use cr_sat::SolveResult;
use cr_types::{AttrId, TupleId};

use crate::encode::{EncodeOptions, EncodedSpec};
use crate::orders::PartialOrders;
use crate::spec::Specification;

/// Decides `Se |= Ot`: does every valid completion order `t1 ≺_Ai t2` for
/// each recorded pair? Pairs over equal or null values are the reflexive /
/// vacuous part of `⪯` and count as implied.
///
/// Returns `None` when `Se` itself is invalid (implication is then
/// ill-posed: the paper defines it for valid specifications only).
pub fn implies(spec: &Specification, ot: &PartialOrders) -> Option<bool> {
    let enc = EncodedSpec::encode(spec);
    let mut solver = enc.fresh_solver();
    if solver.solve() == SolveResult::Unsat {
        return None;
    }
    let entity = spec.entity();
    for attr in spec.schema().attr_ids() {
        for (t1, t2) in ot.pairs(attr) {
            let v1 = entity.tuple(t1).get(attr);
            let v2 = entity.tuple(t2).get(attr);
            if v1 == v2 || v1.is_null() || v2.is_null() {
                continue;
            }
            let (Some(lo), Some(hi)) = (enc.value_id(attr, v1), enc.value_id(attr, v2)) else {
                return Some(false); // value unknown to the instance
            };
            let Some(var) = enc.var_of(attr, lo, hi) else {
                return Some(false);
            };
            // Se |= (lo ≺ hi) iff Φ(Se) ∧ ¬x is unsatisfiable (Lemma 6).
            if solver.solve_with_assumptions(&[var.negative()]) == SolveResult::Sat {
                return Some(false);
            }
        }
    }
    Some(true)
}

/// One element of an invalidity explanation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConflictPart {
    /// The currency constraint `sigma[index]` participates in the conflict.
    Currency {
        /// Index into `Specification::sigma`.
        index: usize,
    },
    /// The constant CFD `gamma[index]` participates in the conflict.
    Cfd {
        /// Index into `Specification::gamma`.
        index: usize,
    },
    /// The base-order pair `t1 ≺_attr t2` participates in the conflict.
    BaseOrder {
        /// Attribute of the pair.
        attr: AttrId,
        /// Less-current tuple.
        t1: TupleId,
        /// More-current tuple.
        t2: TupleId,
    },
}

/// Shrinks an *invalid* specification to a minimal conflicting core of
/// constraints and base-order pairs: removing any single element of the
/// returned set makes the remainder satisfiable.
///
/// Returns `None` if the specification is actually valid. Deletion-based
/// minimisation costs one `IsValid` call per candidate element — fine at
/// entity-instance scale.
pub fn explain_invalidity(spec: &Specification) -> Option<Vec<ConflictPart>> {
    if is_sat(spec) {
        return None;
    }
    // Work set: all candidate parts.
    let mut parts: Vec<ConflictPart> = Vec::new();
    for i in 0..spec.sigma().len() {
        parts.push(ConflictPart::Currency { index: i });
    }
    for i in 0..spec.gamma().len() {
        parts.push(ConflictPart::Cfd { index: i });
    }
    for attr in spec.schema().attr_ids() {
        for (t1, t2) in spec.orders().pairs(attr) {
            parts.push(ConflictPart::BaseOrder { attr, t1, t2 });
        }
    }
    // Deletion filter: drop a part; if still unsat, it is unnecessary.
    let mut keep: Vec<bool> = vec![true; parts.len()];
    for i in 0..parts.len() {
        keep[i] = false;
        let candidate = rebuild(spec, &parts, &keep);
        if is_sat(&candidate) {
            keep[i] = true; // needed for the conflict
        }
    }
    Some(
        parts
            .into_iter()
            .zip(keep)
            .filter(|(_, k)| *k)
            .map(|(p, _)| p)
            .collect(),
    )
}

fn is_sat(spec: &Specification) -> bool {
    let enc = EncodedSpec::encode_with(spec, EncodeOptions::default());
    let mut solver = enc.fresh_solver();
    solver.solve() == SolveResult::Sat
}

/// Rebuilds a specification keeping only the parts flagged in `keep`.
fn rebuild(spec: &Specification, parts: &[ConflictPart], keep: &[bool]) -> Specification {
    let mut sigma = Vec::new();
    let mut gamma = Vec::new();
    let mut orders = PartialOrders::empty(spec.schema().arity());
    for (part, &k) in parts.iter().zip(keep) {
        if !k {
            continue;
        }
        match part {
            ConflictPart::Currency { index } => sigma.push(spec.sigma()[*index].clone()),
            ConflictPart::Cfd { index } => gamma.push(spec.gamma()[*index].clone()),
            ConflictPart::BaseOrder { attr, t1, t2 } => orders.add(*attr, *t1, *t2),
        }
    }
    Specification::new(spec.entity().clone(), orders, sigma, gamma)
}

/// Renders an explanation with constraint text for display.
pub fn render_explanation(spec: &Specification, parts: &[ConflictPart]) -> Vec<String> {
    parts
        .iter()
        .map(|p| match p {
            ConflictPart::Currency { index } => format!("currency: {}", spec.sigma()[*index]),
            ConflictPart::Cfd { index } => format!("cfd: {}", spec.gamma()[*index]),
            ConflictPart::BaseOrder { attr, t1, t2 } => format!(
                "order: r{} <[{}] r{}",
                t1.0,
                spec.schema().attr_name(*attr),
                t2.0
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_constraints::parser::{parse_cfd_file, parse_currency_file};
    use cr_types::{EntityInstance, Schema, Tuple, Value};

    fn base_entity() -> (std::sync::Arc<Schema>, EntityInstance) {
        let s = Schema::new("p", ["status", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("a"), Value::str("NY")]),
                Tuple::of([Value::str("b"), Value::str("LA")]),
            ],
        )
        .unwrap();
        (s, e)
    }

    #[test]
    fn implication_of_derived_and_underived_orders() {
        let (s, e) = base_entity();
        let sigma = parse_currency_file(
            &s,
            r#"t1[status] = "a" && t2[status] = "b" -> t1 <[status] t2"#,
        )
        .unwrap();
        let spec = Specification::without_orders(e, sigma, vec![]);
        let status = s.attr_id("status").unwrap();
        let city = s.attr_id("city").unwrap();

        let mut implied = PartialOrders::empty(2);
        implied.add(status, TupleId(0), TupleId(1));
        assert_eq!(implies(&spec, &implied), Some(true));

        let mut not_implied = PartialOrders::empty(2);
        not_implied.add(city, TupleId(0), TupleId(1));
        assert_eq!(implies(&spec, &not_implied), Some(false));

        // The reverse status order is refuted, hence not implied.
        let mut reversed = PartialOrders::empty(2);
        reversed.add(status, TupleId(1), TupleId(0));
        assert_eq!(implies(&spec, &reversed), Some(false));

        // Empty Ot is trivially implied.
        assert_eq!(implies(&spec, &PartialOrders::empty(2)), Some(true));
    }

    #[test]
    fn implication_is_none_for_invalid_specs() {
        let (s, e) = base_entity();
        let sigma = parse_currency_file(
            &s,
            "t1[status] = \"a\" && t2[status] = \"b\" -> t1 <[status] t2\n\
             t1[status] = \"b\" && t2[status] = \"a\" -> t1 <[status] t2",
        )
        .unwrap();
        let spec = Specification::without_orders(e, sigma, vec![]);
        assert_eq!(implies(&spec, &PartialOrders::empty(2)), None);
    }

    #[test]
    fn explanation_is_minimal_core() {
        let (s, e) = base_entity();
        // Three constraints; only the pair (0, 1) conflicts. Constraint 2 is
        // irrelevant noise that must not appear in the core.
        let sigma = parse_currency_file(
            &s,
            "c0: t1[status] = \"a\" && t2[status] = \"b\" -> t1 <[status] t2\n\
             c1: t1[status] = \"b\" && t2[status] = \"a\" -> t1 <[status] t2\n\
             c2: t1[city] = \"NY\" && t2[city] = \"LA\" -> t1 <[city] t2",
        )
        .unwrap();
        let spec = Specification::without_orders(e, sigma, vec![]);
        let core = explain_invalidity(&spec).expect("invalid spec");
        assert_eq!(
            core,
            vec![ConflictPart::Currency { index: 0 }, ConflictPart::Currency { index: 1 }]
        );
        let rendered = render_explanation(&spec, &core);
        assert!(rendered[0].starts_with("currency: c0"));
    }

    #[test]
    fn explanation_spans_orders_and_cfds() {
        let s = Schema::new("p", ["AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::int(212), Value::str("NY")]),
                Tuple::of([Value::int(213), Value::str("LA")]),
            ],
        )
        .unwrap();
        // Base order forces 213 on top; its CFD demands LA; a second base
        // order forces NY above LA. Conflict needs all three.
        let gamma = parse_cfd_file(&s, "AC = 213 -> city = \"LA\"").unwrap();
        let mut orders = PartialOrders::empty(2);
        orders.add(s.attr_id("AC").unwrap(), TupleId(0), TupleId(1));
        orders.add(s.attr_id("city").unwrap(), TupleId(1), TupleId(0));
        let spec = Specification::new(e, orders, vec![], gamma);
        let core = explain_invalidity(&spec).expect("invalid");
        assert_eq!(core.len(), 3);
        assert!(core.iter().any(|p| matches!(p, ConflictPart::Cfd { .. })));
        assert_eq!(
            core.iter()
                .filter(|p| matches!(p, ConflictPart::BaseOrder { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn valid_specs_have_no_explanation() {
        let (_, e) = base_entity();
        let spec = Specification::without_orders(e, vec![], vec![]);
        assert!(explain_invalidity(&spec).is_none());
    }
}
