//! Entity instances: sets of tuples pertaining to one real-world entity.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::TypesError;
use crate::interner::{ValueTable, NULL_VALUE_ID};
use crate::schema::{AttrId, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// Index of a tuple within an [`EntityInstance`] (dense, zero based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TupleId(pub u32);

impl TupleId {
    /// The tuple position as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An entity instance `Ie`: tuples of one schema, all describing the same
/// real-world entity (typically produced upstream by record linkage).
///
/// Entity instances are small relative to a database — the NBA dataset in the
/// paper averages 27 tuples per entity — so the representation favours simple
/// dense storage and cheap iteration.
///
/// Alongside the tuples, every instance carries a contiguous row-major
/// matrix of **instance-local dense value ids** (`dense[tid * arity +
/// attr]`, id [`NULL_VALUE_ID`] = null): two cells carry the same id iff
/// they carry the same value. The SAT encoder's instantiation and
/// projection grouping run entirely on these ids — integer compares over
/// flat buffers sized by the *entity's* distinct-value count — instead of
/// hashing full [`Value`]s per specification. A dataset-shared
/// [`ValueTable`] (see [`EntityInstance::with_table`]) canonicalises the
/// stored values so equal strings share one allocation across the whole
/// dataset and are hashed once per dataset, not once per entity.
#[derive(Clone)]
pub struct EntityInstance {
    schema: Arc<Schema>,
    tuples: Vec<Tuple>,
    /// `tuples.len() × arity` instance-local value ids, row-major.
    dense: Vec<u32>,
    /// Local id → value; `values_by_id[0]` is always `Null`.
    values_by_id: Vec<Value>,
    /// Reverse lookup for `push` (user input arrives tuple by tuple).
    ids_by_value: HashMap<Value, u32>,
    /// Local id → dataset-wide [`crate::GlobalValueId`]
    /// ([`NO_GLOBAL_VALUE`] when the value is not in the shared table or
    /// the instance was built without one), parallel to `values_by_id`.
    global_by_local: Vec<u32>,
    /// Reverse of `global_by_local` for the ids that have one — lets the
    /// encoder resolve table-interned constants (CFD patterns, Σ constant
    /// comparisons) to instance-local ids without hashing `Value`s.
    local_by_global: HashMap<u32, u32>,
    /// [`crate::ValueTable::token`] of the shared table, if any.
    table_token: Option<u64>,
}

/// Sentinel in [`EntityInstance::global_of_local`]: the local id has no
/// dataset-wide global id.
pub const NO_GLOBAL_VALUE: u32 = u32::MAX;

impl EntityInstance {
    /// Builds an entity instance, checking every tuple's arity. Dataset
    /// generators that share canonical values across many entities use
    /// [`EntityInstance::with_table`] instead.
    pub fn new(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Result<Self, TypesError> {
        Self::build(schema, tuples, None)
    }

    /// Builds an entity instance whose stored values are canonicalised
    /// through a dataset-shared [`ValueTable`]: values found in the table
    /// are stored as clones of the table's instance (sharing its
    /// allocation); values missing from it are kept as-is, so a partially
    /// covering table is never wrong.
    pub fn with_table(
        schema: Arc<Schema>,
        tuples: Vec<Tuple>,
        table: &ValueTable,
    ) -> Result<Self, TypesError> {
        Self::build(schema, tuples, Some(table))
    }

    fn build(
        schema: Arc<Schema>,
        tuples: Vec<Tuple>,
        table: Option<&ValueTable>,
    ) -> Result<Self, TypesError> {
        for t in &tuples {
            if t.arity() != schema.arity() {
                return Err(TypesError::ArityMismatch {
                    expected: schema.arity(),
                    got: t.arity(),
                });
            }
        }
        let mut e = EntityInstance {
            schema,
            tuples: Vec::with_capacity(tuples.len()),
            dense: Vec::with_capacity(tuples.len()),
            values_by_id: vec![Value::Null],
            ids_by_value: HashMap::new(),
            global_by_local: vec![crate::NULL_VALUE_ID],
            local_by_global: HashMap::new(),
            table_token: table.map(|t| t.token()),
        };
        for t in tuples {
            e.append_dense_row(&t, table);
            e.tuples.push(t);
        }
        Ok(e)
    }

    /// An empty instance over `schema`.
    pub fn empty(schema: Arc<Schema>) -> Self {
        EntityInstance {
            schema,
            tuples: Vec::new(),
            dense: Vec::new(),
            values_by_id: vec![Value::Null],
            ids_by_value: HashMap::new(),
            global_by_local: vec![crate::NULL_VALUE_ID],
            local_by_global: HashMap::new(),
            table_token: None,
        }
    }

    /// Appends the dense-id row for `tuple` (which must have the right
    /// arity), assigning fresh local ids to unseen values — canonicalised
    /// through `table` when one is supplied.
    fn append_dense_row(&mut self, tuple: &Tuple, table: Option<&ValueTable>) {
        for v in tuple.values() {
            let id = if v.is_null() {
                NULL_VALUE_ID
            } else if let Some(&id) = self.ids_by_value.get(v) {
                id
            } else {
                let id = self.values_by_id.len() as u32;
                let gid = table.and_then(|t| t.get(v));
                let canonical = match (table, gid) {
                    (Some(t), Some(g)) => t.value(g).clone(),
                    _ => v.clone(),
                };
                self.global_by_local.push(gid.unwrap_or(NO_GLOBAL_VALUE));
                if let Some(g) = gid {
                    self.local_by_global.insert(g, id);
                }
                self.values_by_id.push(canonical.clone());
                self.ids_by_value.insert(canonical, id);
                id
            };
            self.dense.push(id);
        }
    }

    /// Instance-local dense id of `tuples[tid][attr]`: equal iff the values
    /// are equal, [`NULL_VALUE_ID`] iff null.
    #[inline]
    pub fn dense_id(&self, tid: TupleId, attr: AttrId) -> u32 {
        self.dense[tid.index() * self.schema.arity() + attr.index()]
    }

    /// The dense-id row of one tuple (one id per attribute).
    #[inline]
    pub fn dense_row(&self, tid: TupleId) -> &[u32] {
        let arity = self.schema.arity();
        &self.dense[tid.index() * arity..(tid.index() + 1) * arity]
    }

    /// Exclusive upper bound on this instance's dense ids (1 + its
    /// distinct non-null values) — per-entity scratch tables sized by this
    /// scale with the entity, never with the dataset.
    pub fn dense_id_bound(&self) -> usize {
        self.values_by_id.len()
    }

    /// The value behind an instance-local dense id.
    pub fn dense_value(&self, id: u32) -> &Value {
        &self.values_by_id[id as usize]
    }

    /// The dataset-wide [`crate::GlobalValueId`] behind an instance-local
    /// dense id, or [`NO_GLOBAL_VALUE`] when the instance was built without
    /// a shared [`ValueTable`] or the value (e.g. a pushed user answer) is
    /// not in it.
    #[inline]
    pub fn global_of_local(&self, id: u32) -> u32 {
        self.global_by_local[id as usize]
    }

    /// The instance-local dense id carrying the table value `gid`, if that
    /// value occurs in this instance. Integer-keyed — the encoder resolves
    /// table-interned constants through this instead of hashing `Value`s.
    #[inline]
    pub fn local_of_global(&self, gid: u32) -> Option<u32> {
        self.local_by_global.get(&gid).copied()
    }

    /// [`ValueTable::token`] of the shared table the instance was interned
    /// against, if any. Consumers holding table-resolved ids (the encoder's
    /// compiled constraint programs) check this before using them.
    pub fn table_token(&self) -> Option<u64> {
        self.table_token
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of tuples, `|Ie|`.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the instance has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuple with the given id.
    pub fn tuple(&self, id: TupleId) -> &Tuple {
        &self.tuples[id.index()]
    }

    /// All tuples in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Iterates over `(TupleId, &Tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &Tuple)> {
        self.tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (TupleId(i as u32), t))
    }

    /// All tuple ids.
    pub fn tuple_ids(&self) -> impl Iterator<Item = TupleId> + 'static {
        (0..self.tuples.len() as u32).map(TupleId)
    }

    /// True iff the value at `(tid, attr)` is null (single integer compare
    /// against the dense row).
    #[inline]
    pub fn is_null_at(&self, tid: TupleId, attr: AttrId) -> bool {
        self.dense_id(tid, attr) == NULL_VALUE_ID
    }

    /// Appends a tuple, returning its id. Used when extending a specification
    /// with user input (`Se ⊕ Ot`, Section III Remark (1)). Unseen values
    /// (user-supplied "new values") receive fresh local ids.
    pub fn push(&mut self, tuple: Tuple) -> Result<TupleId, TypesError> {
        if tuple.arity() != self.schema.arity() {
            return Err(TypesError::ArityMismatch {
                expected: self.schema.arity(),
                got: tuple.arity(),
            });
        }
        let id = TupleId(self.tuples.len() as u32);
        self.append_dense_row(&tuple, None);
        self.tuples.push(tuple);
        Ok(id)
    }

    /// Replaces the value at `(tid, attr)` in place, returning the previous
    /// value. Used by push-based correction ingestion (upstream revisions
    /// that withdraw or correct a previously reported cell): the tuple and
    /// its dense-id row are updated together, unseen values receive fresh
    /// local ids (like [`EntityInstance::push`]), and the instance's link to
    /// its shared [`ValueTable`] is preserved — a replacement value missing
    /// from the table simply has no global id, which every global-id
    /// consumer already handles (user-input pushes take the same path).
    pub fn replace_value(&mut self, tid: TupleId, attr: AttrId, value: Value) -> Value {
        let id = if value.is_null() {
            NULL_VALUE_ID
        } else if let Some(&id) = self.ids_by_value.get(&value) {
            id
        } else {
            let id = self.values_by_id.len() as u32;
            self.global_by_local.push(NO_GLOBAL_VALUE);
            self.values_by_id.push(value.clone());
            self.ids_by_value.insert(value.clone(), id);
            id
        };
        self.dense[tid.index() * self.schema.arity() + attr.index()] = id;
        self.tuples[tid.index()].set(attr, value)
    }

    /// The *active domain* `adom(Ie.Ai)`: distinct non-null values of
    /// attribute `attr` occurring in the instance, in canonical order.
    ///
    /// Nulls are excluded: a null never becomes a "most current" value (it is
    /// ranked lowest in every currency order), and the paper's encoder builds
    /// `≺v` over actual data values.
    pub fn active_domain(&self, attr: AttrId) -> Vec<Value> {
        let mut vals: Vec<Value> = self
            .tuples
            .iter()
            .map(|t| t.get(attr))
            .filter(|v| !v.is_null())
            .cloned()
            .collect();
        vals.sort();
        vals.dedup();
        vals
    }

    /// True iff `value` occurs (non-null) in attribute `attr`.
    pub fn adom_contains(&self, attr: AttrId, value: &Value) -> bool {
        !value.is_null() && self.tuples.iter().any(|t| t.get(attr) == value)
    }

    /// Tuples whose `attr` value equals `value`.
    pub fn tuples_with_value(&self, attr: AttrId, value: &Value) -> Vec<TupleId> {
        self.iter()
            .filter(|(_, t)| t.get(attr) == value)
            .map(|(id, _)| id)
            .collect()
    }

    /// Attributes on which the tuples disagree (carry ≥ 2 distinct values,
    /// counting null as a value). These are the *conflicting* attributes
    /// conflict resolution must settle.
    pub fn conflicting_attrs(&self) -> Vec<AttrId> {
        self.schema
            .attr_ids()
            .filter(|&a| {
                let mut it = self.tuples.iter().map(|t| t.get(a));
                match it.next() {
                    None => false,
                    Some(first) => it.any(|v| v != first),
                }
            })
            .collect()
    }
}

impl fmt::Debug for EntityInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "EntityInstance over {} ({} tuples):", self.schema, self.tuples.len())?;
        for (id, t) in self.iter() {
            writeln!(f, "  r{}: {}", id.0, t.display(&self.schema))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> EntityInstance {
        let schema = Schema::new("person", ["name", "status", "kids"]).unwrap();
        let tuples = vec![
            Tuple::of([Value::str("Edith"), Value::str("working"), Value::int(0)]),
            Tuple::of([Value::str("Edith"), Value::str("retired"), Value::int(3)]),
            Tuple::of([Value::str("Edith"), Value::str("deceased"), Value::Null]),
        ];
        EntityInstance::new(schema, tuples).unwrap()
    }

    #[test]
    fn active_domain_excludes_null_and_dedups() {
        let e = instance();
        let kids = e.schema().attr_id("kids").unwrap();
        assert_eq!(e.active_domain(kids), vec![Value::int(0), Value::int(3)]);
        let name = e.schema().attr_id("name").unwrap();
        assert_eq!(e.active_domain(name), vec![Value::str("Edith")]);
    }

    #[test]
    fn conflicting_attrs_detects_disagreement() {
        let e = instance();
        let names: Vec<&str> = e
            .conflicting_attrs()
            .iter()
            .map(|&a| e.schema().attr_name(a))
            .collect();
        assert_eq!(names, vec!["status", "kids"]);
    }

    #[test]
    fn push_appends_with_fresh_id() {
        let mut e = instance();
        let id = e
            .push(Tuple::of([Value::str("Edith"), Value::str("deceased"), Value::int(3)]))
            .unwrap();
        assert_eq!(id, TupleId(3));
        assert_eq!(e.len(), 4);
        assert!(e.push(Tuple::of([Value::Null])).is_err());
    }

    #[test]
    fn tuples_with_value_finds_matches() {
        let e = instance();
        let status = e.schema().attr_id("status").unwrap();
        assert_eq!(
            e.tuples_with_value(status, &Value::str("retired")),
            vec![TupleId(1)]
        );
    }

    #[test]
    fn dense_rows_mirror_values() {
        let e = instance();
        for (tid, t) in e.iter() {
            for attr in e.schema().attr_ids() {
                let id = e.dense_id(tid, attr);
                assert_eq!(e.dense_value(id), t.get(attr));
                assert_eq!(e.is_null_at(tid, attr), t.get(attr).is_null());
                assert_eq!(id == crate::NULL_VALUE_ID, t.get(attr).is_null());
            }
        }
        // Equal values share one id across tuples.
        let name = e.schema().attr_id("name").unwrap();
        assert_eq!(e.dense_id(TupleId(0), name), e.dense_id(TupleId(1), name));
        // The id bound is entity-proportional: 1 (null) + distinct values.
        assert_eq!(e.dense_id_bound(), 1 + 1 + 3 + 2); // name, status, kids
    }

    #[test]
    fn shared_table_canonicalises_and_push_reuses_ids() {
        let schema = Schema::new("p", ["a"]).unwrap();
        let mut table = ValueTable::new();
        table.intern(&Value::str("shared"));
        let mut e = EntityInstance::with_table(
            schema,
            vec![Tuple::of([Value::str("shared")]), Tuple::of([Value::int(2)])],
            &table,
        )
        .unwrap();
        // A value missing from the table still round-trips fine.
        assert_eq!(e.dense_value(e.dense_id(TupleId(1), AttrId(0))), &Value::int(2));
        // Pushing a repeat of an existing value reuses its id.
        let before = e.dense_id_bound();
        e.push(Tuple::of([Value::int(2)])).unwrap();
        assert_eq!(e.dense_id_bound(), before);
        assert_eq!(e.dense_id(TupleId(2), AttrId(0)), e.dense_id(TupleId(1), AttrId(0)));
        // A genuinely new pushed value gets a fresh id.
        e.push(Tuple::of([Value::int(3)])).unwrap();
        assert_eq!(e.dense_id_bound(), before + 1);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let schema = Schema::new("r", ["a", "b"]).unwrap();
        let bad = vec![Tuple::of([Value::int(1)])];
        assert!(EntityInstance::new(schema, bad).is_err());
    }
}
