/root/repo/target/debug/deps/incremental_differential-0f23e87167e70496.d: crates/cr-core/tests/incremental_differential.rs Cargo.toml

/root/repo/target/debug/deps/libincremental_differential-0f23e87167e70496.rmeta: crates/cr-core/tests/incremental_differential.rs Cargo.toml

crates/cr-core/tests/incremental_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
