/root/repo/target/debug/deps/phase_probe-4f2c53167d350dc0.d: crates/cr-bench/src/bin/phase_probe.rs Cargo.toml

/root/repo/target/debug/deps/libphase_probe-4f2c53167d350dc0.rmeta: crates/cr-bench/src/bin/phase_probe.rs Cargo.toml

crates/cr-bench/src/bin/phase_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
