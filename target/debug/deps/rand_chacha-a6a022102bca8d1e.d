/root/repo/target/debug/deps/rand_chacha-a6a022102bca8d1e.d: shims/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-a6a022102bca8d1e.rmeta: shims/rand_chacha/src/lib.rs

shims/rand_chacha/src/lib.rs:
