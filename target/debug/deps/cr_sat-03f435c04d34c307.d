/root/repo/target/debug/deps/cr_sat-03f435c04d34c307.d: crates/cr-sat/src/lib.rs crates/cr-sat/src/cnf.rs crates/cr-sat/src/dimacs.rs crates/cr-sat/src/lit.rs crates/cr-sat/src/solver/mod.rs crates/cr-sat/src/solver/analyze.rs crates/cr-sat/src/solver/decide.rs crates/cr-sat/src/solver/propagate.rs crates/cr-sat/src/solver/reduce.rs crates/cr-sat/src/solver/restart.rs crates/cr-sat/src/stats.rs crates/cr-sat/src/unit_propagation.rs Cargo.toml

/root/repo/target/debug/deps/libcr_sat-03f435c04d34c307.rmeta: crates/cr-sat/src/lib.rs crates/cr-sat/src/cnf.rs crates/cr-sat/src/dimacs.rs crates/cr-sat/src/lit.rs crates/cr-sat/src/solver/mod.rs crates/cr-sat/src/solver/analyze.rs crates/cr-sat/src/solver/decide.rs crates/cr-sat/src/solver/propagate.rs crates/cr-sat/src/solver/reduce.rs crates/cr-sat/src/solver/restart.rs crates/cr-sat/src/stats.rs crates/cr-sat/src/unit_propagation.rs Cargo.toml

crates/cr-sat/src/lib.rs:
crates/cr-sat/src/cnf.rs:
crates/cr-sat/src/dimacs.rs:
crates/cr-sat/src/lit.rs:
crates/cr-sat/src/solver/mod.rs:
crates/cr-sat/src/solver/analyze.rs:
crates/cr-sat/src/solver/decide.rs:
crates/cr-sat/src/solver/propagate.rs:
crates/cr-sat/src/solver/reduce.rs:
crates/cr-sat/src/solver/restart.rs:
crates/cr-sat/src/stats.rs:
crates/cr-sat/src/unit_propagation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
