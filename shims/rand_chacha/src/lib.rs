//! Minimal offline stand-in for `rand_chacha` (see `shims/README.md`).
//!
//! [`ChaCha8Rng`] is a real ChaCha stream cipher core with 8 rounds used as
//! a deterministic PRNG. Streams are high quality but not bit-compatible
//! with the crates.io implementation.

use rand::{RngCore, SeedableRng};

/// A ChaCha random number generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    /// Buffered output words from the last block.
    buffer: [u32; 16],
    /// Next unread index into `buffer` (16 = exhausted).
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // A double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&mixed, &input)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = mixed.wrapping_add(input);
        }
        // 64-bit block counter in words 12/13.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed to a 256-bit key with SplitMix64, like the
        // rand family's default `seed_from_u64`.
        let mut state = seed;
        let mut split = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let k = split();
            s[4 + 2 * i] = k as u32;
            s[5 + 2 * i] = (k >> 32) as u32;
        }
        // counter = 0 (words 12/13), nonce = 0 (words 14/15).
        ChaCha8Rng { state: s, buffer: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | hi << 32
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(8);
        assert_ne!(ChaCha8Rng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn range_and_bool_are_plausible() {
        let mut r = ChaCha8Rng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700 && c < 1300), "{counts:?}");
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads));
    }
}
