//! Hand-rolled versioned binary codec for durable event logs.
//!
//! The workspace is offline (no serde), so persistence encodes everything
//! with this module: little-endian fixed-width integers, LEB128 varints,
//! zigzag signed varints, and length-prefixed byte strings, written through
//! [`Enc`] and read back through [`Dec`]. Every decode path returns a typed
//! [`CodecError`] — **no decode panics on any byte string**, which is the
//! property the truncation proptests in `cr-store` pin down.
//!
//! On top of the primitives sits the *frame* layer used by the write-ahead
//! log: each record is stored as
//!
//! ```text
//! [len: u32 LE] [payload: len bytes] [crc32(payload): u32 LE]
//! ```
//!
//! and [`FrameScanner`] walks a byte log frame by frame, distinguishing a
//! clean end-of-log ([`Ok(None)`](FrameScanner::next)) from a torn or
//! corrupted tail (`Err(Truncated | BadCrc | FrameTooLarge)`). The scanner
//! tracks [`FrameScanner::valid_len`] — the byte offset just past the last
//! frame whose checksum verified — which is exactly where crash recovery
//! truncates the log. CRC-32 (IEEE polynomial) detects all single-bit flips
//! and all torn writes that do not happen to end precisely on a frame
//! boundary (those are indistinguishable from a clean shorter log, and
//! recovery treats them as such).
//!
//! Payload encodings for the causal types ([`Value`], [`Hlc`], [`SourceId`],
//! [`VectorClock`], [`CausalStamp`]) live here too, so `cr-store` composes
//! record codecs without re-implementing the primitives. Payloads carry
//! their own version byte at the record layer (see `cr-store::event`); the
//! frame layer itself is version-free by design — it must stay decodable
//! forever so that recovery can always find frame boundaries.

use crate::causal::{CausalStamp, Hlc, SourceId, VectorClock};
use crate::value::{OrderedF64, Value};

/// Typed decode failure. Every decoding function in this module and in
/// `cr-store` returns one of these instead of panicking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// An enum tag byte did not match any known variant.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A record version byte newer than this build understands.
    UnsupportedVersion {
        /// What was being decoded.
        what: &'static str,
        /// The offending version byte.
        version: u8,
    },
    /// A varint ran past its maximum width (corrupt input).
    BadVarint,
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// A float decoded to NaN (never produced by the encoder).
    BadFloat,
    /// A frame checksum mismatch at the given byte offset into the log.
    BadCrc {
        /// Byte offset of the frame's length prefix.
        offset: usize,
    },
    /// A frame length prefix exceeded [`MAX_FRAME_LEN`] (corrupt prefix).
    FrameTooLarge {
        /// The decoded length.
        len: usize,
    },
    /// Bytes remained after a payload decoded completely.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(f, "input truncated: needed {needed} bytes, {remaining} remain")
            }
            CodecError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            CodecError::UnsupportedVersion { what, version } => {
                write!(f, "unsupported {what} version {version}")
            }
            CodecError::BadVarint => write!(f, "varint exceeds maximum width"),
            CodecError::BadUtf8 => write!(f, "string payload is not valid UTF-8"),
            CodecError::BadFloat => write!(f, "float payload decodes to NaN"),
            CodecError::BadCrc { offset } => {
                write!(f, "frame checksum mismatch at byte {offset}")
            }
            CodecError::FrameTooLarge { len } => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME_LEN}")
            }
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after payload")
            }
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data` — the frame checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Primitive writer / reader.
// ---------------------------------------------------------------------------

/// Byte-string writer: appends primitives to an owned buffer.
#[derive(Clone, Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a LEB128 varint (1–10 bytes).
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends an `i64` as a zigzag varint.
    pub fn put_i64(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Appends a varint length prefix followed by the raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string as length-prefixed bytes.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Byte-string reader: consumes primitives from a slice, returning
/// [`CodecError`] on any malformed input — never panicking.
#[derive(Clone, Copy, Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True iff every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails with [`CodecError::TrailingBytes`] unless the input is fully
    /// consumed — record decoders call this last so corrupt oversized
    /// payloads cannot slip through.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes { remaining: self.remaining() })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { needed: n, remaining: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a LEB128 varint (max 10 bytes).
    pub fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(CodecError::BadVarint);
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(CodecError::BadVarint);
            }
        }
    }

    /// Reads a zigzag varint `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        let z = self.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Reads length-prefixed bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.varint()?;
        let len = usize::try_from(len).map_err(|_| CodecError::BadVarint)?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| CodecError::BadUtf8)
    }
}

// ---------------------------------------------------------------------------
// Frame layer.
// ---------------------------------------------------------------------------

/// Sanity cap on a frame's payload length. A torn or bit-flipped length
/// prefix that decodes to something absurd is classified as corrupt here
/// instead of being chased off the end of the log.
pub const MAX_FRAME_LEN: usize = 1 << 26; // 64 MiB

/// Fixed bytes a frame adds around its payload (length + checksum).
pub const FRAME_OVERHEAD: usize = 8;

/// Appends one `[len][payload][crc32]` frame to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Walks a byte log frame by frame, validating checksums.
///
/// [`FrameScanner::next`] yields `Ok(Some(payload))` for each intact frame,
/// `Ok(None)` at a clean end-of-log, and an error for a torn or corrupt
/// tail. After any outcome, [`FrameScanner::valid_len`] is the byte offset
/// just past the last frame that verified — the truncation point crash
/// recovery restores the log to.
#[derive(Clone, Copy, Debug)]
pub struct FrameScanner<'a> {
    buf: &'a [u8],
    pos: usize,
    frames: usize,
}

impl<'a> FrameScanner<'a> {
    /// A scanner over the raw log bytes.
    pub fn new(buf: &'a [u8]) -> Self {
        FrameScanner { buf, pos: 0, frames: 0 }
    }

    /// The next intact frame payload, `Ok(None)` at clean end-of-log, or a
    /// typed error on a torn/corrupt tail. Errors are sticky in the sense
    /// that the position does not advance past a bad frame.
    #[allow(clippy::should_implement_trait)] // fallible, so not Iterator
    pub fn next(&mut self) -> Result<Option<&'a [u8]>, CodecError> {
        let rest = &self.buf[self.pos..];
        if rest.is_empty() {
            return Ok(None);
        }
        if rest.len() < 4 {
            return Err(CodecError::Truncated { needed: 4, remaining: rest.len() });
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(CodecError::FrameTooLarge { len });
        }
        let total = 4 + len + 4;
        if rest.len() < total {
            return Err(CodecError::Truncated { needed: total, remaining: rest.len() });
        }
        let payload = &rest[4..4 + len];
        let stored =
            u32::from_le_bytes([rest[4 + len], rest[5 + len], rest[6 + len], rest[7 + len]]);
        if crc32(payload) != stored {
            return Err(CodecError::BadCrc { offset: self.pos });
        }
        self.pos += total;
        self.frames += 1;
        Ok(Some(payload))
    }

    /// Byte offset just past the last frame whose checksum verified.
    pub fn valid_len(&self) -> usize {
        self.pos
    }

    /// Frames validated so far.
    pub fn frames(&self) -> usize {
        self.frames
    }
}

// ---------------------------------------------------------------------------
// Causal-type payload codecs.
// ---------------------------------------------------------------------------

/// Encodes a [`Value`] (tag byte + payload).
pub fn encode_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Null => e.put_u8(0),
        Value::Int(i) => {
            e.put_u8(1);
            e.put_i64(*i);
        }
        Value::Float(f) => {
            e.put_u8(2);
            e.put_u64(f.get().to_bits());
        }
        Value::Str(s) => {
            e.put_u8(3);
            e.put_str(s);
        }
    }
}

/// Decodes a [`Value`]; rejects NaN floats (the encoder never emits them).
pub fn decode_value(d: &mut Dec<'_>) -> Result<Value, CodecError> {
    match d.u8()? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Int(d.i64()?)),
        2 => {
            let f = f64::from_bits(d.u64()?);
            OrderedF64::new(f).map(Value::Float).ok_or(CodecError::BadFloat)
        }
        3 => Ok(Value::str(d.str()?)),
        tag => Err(CodecError::BadTag { what: "Value", tag }),
    }
}

/// Encodes an [`Hlc`] (varint physical + varint logical).
pub fn encode_hlc(e: &mut Enc, h: &Hlc) {
    e.put_varint(h.physical);
    e.put_varint(u64::from(h.logical));
}

/// Decodes an [`Hlc`].
pub fn decode_hlc(d: &mut Dec<'_>) -> Result<Hlc, CodecError> {
    let physical = d.varint()?;
    let logical = u32::try_from(d.varint()?).map_err(|_| CodecError::BadVarint)?;
    Ok(Hlc { physical, logical })
}

/// Encodes a [`SourceId`] as a varint.
pub fn encode_source(e: &mut Enc, s: SourceId) {
    e.put_varint(u64::from(s.0));
}

/// Decodes a [`SourceId`].
pub fn decode_source(d: &mut Dec<'_>) -> Result<SourceId, CodecError> {
    Ok(SourceId(u32::try_from(d.varint()?).map_err(|_| CodecError::BadVarint)?))
}

/// Encodes a [`VectorClock`] as `count` + `(source, seq)` pairs. Zero
/// entries are skipped — `get` treats absent as 0, so this is the canonical
/// form and roundtrips compare equal for well-formed clocks.
pub fn encode_vclock(e: &mut Enc, vc: &VectorClock) {
    let entries: Vec<(SourceId, u64)> = vc.iter().filter(|&(_, n)| n > 0).collect();
    e.put_varint(entries.len() as u64);
    for (s, n) in entries {
        encode_source(e, s);
        e.put_varint(n);
    }
}

/// Decodes a [`VectorClock`].
pub fn decode_vclock(d: &mut Dec<'_>) -> Result<VectorClock, CodecError> {
    let count = d.varint()?;
    let mut vc = VectorClock::new();
    for _ in 0..count {
        let s = decode_source(d)?;
        let n = d.varint()?;
        if n > 0 {
            vc.observe(s, n);
        }
    }
    Ok(vc)
}

/// Encodes a [`CausalStamp`].
pub fn encode_stamp(e: &mut Enc, st: &CausalStamp) {
    encode_source(e, st.source);
    encode_hlc(e, &st.hlc);
    encode_vclock(e, &st.vclock);
}

/// Decodes a [`CausalStamp`].
pub fn decode_stamp(d: &mut Dec<'_>) -> Result<CausalStamp, CodecError> {
    let source = decode_source(d)?;
    let hlc = decode_hlc(d)?;
    let vclock = decode_vclock(d)?;
    Ok(CausalStamp { source, hlc, vclock })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal::SourceClock;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn primitives_roundtrip() {
        let mut e = Enc::new();
        e.put_u8(0xAB);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX - 3);
        e.put_varint(0);
        e.put_varint(127);
        e.put_varint(128);
        e.put_varint(u64::MAX);
        e.put_i64(i64::MIN);
        e.put_i64(-1);
        e.put_i64(i64::MAX);
        e.put_str("héllo");
        e.put_bytes(&[]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 0xAB);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.varint().unwrap(), 0);
        assert_eq!(d.varint().unwrap(), 127);
        assert_eq!(d.varint().unwrap(), 128);
        assert_eq!(d.varint().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), i64::MIN);
        assert_eq!(d.i64().unwrap(), -1);
        assert_eq!(d.i64().unwrap(), i64::MAX);
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.bytes().unwrap(), &[] as &[u8]);
        d.finish().unwrap();
    }

    #[test]
    fn varint_overflow_is_typed() {
        // 11 continuation bytes can never be a valid u64.
        let bytes = [0xFFu8; 11];
        assert_eq!(Dec::new(&bytes).varint(), Err(CodecError::BadVarint));
        // 10 bytes whose top byte overflows 64 bits.
        let bytes = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert_eq!(Dec::new(&bytes).varint(), Err(CodecError::BadVarint));
    }

    #[test]
    fn values_roundtrip() {
        let values = [
            Value::Null,
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::float(-0.0),
            Value::float(3.5),
            Value::float(f64::INFINITY),
            Value::str(""),
            Value::str("conflict ≠ resolution"),
        ];
        for v in &values {
            let mut e = Enc::new();
            encode_value(&mut e, v);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            assert_eq!(&decode_value(&mut d).unwrap(), v);
            d.finish().unwrap();
        }
    }

    #[test]
    fn nan_float_is_rejected_not_panicking() {
        let mut e = Enc::new();
        e.put_u8(2);
        e.put_u64(f64::NAN.to_bits());
        let bytes = e.into_bytes();
        assert_eq!(decode_value(&mut Dec::new(&bytes)), Err(CodecError::BadFloat));
    }

    #[test]
    fn stamps_roundtrip_through_real_clocks() {
        let mut s1 = SourceClock::new(SourceId(1));
        let mut s2 = SourceClock::new(SourceId(2));
        let a = s1.stamp(10);
        s2.observe(&a);
        let b = s2.stamp(11);
        for st in [&a, &b] {
            let mut e = Enc::new();
            encode_stamp(&mut e, st);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            assert_eq!(&decode_stamp(&mut d).unwrap(), st);
            d.finish().unwrap();
        }
    }

    #[test]
    fn frame_scanner_walks_clean_log() {
        let mut log = Vec::new();
        write_frame(&mut log, b"first");
        write_frame(&mut log, b"");
        write_frame(&mut log, b"third record");
        let mut sc = FrameScanner::new(&log);
        assert_eq!(sc.next().unwrap(), Some(&b"first"[..]));
        assert_eq!(sc.next().unwrap(), Some(&b""[..]));
        assert_eq!(sc.next().unwrap(), Some(&b"third record"[..]));
        assert_eq!(sc.next().unwrap(), None);
        assert_eq!(sc.valid_len(), log.len());
        assert_eq!(sc.frames(), 3);
    }

    #[test]
    fn frame_scanner_reports_torn_tail_at_every_cut() {
        let mut log = Vec::new();
        write_frame(&mut log, b"alpha");
        let keep = log.len();
        write_frame(&mut log, b"beta!");
        // Cut anywhere strictly inside the second frame: the first frame
        // survives, the tail reads as truncated, valid_len = end of frame 1.
        for cut in keep + 1..log.len() {
            let mut sc = FrameScanner::new(&log[..cut]);
            assert_eq!(sc.next().unwrap(), Some(&b"alpha"[..]));
            assert!(matches!(sc.next(), Err(CodecError::Truncated { .. })));
            assert_eq!(sc.valid_len(), keep);
        }
        // A cut exactly at the frame boundary is a clean shorter log.
        let mut sc = FrameScanner::new(&log[..keep]);
        assert_eq!(sc.next().unwrap(), Some(&b"alpha"[..]));
        assert_eq!(sc.next().unwrap(), None);
    }

    #[test]
    fn frame_scanner_detects_every_single_bit_flip() {
        let mut log = Vec::new();
        write_frame(&mut log, b"payload under test");
        for byte in 0..log.len() {
            for bit in 0..8 {
                let mut bad = log.clone();
                bad[byte] ^= 1 << bit;
                let mut sc = FrameScanner::new(&bad);
                let r = sc.next();
                assert!(
                    r.is_err(),
                    "bit flip at byte {byte} bit {bit} went undetected: {r:?}"
                );
                assert_eq!(sc.valid_len(), 0);
            }
        }
    }

    #[test]
    fn absurd_length_prefix_is_too_large_not_a_chase() {
        let mut log = vec![0xFF, 0xFF, 0xFF, 0xFF];
        log.extend_from_slice(&[0u8; 16]);
        let mut sc = FrameScanner::new(&log);
        assert!(matches!(sc.next(), Err(CodecError::FrameTooLarge { .. })));
    }
}
