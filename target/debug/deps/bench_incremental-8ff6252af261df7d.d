/root/repo/target/debug/deps/bench_incremental-8ff6252af261df7d.d: crates/cr-bench/src/bin/bench_incremental.rs

/root/repo/target/debug/deps/bench_incremental-8ff6252af261df7d: crates/cr-bench/src/bin/bench_incremental.rs

crates/cr-bench/src/bin/bench_incremental.rs:
