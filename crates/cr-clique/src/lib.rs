//! Maximum clique over undirected graphs.
//!
//! The `Suggest` algorithm (Section V-C of the paper) computes a maximum
//! clique of the *compatibility graph* of derivation rules; every clique is a
//! set of rules that can fire together. The paper plugs in Feige's
//! approximation \[16\]; compatibility graphs are small (≤ |R|·|It| nodes), so
//! this crate provides an **exact** Tomita-style branch-and-bound with a
//! greedy-colouring upper bound, falling back to a multi-seed greedy
//! heuristic above a configurable node threshold.

pub mod exact;
pub mod graph;
pub mod greedy;

pub use graph::Graph;

/// Strategy selection for [`find_max_clique`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CliqueStrategy {
    /// Exact branch-and-bound regardless of size.
    Exact,
    /// Greedy heuristic regardless of size.
    Greedy,
    /// Exact up to the node threshold, greedy beyond (default).
    Auto {
        /// Largest node count still solved exactly.
        exact_threshold: usize,
    },
}

impl Default for CliqueStrategy {
    fn default() -> Self {
        CliqueStrategy::Auto { exact_threshold: 160 }
    }
}

/// Finds a (maximum or maximal, depending on strategy) clique of `g`,
/// returned as sorted vertex indices.
pub fn find_max_clique(g: &Graph, strategy: CliqueStrategy) -> Vec<usize> {
    let mut clique = match strategy {
        CliqueStrategy::Exact => exact::max_clique(g),
        CliqueStrategy::Greedy => greedy::greedy_clique(g),
        CliqueStrategy::Auto { exact_threshold } => {
            if g.len() <= exact_threshold {
                exact::max_clique(g)
            } else {
                greedy::greedy_clique(g)
            }
        }
    };
    clique.sort_unstable();
    debug_assert!(g.is_clique(&clique));
    clique
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_with_edges(n: usize, edges: &[(usize, usize)]) -> Graph {
        let mut g = Graph::new(n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    #[test]
    fn strategies_agree_on_small_graph() {
        // Triangle 0-1-2 plus pendant 3.
        let g = graph_with_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let exact = find_max_clique(&g, CliqueStrategy::Exact);
        assert_eq!(exact, vec![0, 1, 2]);
        let auto = find_max_clique(&g, CliqueStrategy::default());
        assert_eq!(auto, exact);
        let greedy = find_max_clique(&g, CliqueStrategy::Greedy);
        assert!(g.is_clique(&greedy));
        assert!(greedy.len() >= 2);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g = Graph::new(0);
        assert!(find_max_clique(&g, CliqueStrategy::Exact).is_empty());
        let g1 = Graph::new(1);
        assert_eq!(find_max_clique(&g1, CliqueStrategy::Exact), vec![0]);
    }
}
