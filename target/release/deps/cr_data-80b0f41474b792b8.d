/root/repo/target/release/deps/cr_data-80b0f41474b792b8.d: crates/cr-data/src/lib.rs crates/cr-data/src/career.rs crates/cr-data/src/gen_util.rs crates/cr-data/src/nba.rs crates/cr-data/src/person.rs crates/cr-data/src/vjday.rs

/root/repo/target/release/deps/libcr_data-80b0f41474b792b8.rlib: crates/cr-data/src/lib.rs crates/cr-data/src/career.rs crates/cr-data/src/gen_util.rs crates/cr-data/src/nba.rs crates/cr-data/src/person.rs crates/cr-data/src/vjday.rs

/root/repo/target/release/deps/libcr_data-80b0f41474b792b8.rmeta: crates/cr-data/src/lib.rs crates/cr-data/src/career.rs crates/cr-data/src/gen_util.rs crates/cr-data/src/nba.rs crates/cr-data/src/person.rs crates/cr-data/src/vjday.rs

crates/cr-data/src/lib.rs:
crates/cr-data/src/career.rs:
crates/cr-data/src/gen_util.rs:
crates/cr-data/src/nba.rs:
crates/cr-data/src/person.rs:
crates/cr-data/src/vjday.rs:
